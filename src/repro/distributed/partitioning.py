"""Graph partitioning for the distributed-summarization simulation.

Shin et al. note that SWeG "can be extended to parallel and
distributed computing" [34], and the related-work section points at
Liu et al.'s distributed graph summarization [27].  The distributed
pipeline here follows that blueprint: partition the node set across
workers, summarize each worker's induced subgraph locally, and treat
edges crossing partitions separately (they can never join two nodes
into one super-node without communication).

This module provides the partitioners:

* :func:`hash_partition` — the stateless baseline every distributed
  graph system supports;
* :func:`chunk_partition` — contiguous ranges, which preserves the
  locality that generator-ordered analogs (and crawl orderings) have;
* :func:`neighborhood_partition` — a lightweight locality heuristic
  that assigns each node to the partition where most of its already
  placed neighbors live (greedy streaming placement), reducing the
  cut and hence the quality loss of local-only merging.
"""

from __future__ import annotations

from repro.graph.graph import Graph

__all__ = [
    "shard_for_node",
    "hash_partition",
    "chunk_partition",
    "neighborhood_partition",
    "cut_edges",
    "partition_quality",
]

_MASK64 = (1 << 64) - 1


def shard_for_node(node: int, shards: int, seed: int = 0) -> int:
    """Owning shard of ``node`` under the seeded keyed hash.

    The standalone form of the :func:`hash_partition` assignment: a
    splitmix64-style scramble of ``(node, seed)``, reduced mod
    ``shards``.  It needs no :class:`Graph` in hand, so a query router
    can map ids it has never seen, and it is independent of
    ``PYTHONHASHSEED`` (no use of Python's randomised ``hash``), so
    every process — summarizer, shard server, router, client — agrees
    on the same map for the same ``(shards, seed)``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if node < 0:
        raise ValueError(f"node must be >= 0, got {node}")
    x = (node + seed * 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) % shards


def _validate(graph: Graph, workers: int) -> None:
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    # An empty graph partitions trivially under any worker count.
    if graph.n and workers > graph.n:
        raise ValueError(
            f"workers ({workers}) exceeds the node count ({graph.n}); "
            "at least one worker would own no nodes — lower workers to "
            f"at most {graph.n}"
        )


def hash_partition(graph: Graph, workers: int, seed: int = 0) -> list[int]:
    """Assign node ``u`` to partition :func:`shard_for_node(u, workers,
    seed) <shard_for_node>`.

    Deterministic and balanced in expectation, oblivious to structure.
    """
    _validate(graph, workers)
    return [shard_for_node(u, workers, seed) for u in range(graph.n)]


def chunk_partition(graph: Graph, workers: int) -> list[int]:
    """Contiguous equal ranges of node ids."""
    _validate(graph, workers)
    if graph.n == 0:
        return []
    chunk = (graph.n + workers - 1) // workers
    return [u // chunk for u in range(graph.n)]


def neighborhood_partition(
    graph: Graph, workers: int, balance_slack: float = 0.1
) -> list[int]:
    """Greedy streaming placement by neighbor affinity (LDG-style).

    Nodes are placed in id order; each goes to the partition holding
    most of its already placed neighbors, subject to a capacity of
    ``(1 + balance_slack) * n / workers``.
    """
    _validate(graph, workers)
    if balance_slack < 0:
        raise ValueError("balance_slack must be non-negative")
    capacity = (1.0 + balance_slack) * graph.n / workers
    assignment = [-1] * graph.n
    loads = [0] * workers
    adjacency = graph.adjacency()
    for u in range(graph.n):
        scores = [0] * workers
        for v in adjacency[u]:
            if assignment[v] >= 0:
                scores[assignment[v]] += 1
        best = -1
        best_key: tuple[int, int] | None = None
        for p in range(workers):
            if loads[p] + 1 > capacity:
                continue
            key = (scores[p], -loads[p])
            if best_key is None or key > best_key:
                best_key = key
                best = p
        if best < 0:  # all at capacity (rounding): least loaded wins
            best = loads.index(min(loads))
        assignment[u] = best
        loads[best] += 1
    return assignment


def cut_edges(graph: Graph, assignment: list[int]) -> list[tuple[int, int]]:
    """Edges whose endpoints live on different partitions."""
    if len(assignment) != graph.n:
        raise ValueError("assignment length must equal n")
    return [
        (u, v) for u, v in graph.edges() if assignment[u] != assignment[v]
    ]


def partition_quality(
    graph: Graph, assignment: list[int], workers: int
) -> dict[str, float]:
    """Cut fraction and balance of a partition assignment."""
    cut = len(cut_edges(graph, assignment))
    loads = [0] * workers
    for p in assignment:
        loads[p] += 1
    max_load = max(loads, default=0)
    ideal = graph.n / workers if workers else 0.0
    return {
        "cut_fraction": cut / graph.m if graph.m else 0.0,
        "imbalance": (max_load / ideal) if ideal else 0.0,
    }
