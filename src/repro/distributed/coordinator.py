"""Distributed summarization: local workers plus a merge coordinator.

The pipeline (SWeG's distributed sketch [34] / Liu et al. [27]):

1. **Partition** the nodes across ``workers`` (see
   :mod:`repro.distributed.partitioning`).
2. **Local phase** — each worker summarizes its *induced subgraph*
   independently (any :class:`~repro.algorithms.base.Summarizer`);
   only node groupings are exchanged, never raw adjacency.
3. **Global phase** — the coordinator adopts the union of the local
   partitions (a valid partition of V, since workers own disjoint
   node sets), builds the global weight tables, and optionally runs a
   bounded number of *boundary refinement* rounds: Mags-DM-style
   divide-and-merge restricted to super-nodes incident to cut edges,
   which is where the local phase left compaction on the table.
4. **Encode** with the shared optimal encoding — the result is a
   normal lossless :class:`~repro.core.encoding.Representation`.

Communication accounting uses the byte codecs of
:mod:`repro.compression`: each worker ships its grouping (varint
member lists) up, and the coordinator counts cut-edge payloads — the
numbers a deployment would size its shuffle by.

Resilience: each worker run is a fault-injection site
(``worker:<index>``, see :mod:`repro.resilience.faults`) and is
retried under the coordinator's :class:`~repro.resilience.retry.RetryPolicy`
when it crashes or straggles past its deadline.  A worker that
exhausts its retries is *reassigned* to the trivial singleton
partition (every owned node its own group) — a valid, lossless
fallback whose larger grouping message is counted in
``upload_bytes`` like any other upload, so the communication cost of
the failure is visible in the result.
"""

from __future__ import annotations

import contextlib
import random
import sys
from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms._dm_common import divide_recursive, shuffled_rows
from repro.algorithms.base import Summarizer, active_tracer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.compression.varint import varint_size
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import omega
from repro.distributed.partitioning import cut_edges, hash_partition
from repro.graph.graph import Graph
from repro.resilience.faults import active_injector
from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    call_with_retry,
)

__all__ = ["DistributedResult", "DistributedSummarizer"]


@dataclass
class DistributedResult:
    """Output of a distributed run."""

    representation: Representation
    workers: int
    cut_edge_count: int
    #: Bytes each worker uploaded (its grouping message).
    upload_bytes: list[int]
    #: Bytes the coordinator ingested for the cut edges.
    cut_payload_bytes: int
    refinement_merges: int
    local_merges: int
    params: dict = field(default_factory=dict)
    #: Worker attempts that failed and were retried.
    worker_retries: int = 0
    #: Workers that exhausted their retry budget.
    worker_failures: int = 0
    #: Indices of workers replaced by the singleton-partition fallback.
    fallback_workers: list[int] = field(default_factory=list)

    @property
    def relative_size(self) -> float:
        """Compactness of the final representation."""
        return self.representation.relative_size

    @property
    def total_communication_bytes(self) -> int:
        """Everything that crossed the (simulated) network."""
        return sum(self.upload_bytes) + self.cut_payload_bytes


class DistributedSummarizer:
    """Simulated distributed graph summarization.

    Parameters
    ----------
    workers:
        Number of simulated workers.
    partitioner:
        ``(graph, workers) -> assignment`` list; defaults to
        :func:`~repro.distributed.partitioning.hash_partition`.
    summarizer_factory:
        Local summarizer per worker; defaults to
        ``MagsDMSummarizer(iterations=20)``.
    refinement_rounds:
        Divide-and-merge rounds the coordinator runs over the
        boundary super-nodes (0 disables the global phase).
    retry_policy:
        Backoff schedule for failed/straggling workers; ``None``
        selects a small default (3 attempts, 10 ms base delay).
    worker_deadline:
        Optional per-worker wall-clock budget in seconds.  A worker
        (including its retries) that cannot finish inside the budget
        is treated as failed and falls back to singleton groups.
    """

    def __init__(
        self,
        workers: int,
        partitioner: Callable[[Graph, int], list[int]] | None = None,
        summarizer_factory: Callable[[], Summarizer] | None = None,
        refinement_rounds: int = 10,
        seed: int = 0,
        retry_policy: RetryPolicy | None = None,
        worker_deadline: float | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if refinement_rounds < 0:
            raise ValueError("refinement_rounds must be >= 0")
        self.workers = workers
        self.partitioner = partitioner or (
            lambda graph, w: hash_partition(graph, w, seed=seed)
        )
        self.summarizer_factory = summarizer_factory or (
            lambda: MagsDMSummarizer(iterations=20, seed=seed)
        )
        self.refinement_rounds = refinement_rounds
        self.seed = seed
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.01, max_delay=0.1
        )
        self.worker_deadline = worker_deadline

    # ------------------------------------------------------------------
    def summarize(self, graph: Graph) -> DistributedResult:
        """Run the three-phase pipeline on ``graph``.

        Raises :class:`ValueError` up front when ``workers`` exceeds
        the node count — every partitioner would strand workers with
        no nodes, and a custom partitioner should not be able to
        bypass that check.
        """
        if graph.n and self.workers > graph.n:
            raise ValueError(
                f"workers ({self.workers}) exceeds the node count "
                f"({graph.n}); lower workers to at most {graph.n}"
            )
        tracer = active_tracer()

        def _span(name: str, **attrs):
            if tracer is None:
                return contextlib.nullcontext()
            return tracer.span(name, **attrs)

        with _span(
            "distributed:summarize",
            workers=self.workers, n=graph.n, m=graph.m,
        ):
            assignment = self.partitioner(graph, self.workers)
            if len(assignment) != graph.n:
                raise ValueError(
                    "partitioner returned wrong-length assignment"
                )

            # ---- local phase -------------------------------------------
            owned: list[list[int]] = [[] for _ in range(self.workers)]
            for node, part in enumerate(assignment):
                owned[part].append(node)
            groupings: list[list[list[int]]] = []
            upload_bytes: list[int] = []
            local_merges = 0
            worker_retries = 0
            fallback_workers: list[int] = []
            retry_rng = random.Random(self.seed)
            for worker in range(self.workers):
                local_nodes = owned[worker]
                with _span(
                    "distributed:local",
                    worker=worker, nodes=len(local_nodes),
                ):
                    groups, merges, retries = self._run_worker(
                        graph, worker, local_nodes, retry_rng
                    )
                worker_retries += retries
                if groups is None:
                    # Retries exhausted: reassign to the singleton
                    # partition — every owned node its own group.  The
                    # grouping is still valid and lossless, just
                    # uncompacted; its (larger) upload is accounted
                    # below like any other.
                    fallback_workers.append(worker)
                    groups = [[node] for node in local_nodes]
                    merges = 0
                    self._record_worker_event("fallback")
                local_merges += merges
                groupings.append(groups)
                upload_bytes.append(_grouping_bytes(groups))

            # ---- global phase ------------------------------------------
            with _span("distributed:global"):
                partition = SuperNodePartition(graph)
                for groups in groupings:
                    for members in groups:
                        root = partition.find(members[0])
                        for node in members[1:]:
                            root = partition.merge(root, partition.find(node))

                cut = cut_edges(graph, assignment)
                cut_payload = sum(
                    varint_size(u) + varint_size(v) for u, v in cut
                )
            refinement_merges = 0
            if self.refinement_rounds and cut:
                with _span(
                    "distributed:refinement", cut_edges=len(cut)
                ) as span:
                    refinement_merges = self._refine_boundary(
                        graph, partition, cut
                    )
                    if tracer is not None:
                        span.inc("merges", refinement_merges)

            representation = encode(partition)
        return DistributedResult(
            representation=representation,
            workers=self.workers,
            cut_edge_count=len(cut),
            upload_bytes=upload_bytes,
            cut_payload_bytes=cut_payload,
            refinement_merges=refinement_merges,
            local_merges=local_merges,
            params={
                "workers": self.workers,
                "refinement_rounds": self.refinement_rounds,
                "seed": self.seed,
            },
            worker_retries=worker_retries,
            worker_failures=len(fallback_workers),
            fallback_workers=fallback_workers,
        )

    # ------------------------------------------------------------------
    def _run_worker(
        self,
        graph: Graph,
        worker: int,
        local_nodes: list[int],
        rng: random.Random,
    ) -> tuple[list[list[int]] | None, int, int]:
        """One worker's local summarization, with retries.

        Returns ``(groups, merges, retries)``; ``groups`` is ``None``
        when every attempt failed and the caller must fall back to the
        singleton partition.
        """
        site = f"worker:{worker}"
        retries = 0

        def _on_retry(attempt: int, exc: BaseException) -> None:
            nonlocal retries
            retries += 1

        def _attempt():
            injector = active_injector()
            if injector is not None:
                injector.before(site)
            subgraph = graph.subgraph(local_nodes)
            result = self.summarizer_factory().summarize(subgraph)
            if injector is not None:
                injector.after(site)
            return result

        deadline = (
            Deadline.after(self.worker_deadline)
            if self.worker_deadline is not None
            else Deadline.never()
        )
        try:
            result = call_with_retry(
                _attempt,
                policy=self.retry_policy,
                retry_on=(Exception,),
                deadline=deadline,
                rng=rng,
                on_retry=_on_retry,
                label="distributed_worker",
            )
        except (RetriesExhausted, DeadlineExceeded):
            return None, 0, retries
        groups = [
            sorted(local_nodes[i] for i in members)
            for members in result.representation.supernodes.values()
        ]
        return groups, result.num_merges, retries

    @staticmethod
    def _record_worker_event(event: str) -> None:
        """Count a worker-level resilience event in the global
        registry (gated so :mod:`repro.obs` stays optional)."""
        if "repro.obs.metrics" not in sys.modules:
            return
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_resilience_worker_events_total", event=event
        ).inc()

    # ------------------------------------------------------------------
    def _refine_boundary(
        self,
        graph: Graph,
        partition: SuperNodePartition,
        cut: list[tuple[int, int]],
    ) -> int:
        """Mags-DM rounds restricted to cut-incident super-nodes."""
        h = 24
        signatures = MinHashSignatures(graph, h, self.seed)
        # Super-node signatures: fold member columns together.
        for root in list(partition.roots()):
            for member in partition.members(root):
                if member != root:
                    signatures.merge(root, member)
        rng = random.Random(self.seed)
        merges = 0
        rounds = self.refinement_rounds
        for t in range(1, rounds + 1):
            boundary = sorted(
                {partition.find(u) for u, v in cut}
                | {partition.find(v) for u, v in cut}
            )
            if len(boundary) < 2:
                break
            groups = divide_recursive(
                boundary, signatures, shuffled_rows(h, rng), 200
            )
            threshold = omega(t, rounds)
            for group in groups:
                merges += self._merge_group(
                    partition, signatures, group, threshold, rng, threshold
                )
        return merges

    @staticmethod
    def _merge_group(
        partition: SuperNodePartition,
        signatures: MinHashSignatures,
        group: list[int],
        threshold: float,
        rng: random.Random,
        omega_t: float,
    ) -> int:
        """Top-1-similarity merging within one boundary group."""
        group = list(group)
        merges = 0
        while len(group) >= 2:
            pick = rng.randrange(len(group))
            u = group[pick]
            group[pick] = group[-1]
            group.pop()
            best_v = max(
                group, key=lambda v: signatures.similarity(u, v)
            )
            if partition.saving(u, best_v) >= omega_t:
                w = partition.merge(u, best_v)
                absorbed = best_v if w == u else u
                signatures.merge(w, absorbed)
                group[group.index(best_v)] = w
                merges += 1
        return merges


def _grouping_bytes(groups: list[list[int]]) -> int:
    """Varint cost of shipping a worker's grouping message."""
    total = varint_size(len(groups))
    for members in groups:
        total += varint_size(len(members))
        previous = 0
        for index, node in enumerate(members):
            total += varint_size(node if index == 0 else node - previous - 1)
            previous = node
    return total
