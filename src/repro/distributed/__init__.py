"""Distributed summarization simulation (partition, local, refine)."""

from repro.distributed.coordinator import (
    DistributedResult,
    DistributedSummarizer,
)
from repro.distributed.partitioning import (
    chunk_partition,
    cut_edges,
    hash_partition,
    neighborhood_partition,
    partition_quality,
)

__all__ = [
    "DistributedResult",
    "DistributedSummarizer",
    "chunk_partition",
    "cut_edges",
    "hash_partition",
    "neighborhood_partition",
    "partition_quality",
]
