"""Budgeted background re-summarization of dirty regions.

The corrections overlay (:mod:`repro.dynamic.summary`) absorbs every
edge mutation in O(1) by freezing the super-node structure, so a
long-mutated live summary drifts away from a compact encoding: the
correction set grows while the structure stops reflecting the graph.
This module closes that loop on a *live* server without a restart —
the ROADMAP's "background re-summarization of dirty regions" item,
with SsAG-style score-driven selection of where to spend the budget.

How a pass works (all inside
:meth:`~repro.service.ingest.MutableQueryEngine.maintenance_pass`):

1. **Select** — every commit increments per-super-node dirtiness
   counters; :func:`select_targets` ranks super-nodes by that drift
   score and takes the dirtiest ones plus their super-adjacent
   neighborhood (re-grouping needs room: a drifted community's members
   often belong with an adjacent super-node) up to a per-pass cap.
2. **Build** — the selected region is re-encoded via
   ``resummarize_local(targets=..., budget=...)`` on an
   epoch-consistent snapshot *outside* the engine's state lock, under
   a deterministic merge cap.
3. **Swap** — under the lock, only if the epoch is unchanged (any
   interleaved commit abandons the build; the next tick retries), the
   pass commits exactly like a mutation batch: ``resummarize`` WAL
   record first, then the structure swap, epoch bump, and per-node
   LRU invalidation.  Crash recovery replays the recorded decision
   bit-identically.

:class:`MaintenanceTask` is the timer: each tick arms a
:class:`~repro.resilience.guard.ResourceBudget` (wall-clock + memory,
checked *between* passes — never inside one, which must stay
deterministic) and runs passes until the budget is spent, the engine
is clean, or a pass is abandoned.  Ticks are wrapped in
``maintenance:pass`` spans and counted under the
``repro_maintenance_*`` metrics.
"""

from __future__ import annotations

import logging
import threading

__all__ = ["MaintenanceTask", "select_targets"]

logger = logging.getLogger("repro.dynamic")


def select_targets(
    dirty: dict[int, int],
    rep,
    *,
    max_supernodes: int = 64,
    min_dirty: int = 1,
) -> tuple[int, ...]:
    """Pick the super-nodes one maintenance pass should dissolve.

    Deterministic and pure: seeds are the dirty super-nodes ranked by
    descending dirtiness (id ascending on ties), each bringing its
    super-adjacent neighbors into the target set — the drifted
    region's members may belong with an adjacent grouping, and the
    local summarizer can only consider moves inside the dissolved
    region.  Stops once ``max_supernodes`` targets are collected.
    Returns a sorted tuple (the canonical form recorded in the WAL).
    """
    if max_supernodes < 1:
        return ()
    ranked = sorted(
        (
            (sid, count)
            for sid, count in dirty.items()
            if count >= min_dirty
        ),
        key=lambda item: (-item[1], item[0]),
    )
    if not ranked:
        return ()
    adjacency = rep.superedge_adjacency()
    targets: set[int] = set()
    for sid, _ in ranked:
        if len(targets) >= max_supernodes:
            break
        targets.add(sid)
        for neighbor in sorted(adjacency.get(sid, ())):
            if len(targets) >= max_supernodes:
                break
            if neighbor != sid:
                targets.add(neighbor)
    return tuple(sorted(targets))


class MaintenanceTask:
    """Run budgeted maintenance passes on a timer (or on demand).

    Parameters
    ----------
    engine:
        A :class:`~repro.service.ingest.MutableQueryEngine`.
    interval:
        Seconds between ticks; ``start()`` runs a daemon thread, or
        call :meth:`run_once` yourself (tests, benchmarks, CLI).
    budget:
        Optional :class:`~repro.resilience.guard.ResourceBudget` armed
        per tick.  Wall-clock and memory ceilings gate *whether the
        next pass starts*; its ``max_merges`` (if set) becomes each
        pass's deterministic merge cap, recorded in the WAL so replay
        reproduces the pass exactly.
    max_supernodes:
        Per-pass cap on dissolved super-nodes (the chunk size).
    min_dirty:
        Dirtiness threshold below which a super-node is left alone.
    max_passes:
        Hard cap on passes per tick (a backstop when the budget has no
        wall-clock ceiling).
    """

    def __init__(
        self,
        engine,
        *,
        interval: float = 5.0,
        budget=None,
        max_supernodes: int = 64,
        min_dirty: int = 1,
        max_passes: int = 16,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if max_passes < 1:
            raise ValueError("max_passes must be >= 1")
        self._engine = engine
        self._interval = interval
        self._budget = budget
        self._max_supernodes = max_supernodes
        self._min_dirty = min_dirty
        self._max_passes = max_passes
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "MaintenanceTask":
        if self._thread is not None:
            raise RuntimeError("maintenance task already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_once()
            except Exception:  # noqa: BLE001 - keep the timer alive
                from repro.obs.metrics import get_registry

                logger.exception("maintenance tick failed")
                get_registry().counter(
                    "repro_maintenance_passes_total", outcome="error"
                ).inc()

    # -- one tick --------------------------------------------------------
    def run_once(self) -> dict:
        """One budgeted tick: passes until spent, clean, or abandoned.

        Returns a summary dict (``passes``, ``supernodes``,
        ``outcome`` of the last pass, ``budget_stop`` when the budget
        ended the tick).
        """
        import time

        # Imported lazily: repro.dynamic is reachable from the bare
        # algorithm import path, which must not pull in repro.obs.
        from repro.obs.metrics import get_registry
        from repro.obs.tracer import get_tracer

        budget = self._budget
        if budget is not None:
            budget.start()
        max_merges = (
            budget.max_merges if budget is not None else None
        )
        tracer = get_tracer()
        started = time.perf_counter()
        passes = 0
        supernodes = 0
        outcome = "idle"
        budget_stop = None
        try:
            while passes < self._max_passes:
                if budget is not None:
                    budget_stop = budget.exhausted()
                    if budget_stop is not None:
                        break
                if tracer.enabled:
                    with tracer.span(
                        "maintenance:pass",
                        max_supernodes=self._max_supernodes,
                    ) as span:
                        result = self._engine.maintenance_pass(
                            max_supernodes=self._max_supernodes,
                            max_merges=max_merges,
                            min_dirty=self._min_dirty,
                        )
                        span.set(outcome=result["outcome"])
                else:
                    result = self._engine.maintenance_pass(
                        max_supernodes=self._max_supernodes,
                        max_merges=max_merges,
                        min_dirty=self._min_dirty,
                    )
                outcome = result["outcome"]
                if outcome != "committed":
                    break
                passes += 1
                supernodes += result.get("processed", 0)
        finally:
            if budget is not None:
                budget.stop()
        get_registry().histogram(
            "repro_maintenance_pass_seconds"
        ).observe(time.perf_counter() - started)
        return {
            "passes": passes,
            "supernodes": supernodes,
            "outcome": outcome,
            "budget_stop": budget_stop,
        }
