"""Dynamic graph summarization (the paper's second future-work item).

Section 8 names "the extension of Mags and Mags-DM to dynamic graphs
that are frequently updated".  This module implements the standard
corrections-overlay design (the approach of Mosso [22], which the
paper cites as the dynamic-stream member of this literature):

* the summary's *super-node structure is frozen* between rebuilds;
* an edge insertion or deletion is absorbed purely by toggling
  corrections — deleting an edge covered by a super-edge adds a
  ``-e`` correction, deleting one recorded as ``+e`` just drops that
  correction, and symmetrically for insertions;
* every update therefore costs O(1), but drift makes the correction
  set grow; when the representation cost exceeds
  ``rebuild_factor`` times the cost right after the last rebuild, the
  structure is re-summarized from scratch with the configured
  summarizer (Mags-DM by default — the fast one).

The overlay is exact at all times: :meth:`DynamicGraphSummary.to_representation`
always reconstructs the current graph edge-for-edge, which the tests
verify after arbitrary update sequences.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from repro.algorithms.base import Summarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = ["DynamicGraphSummary"]


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class DynamicGraphSummary:
    """A summarized graph that accepts edge insertions and deletions.

    Parameters
    ----------
    graph:
        Initial graph (summarized eagerly on construction).
    summarizer_factory:
        Builds the summarizer used for (re)builds; defaults to
        ``MagsDMSummarizer(iterations=20)``.
    rebuild_factor:
        Re-summarize when the live cost exceeds this multiple of the
        post-rebuild cost (and at least one update happened).  ``None``
        disables automatic rebuilds.
    """

    def __init__(
        self,
        graph: Graph,
        summarizer_factory: Callable[[], Summarizer] | None = None,
        rebuild_factor: float | None = 1.5,
    ):
        if rebuild_factor is not None and rebuild_factor < 1.0:
            raise ValueError("rebuild_factor must be >= 1.0 (or None)")
        self._make_summarizer = summarizer_factory or (
            lambda: MagsDMSummarizer(iterations=20)
        )
        self.rebuild_factor = rebuild_factor
        self.num_rebuilds = 0
        self.num_updates = 0
        self._install(self._summarize(graph))

    @classmethod
    def from_representation(
        cls,
        rep: Representation,
        summarizer_factory: Callable[[], Summarizer] | None = None,
        rebuild_factor: float | None = None,
        base_cost: int | None = None,
        dirtiness: dict[int, int] | None = None,
    ) -> "DynamicGraphSummary":
        """Wrap an already-built representation without re-summarizing.

        The serving path (``repro serve --wal-dir``) loads a summary
        artifact and mutates it in place; paying a from-scratch
        summarization on startup would defeat the point.  Automatic
        rebuilds default to *off* here because a rebuild's trigger
        point depends on ``base_cost``: crash recovery must restore
        the exact ``base_cost`` of the interrupted run (it travels in
        the checkpoint) for replay to retrace the uninterrupted run's
        rebuild schedule bit-for-bit.
        """
        if rebuild_factor is not None and rebuild_factor < 1.0:
            raise ValueError("rebuild_factor must be >= 1.0 (or None)")
        self = cls.__new__(cls)
        self._make_summarizer = summarizer_factory or (
            lambda: MagsDMSummarizer(iterations=20)
        )
        self.rebuild_factor = rebuild_factor
        self.num_rebuilds = 0
        self.num_updates = 0
        self._install(rep)
        if base_cost is not None:
            if base_cost < 1:
                raise ValueError("base_cost must be >= 1")
            self._base_cost = int(base_cost)
        if dirtiness is not None:
            self._dirty = {
                int(sid): int(count)
                for sid, count in dirtiness.items()
                if int(sid) in self._supernodes and int(count) > 0
            }
        return self

    @property
    def base_cost(self) -> int:
        """Representation cost right after the last (re)build — the
        reference point of the rebuild trigger."""
        return self._base_cost

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def _summarize(self, graph: Graph) -> Representation:
        return self._make_summarizer().summarize(graph).representation

    def _install(self, rep: Representation) -> None:
        self._n = rep.n
        self._supernodes = {
            sid: list(members) for sid, members in rep.supernodes.items()
        }
        self._node_to_supernode = dict(rep.node_to_supernode)
        self._summary_edges = set(rep.summary_edges)
        self._additions = set(rep.additions)
        self._removals = set(rep.removals)
        self._m = rep.m
        # Per-super-node adjacency and per-node correction buckets for
        # O(answer) neighbor queries between rebuilds.
        self._super_adj: dict[int, set[int]] = defaultdict(set)
        self._self_edge: set[int] = set()
        for su, sv in self._summary_edges:
            if su == sv:
                self._self_edge.add(su)
            else:
                self._super_adj[su].add(sv)
                self._super_adj[sv].add(su)
        self._add_of: dict[int, set[int]] = defaultdict(set)
        for x, y in self._additions:
            self._add_of[x].add(y)
            self._add_of[y].add(x)
        self._remove_of: dict[int, set[int]] = defaultdict(set)
        for x, y in self._removals:
            self._remove_of[x].add(y)
            self._remove_of[y].add(x)
        self._base_cost = max(1, self.cost)
        # Per-super-node dirtiness: cumulative count of correction
        # toggles that touched the super-node since it was last
        # (re)encoded.  A fresh install addressed everything.
        self._dirty: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Current node count."""
        return self._n

    @property
    def m(self) -> int:
        """Current edge count."""
        return self._m

    @property
    def cost(self) -> int:
        """Live representation cost ``|E| + |C|``."""
        return (
            len(self._summary_edges)
            + len(self._additions)
            + len(self._removals)
        )

    @property
    def relative_size(self) -> float:
        """Live compactness relative to the current edge count.

        A fully-deleted graph that still pays summary-edge or removal
        cost is *infinitely* un-compact, not "perfectly compact":
        ``m == 0`` with ``cost > 0`` reports ``inf`` so drift on an
        emptied graph cannot masquerade as the best possible ratio.
        """
        if self._m == 0:
            return 0.0 if self.cost == 0 else float("inf")
        return self.cost / self._m

    def dirty_supernodes(self) -> dict[int, int]:
        """Per-super-node dirtiness counters (a copy).

        ``{sid: count}`` where ``count`` is how many correction
        toggles touched the super-node since it was last (re)encoded —
        the drift signal background maintenance spends its budget on.
        """
        return dict(self._dirty)

    def _covered_by_superedge(self, u: int, v: int) -> bool:
        su = self._node_to_supernode[u]
        sv = self._node_to_supernode[v]
        if su == sv:
            return su in self._self_edge
        return sv in self._super_adj.get(su, ())

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge exists in the *current* graph."""
        if u == v:
            return False
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        key = _ordered(u, v)
        if key in self._additions:
            return True
        if key in self._removals:
            return False
        return self._covered_by_superedge(u, v)

    def neighbors(self, q: int) -> set[int]:
        """Exact current neighbor set of ``q`` (Algorithm 6 style)."""
        if not 0 <= q < self._n:
            raise IndexError(f"node {q} out of range")
        supernode = self._node_to_supernode[q]
        result: set[int] = set()
        for sv in self._super_adj.get(supernode, ()):
            result.update(self._supernodes[sv])
        if supernode in self._self_edge:
            result.update(self._supernodes[supernode])
        result |= self._add_of.get(q, set())
        result -= self._remove_of.get(q, set())
        result.discard(q)
        return result

    def to_representation(self) -> Representation:
        """Snapshot the live state as a :class:`Representation`."""
        return Representation(
            n=self._n,
            m=self._m,
            supernodes={
                sid: list(members)
                for sid, members in self._supernodes.items()
            },
            node_to_supernode=dict(self._node_to_supernode),
            summary_edges=set(self._summary_edges),
            additions=set(self._additions),
            removals=set(self._removals),
        )

    def to_graph(self) -> Graph:
        """Materialise the current graph."""
        return Graph(self._n, sorted(self.to_representation().reconstruct_edges()))

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------
    def add_node(self) -> int:
        """Append an isolated node; returns its id."""
        node = self._n
        self._n += 1
        sid = self._fresh_supernode_id()
        self._supernodes[sid] = [node]
        self._node_to_supernode[node] = sid
        return node

    def insert_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``; raises if it already exists."""
        self._check_pair(u, v)
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already exists")
        key = _ordered(u, v)
        if key in self._removals:
            self._removals.discard(key)
            self._remove_of[u].discard(v)
            self._remove_of[v].discard(u)
        else:
            self._additions.add(key)
            self._add_of[u].add(v)
            self._add_of[v].add(u)
        self._m += 1
        self._mark_dirty(u, v)
        self._after_update()

    def delete_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)``; raises if it does not exist."""
        self._check_pair(u, v)
        if not self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) does not exist")
        key = _ordered(u, v)
        if key in self._additions:
            self._additions.discard(key)
            self._add_of[u].discard(v)
            self._add_of[v].discard(u)
        else:
            self._removals.add(key)
            self._remove_of[u].add(v)
            self._remove_of[v].add(u)
        self._m -= 1
        self._mark_dirty(u, v)
        self._after_update()

    def resummarize(self) -> None:
        """Rebuild the super-node structure from the current graph."""
        rep = self._summarize(self.to_graph())
        self._install(rep)
        self.num_rebuilds += 1

    def resummarize_local(self, targets=None, budget=None) -> int:
        """Re-summarize only a dirty region of the structure.

        Super-nodes whose members appear in any live correction are
        "dirty": the drift the update stream caused is concentrated
        there, while clean super-nodes still reflect a deliberate
        grouping.  This rebuild keeps every untouched super-node's
        grouping, dissolves the processed ones, re-summarizes the
        induced subgraph over their members, and re-encodes — a
        cheaper maintenance step than :meth:`resummarize` when few
        super-nodes drifted.  Returns the number of super-nodes
        processed.

        Parameters
        ----------
        targets:
            Super-node ids to process this pass; ``None`` processes
            every correction-touched super-node (the historical
            all-or-nothing behavior).  Unknown ids are ignored; the
            remaining dirty super-nodes keep both their grouping and
            their dirtiness counters, so a later pass can pick them
            up.  The computation is a pure function of the current
            state and the (sorted) target set — background maintenance
            records the set in the WAL and crash recovery replays it
            bit-identically.
        budget:
            Optional :class:`~repro.resilience.guard.ResourceBudget`
            attached to the local summarizer (armed here), making the
            pass *anytime*.  Only deterministic dimensions (merge
            caps) should be used on passes that must replay
            bit-identically; wall-clock belongs in the selection loop
            *between* passes, never inside one.
        """
        from repro.core.encoding import encode
        from repro.core.supernodes import SuperNodePartition

        if targets is None:
            processed: set[int] = set()
            for x, y in list(self._additions) + list(self._removals):
                processed.add(self._node_to_supernode[x])
                processed.add(self._node_to_supernode[y])
        else:
            processed = {
                int(sid) for sid in targets
                if int(sid) in self._supernodes
            }
        if not processed:
            return 0

        graph = self.to_graph()
        partition = SuperNodePartition(graph)
        # Replay every unprocessed grouping verbatim.  Iteration is
        # sorted (not dict order): union-find roots — and therefore
        # the re-encoded super-node ids — depend on merge order, and
        # crash recovery must reproduce this pass bit-identically from
        # a checkpoint whose dict order is its own (sorted) one.
        for sid, members in sorted(self._supernodes.items()):
            if sid in processed or len(members) < 2:
                continue
            root = partition.find(members[0])
            for node in members[1:]:
                root = partition.merge(root, partition.find(node))
        # Re-summarize the processed region and replay its grouping.
        region = sorted(
            node for sid in processed for node in self._supernodes[sid]
        )
        if len(region) >= 2:
            subgraph = graph.subgraph(region)
            summarizer = self._make_summarizer()
            if budget is not None:
                budget.start()
                if hasattr(summarizer, "configure_budget"):
                    summarizer.configure_budget(budget)
            local = summarizer.summarize(subgraph).representation
            for _, members in sorted(local.supernodes.items()):
                mapped = [region[i] for i in members]
                root = partition.find(mapped[0])
                for node in mapped[1:]:
                    root = partition.merge(root, partition.find(node))
        # Unprocessed groups survive the re-encode with identical
        # member sets (the partition never cross-merges them), so
        # their dirtiness carries over to their fresh super-node ids;
        # processed regions start clean.
        carried = [
            (self._supernodes[sid][0], count)
            for sid, count in self._dirty.items()
            if sid not in processed
        ]
        self._install(encode(partition))
        for probe, count in carried:
            self._dirty[self._node_to_supernode[probe]] = count
        self.num_rebuilds += 1
        return len(processed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_pair(self, u: int, v: int) -> None:
        if u == v:
            raise ValueError("self-loops are not allowed")
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise IndexError(f"edge ({u}, {v}) out of range for n={self._n}")

    def _fresh_supernode_id(self) -> int:
        return max(self._supernodes, default=-1) + 1

    def _mark_dirty(self, u: int, v: int) -> None:
        for node in (u, v):
            sid = self._node_to_supernode[node]
            self._dirty[sid] = self._dirty.get(sid, 0) + 1

    def _after_update(self) -> None:
        self.num_updates += 1
        if (
            self.rebuild_factor is not None
            and self.cost > self.rebuild_factor * self._base_cost
        ):
            self.resummarize()
