"""Dynamic graph summarization (corrections overlay + rebuilds +
background compactness maintenance)."""

from repro.dynamic.maintenance import MaintenanceTask, select_targets
from repro.dynamic.summary import DynamicGraphSummary

__all__ = ["DynamicGraphSummary", "MaintenanceTask", "select_targets"]
