"""Dynamic graph summarization (corrections overlay + rebuilds)."""

from repro.dynamic.summary import DynamicGraphSummary

__all__ = ["DynamicGraphSummary"]
