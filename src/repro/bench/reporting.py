"""Tabular reporting for the benchmark harness.

The harness prints the same rows/series the paper's figures plot:
one row per (dataset, algorithm) with relative size or running time.
Formatting is plain aligned text so results diff cleanly run-to-run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

__all__ = ["format_table", "save_report", "geometric_mean"]


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned text table."""
    if columns is None:
        columns = list(rows[0].keys()) if rows else []
    rendered = [[_render(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-" * len(header))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def save_report(text: str, name: str, directory: str | Path = "bench_results") -> Path:
    """Persist a rendered report under ``directory`` and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregation for ratios ("on average
    11.1x faster")."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    product = 1.0
    for v in filtered:
        product *= v
    return product ** (1.0 / len(filtered))
