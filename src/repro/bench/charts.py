"""Text rendering of the paper's figures.

The evaluation figures are grouped bar charts (relative size or
running time per dataset, one bar per algorithm) and line series
(parameter sweeps).  This module renders the harness's row data in
those shapes as monospace text, so a bench run reproduces not just
the numbers but a readable figure, saved alongside the tables in
``bench_results/``.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["grouped_bar_chart", "series_chart"]

_BAR_WIDTH = 40


def grouped_bar_chart(
    rows: Sequence[dict],
    group_key: str,
    bar_key: str,
    value_key: str,
    title: str | None = None,
    log_scale: bool = False,
) -> str:
    """Render rows as a grouped horizontal bar chart.

    One group per distinct ``group_key`` (e.g. dataset), one bar per
    ``bar_key`` (e.g. algorithm) scaled to the global maximum of
    ``value_key``.  ``log_scale`` renders bar length on log10, the way
    the paper draws its running-time figures; missing values (None)
    render as a ``(skipped)`` marker, mirroring the paper's timed-out
    cells.
    """
    usable = [r for r in rows if r.get(value_key) is not None]
    if not usable:
        return (title or "") + "\n(no data)"
    values = [float(r[value_key]) for r in usable]
    maximum = max(values)
    positives = [v for v in values if v > 0]
    minimum = min(positives) if positives else 1.0

    def bar_length(value: float) -> int:
        if value <= 0 or maximum <= 0:
            return 0
        if log_scale and maximum > minimum:
            span = math.log10(maximum) - math.log10(minimum)
            if span == 0:
                return _BAR_WIDTH
            frac = (math.log10(value) - math.log10(minimum)) / span
            return max(1, round(frac * _BAR_WIDTH))
        return max(1, round(value / maximum * _BAR_WIDTH))

    label_width = max(
        (len(str(r[bar_key])) for r in rows), default=0
    )
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    seen_groups: list = []
    for row in rows:
        if row[group_key] not in seen_groups:
            seen_groups.append(row[group_key])
    for group in seen_groups:
        lines.append(f"{group_key}={group}")
        for row in rows:
            if row[group_key] != group:
                continue
            label = str(row[bar_key]).ljust(label_width)
            value = row.get(value_key)
            if value is None:
                lines.append(f"  {label}  (skipped)")
                continue
            bar = "#" * bar_length(float(value))
            lines.append(f"  {label}  {bar} {float(value):.4g}")
        lines.append("")
    return "\n".join(lines).rstrip()


def series_chart(
    rows: Sequence[dict],
    series_key: str,
    x_key: str,
    value_key: str,
    title: str | None = None,
) -> str:
    """Render parameter-sweep rows as per-series value lists.

    One line per (series, x) pair grouped by series — the textual
    equivalent of Figures 11-16's line plots.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    series_names: list = []
    for row in rows:
        if row[series_key] not in series_names:
            series_names.append(row[series_key])
    for name in series_names:
        points = [
            (row[x_key], row[value_key])
            for row in rows
            if row[series_key] == name and row.get(value_key) is not None
        ]
        points.sort()
        rendered = "  ".join(f"{x}:{v:.4g}" for x, v in points)
        lines.append(f"{name}: {rendered}")
    return "\n".join(lines)
