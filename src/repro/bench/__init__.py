"""Benchmark harness: experiment definitions, runner, and reporting."""

from repro.bench import experiments
from repro.bench.reporting import format_table, geometric_mean, save_report
from repro.bench.runner import (
    bench_iterations,
    clear_caches,
    get_graph,
    quick_mode,
    run_grid,
    run_on_dataset,
)

__all__ = [
    "experiments",
    "format_table",
    "geometric_mean",
    "save_report",
    "bench_iterations",
    "clear_caches",
    "get_graph",
    "quick_mode",
    "run_grid",
    "run_on_dataset",
]
