"""Experiment runner: algorithms x datasets grids with caching.

Most figures reuse the same (algorithm, dataset) runs — Figure 4 and
Figure 6 plot compactness and time of the *same* executions — so the
runner memoises results per process.  Every run is seeded and the
graphs are deterministic, hence rows are reproducible.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Iterable

from repro.algorithms.base import SummaryResult, Summarizer, active_tracer
from repro.core.verify import verify_lossless
from repro.graph.datasets import DATASETS
from repro.graph.graph import Graph

try:
    import resource
except ImportError:  # non-POSIX platform
    resource = None

__all__ = [
    "bench_iterations",
    "quick_mode",
    "get_graph",
    "run_on_dataset",
    "run_grid",
    "trial_stats",
    "rss_peak_mb",
    "clear_caches",
]

_GRAPH_CACHE: dict[str, Graph] = {}
_RESULT_CACHE: dict[tuple, SummaryResult] = {}
#: Wall/CPU split and memory high-water per trial, keyed by the result
#: object (results stay alive in ``_RESULT_CACHE``, so ids are stable).
_TRIAL_STATS: dict[int, dict] = {}

#: Paper setting is T=50; the interpreter-scale default is 20, which
#: Figures 11-12 show is already within ~2% of converged compactness.
_DEFAULT_ITERATIONS = 20


def bench_iterations() -> int:
    """Iteration count ``T`` for benches (env ``REPRO_BENCH_T``)."""
    return int(os.environ.get("REPRO_BENCH_T", _DEFAULT_ITERATIONS))


def quick_mode() -> bool:
    """Whether ``REPRO_BENCH_QUICK`` asks for reduced dataset grids."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def get_graph(code: str) -> Graph:
    """Dataset analog by Table 2 code, cached per process."""
    if code not in _GRAPH_CACHE:
        _GRAPH_CACHE[code] = DATASETS[code].load()
    return _GRAPH_CACHE[code]


def rss_peak_mb() -> float | None:
    """Process RSS high-water mark in MB (``None`` off POSIX).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS.
    """
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return peak / divisor


def trial_stats(result: SummaryResult) -> dict:
    """The wall/CPU/RSS record captured when ``result`` was produced
    (empty for results not produced through :func:`run_on_dataset`)."""
    return dict(_TRIAL_STATS.get(id(result), {}))


def run_on_dataset(
    code: str,
    factory: Callable[[], Summarizer],
    cache_key: str | None = None,
    verify: bool = False,
) -> SummaryResult:
    """Run one summarizer on one dataset, memoised by ``cache_key``.

    ``cache_key`` defaults to the summarizer's name plus its params, so
    re-running the same configuration in another bench is free.
    """
    summarizer = factory()
    key = (
        code,
        cache_key
        or (summarizer.name, tuple(sorted(summarizer.params().items()))),
    )
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    graph = get_graph(code)
    tracer = active_tracer()
    span = (
        tracer.start_span(
            f"trial:{summarizer.name}/{code}",
            dataset=code, algorithm=summarizer.name,
        )
        if tracer is not None
        else None
    )
    wall_started = time.perf_counter()
    cpu_started = time.process_time()
    try:
        result = summarizer.summarize(graph)
    finally:
        if span is not None:
            tracer.end_span(span)
    stats = {
        "wall_s": time.perf_counter() - wall_started,
        "cpu_s": time.process_time() - cpu_started,
        "rss_peak_mb": rss_peak_mb(),
    }
    if verify:
        verify_lossless(graph, result.representation)
    _RESULT_CACHE[key] = result
    _TRIAL_STATS[id(result)] = stats
    return result


def run_grid(
    codes: Iterable[str],
    factories: dict[str, Callable[[], Summarizer]],
    skip: set[tuple[str, str]] | None = None,
    verify: bool = False,
) -> list[dict]:
    """Run every algorithm on every dataset; return one row per cell.

    ``skip`` holds (algorithm, dataset) cells that are excluded — the
    paper does the same for Slugger on UK and IT, which exceed its
    24-hour budget.
    """
    skip = skip or set()
    rows: list[dict] = []
    for code in codes:
        for label, factory in factories.items():
            if (label, code) in skip:
                rows.append(
                    {
                        "dataset": code,
                        "algorithm": label,
                        "relative_size": None,
                        "time_s": None,
                        "note": "skipped (paper: exceeds time budget)",
                    }
                )
                continue
            result = run_on_dataset(code, factory, verify=verify)
            stats = trial_stats(result)
            row = {
                "dataset": code,
                "algorithm": label,
                "relative_size": result.relative_size,
                "time_s": result.runtime_seconds,
                "cpu_s": (
                    round(stats["cpu_s"], 4) if "cpu_s" in stats else None
                ),
                "rss_peak_mb": (
                    round(stats["rss_peak_mb"], 1)
                    if stats.get("rss_peak_mb") is not None
                    else None
                ),
            }
            row.update(result.extra_metrics)
            rows.append(row)
    return rows


def clear_caches() -> None:
    """Drop memoised graphs and results (tests use this)."""
    _GRAPH_CACHE.clear()
    _RESULT_CACHE.clear()
    _TRIAL_STATS.clear()
