"""Experiment definitions: one function per table/figure of Section 6.

Each function returns ``(title, rows)`` where the rows carry the same
quantities the paper reports (relative size / running time per
dataset and algorithm, or per parameter value).  The bench modules
under ``benchmarks/`` wrap these in pytest-benchmark tests and save
the rendered tables.

Scale note (DESIGN.md, substitutions): datasets are synthetic scaled
analogs and the default ``T`` is 20 (``REPRO_BENCH_T`` overrides), so
absolute numbers differ from the paper; the *shape* — orderings,
rough factors, crossovers — is the reproduction target recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.algorithms import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    SluggerSummarizer,
    Summarizer,
    SWeGSummarizer,
)
from repro.algorithms.parallel import partition_speedup
from repro.bench.runner import (
    bench_iterations,
    get_graph,
    quick_mode,
    run_grid,
    run_on_dataset,
)
from repro.graph.datasets import (
    DATASETS,
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    SMALL_DATASETS,
    dataset_codes,
)
from repro.graph.stats import graph_stats

__all__ = [
    "table2_dataset_statistics",
    "fig4_fig6_small_graphs",
    "fig5_fig7_large_graphs",
    "fig8_mags_ablation",
    "fig9_fig10_magsdm_ablation",
    "fig11_fig12_iterations_sweep",
    "fig13_parallel_speedup",
    "fig14_b_sweep",
    "fig15_h_sweep",
    "fig16_k_sweep",
    "table3_pagerank",
    "neighbor_query_cost",
    "service_throughput",
    "mixed_ingest_throughput",
    "compactness_drift",
    "small_codes",
    "large_codes",
    "medium_codes",
]

#: LDME signature length adapted to analog scale (DESIGN.md): the
#: paper's k=5 assumes real-graph degree scales; at analog degrees an
#: exact 5-tuple match almost never fires.
_LDME_K = 2


def small_codes() -> list[str]:
    """Small-graph codes (quick mode keeps a representative trio)."""
    return SMALL_DATASETS[:3] if quick_mode() else list(SMALL_DATASETS)


def large_codes() -> list[str]:
    """Large-graph codes (quick mode keeps the three fastest)."""
    return ["AM", "CN", "YT"] if quick_mode() else list(LARGE_DATASETS)


def medium_codes() -> list[str]:
    """Parameter-analysis codes (paper: YT, SK, IN, LJ, IC, HO)."""
    return ["YT", "SK"] if quick_mode() else list(MEDIUM_DATASETS)


def _standard_factories(T: int) -> dict[str, Callable[[], Summarizer]]:
    return {
        "Mags": lambda: MagsSummarizer(iterations=T),
        "Mags-DM": lambda: MagsDMSummarizer(iterations=T),
        "Greedy": lambda: GreedySummarizer(),
        "LDME": lambda: LDMESummarizer(
            iterations=T, signature_length=_LDME_K
        ),
        "Slugger": lambda: SluggerSummarizer(iterations=T),
    }


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def table2_dataset_statistics() -> tuple[str, list[dict]]:
    """Table 2: dataset statistics, paper originals vs. analogs."""
    rows = []
    for code in dataset_codes():
        spec = DATASETS[code]
        stats = graph_stats(get_graph(code))
        rows.append(
            {
                "dataset": code,
                "type": spec.kind,
                "paper_n": spec.paper_n,
                "paper_m": spec.paper_m,
                "paper_davg": spec.paper_davg,
                "analog_n": stats.n,
                "analog_m": stats.m,
                "analog_davg": round(stats.avg_degree, 2),
            }
        )
    return "Table 2: dataset statistics (paper vs. synthetic analog)", rows


# ----------------------------------------------------------------------
# Figures 4-7: main comparison
# ----------------------------------------------------------------------
def fig4_fig6_small_graphs() -> tuple[str, list[dict]]:
    """Figures 4 and 6: compactness and time on small graphs
    (all five algorithms, including Greedy)."""
    T = bench_iterations()
    rows = run_grid(small_codes(), _standard_factories(T))
    return (
        f"Figures 4/6: small graphs, all algorithms (T={T})",
        rows,
    )


def fig5_fig7_large_graphs() -> tuple[str, list[dict]]:
    """Figures 5 and 7: compactness and time on large graphs.

    Greedy is absent (the paper's 24h timeout); Slugger is skipped on
    UK and IT, matching the paper's reported timeouts.
    """
    T = bench_iterations()
    factories = _standard_factories(T)
    factories.pop("Greedy")
    skip = {("Slugger", "UK"), ("Slugger", "IT")}
    rows = run_grid(large_codes(), factories, skip=skip)
    return (
        f"Figures 5/7: large graphs (no Greedy; Slugger skipped on UK/IT, "
        f"as in the paper) (T={T})",
        rows,
    )


# ----------------------------------------------------------------------
# Figure 8: Mags ablation
# ----------------------------------------------------------------------
def fig8_mags_ablation() -> tuple[str, list[dict]]:
    """Figure 8: Mags vs Mags (naive CG) vs Greedy.

    Reports compactness, total time, and the candidate-generation
    phase time (Figure 8d plots CG time separately).
    """
    T = bench_iterations()
    codes = small_codes() + (["AM", "CN"] if not quick_mode() else [])
    rows: list[dict] = []
    for code in codes:
        variants: list[tuple[str, Callable[[], Summarizer]]] = [
            ("Mags", lambda: MagsSummarizer(iterations=T)),
            (
                "Mags (naive CG)",
                lambda: MagsSummarizer(
                    iterations=T, candidate_method="naive"
                ),
            ),
        ]
        if code in SMALL_DATASETS:
            variants.append(("Greedy", lambda: GreedySummarizer()))
        for label, factory in variants:
            result = run_on_dataset(code, factory)
            rows.append(
                {
                    "dataset": code,
                    "algorithm": label,
                    "relative_size": result.relative_size,
                    "time_s": result.runtime_seconds,
                    "cg_time_s": result.phase_seconds.get(
                        "candidate_generation"
                    ),
                }
            )
    return f"Figure 8: Mags technique ablation (T={T})", rows


# ----------------------------------------------------------------------
# Figures 9-10: Mags-DM ablation
# ----------------------------------------------------------------------
def fig9_fig10_magsdm_ablation() -> tuple[str, list[dict]]:
    """Figures 9/10: Mags-DM vs no-DS vs no-MS vs SWeG."""
    T = bench_iterations()
    codes = small_codes() + (["AM", "YT", "CN"] if not quick_mode() else [])
    factories: dict[str, Callable[[], Summarizer]] = {
        "Mags-DM": lambda: MagsDMSummarizer(iterations=T),
        "Mags-DM (no DS)": lambda: MagsDMSummarizer(
            iterations=T, dividing_strategy=False
        ),
        "Mags-DM (no MS)": lambda: MagsDMSummarizer(
            iterations=T,
            node_selection="top_1",
            similarity="super_jaccard",
            threshold="theta",
        ),
        "SWeG": lambda: SWeGSummarizer(iterations=T),
    }
    rows = run_grid(codes, factories)
    return f"Figures 9/10: Mags-DM strategy ablation (T={T})", rows


# ----------------------------------------------------------------------
# Figures 11-12: iteration sweep
# ----------------------------------------------------------------------
def fig11_fig12_iterations_sweep() -> tuple[str, list[dict]]:
    """Figures 11/12: compactness and time vs T in {10..50}."""
    sweep = [10, 30, 50] if quick_mode() else [10, 20, 30, 40, 50]
    rows: list[dict] = []
    for code in medium_codes():
        for T in sweep:
            for label, factory in (
                ("Mags", lambda: MagsSummarizer(iterations=T)),
                ("Mags-DM", lambda: MagsDMSummarizer(iterations=T)),
            ):
                result = run_on_dataset(code, factory)
                rows.append(
                    {
                        "dataset": code,
                        "algorithm": label,
                        "T": T,
                        "relative_size": result.relative_size,
                        "time_s": result.runtime_seconds,
                    }
                )
    return "Figures 11/12: compactness and time vs T", rows


# ----------------------------------------------------------------------
# Figure 13: parallel speedup
# ----------------------------------------------------------------------
def fig13_parallel_speedup() -> tuple[str, list[dict]]:
    """Figure 13: modelled parallel speedup vs thread count p.

    Substitution (DESIGN.md): CPython threads cannot show CPU speedup,
    so the series is derived from the *measured work partition* of
    each algorithm's parallel structure:

    * Mags-DM parallelises over disjoint divide groups; its per-round
      work items are the squared group sizes (the merge loop is
      quadratic in group size), packed LPT onto p workers, with a 3%
      per-round synchronisation charge for the shared P/W updates.
      The group cap M is scaled to the analog size (paper: M = 500
      against n in the tens of millions; the same M/n ratio here
      keeps the number of groups, and hence the achievable balance,
      proportionate).
    * Mags parallelises each iteration's merge batch; merges that
      touch connected super-nodes conflict (Section 5.1 groups pairs
      "by connectivity"), so its work items are the connected
      components of the iteration's merge set, plus a 25% serial
      fraction for the serial updates of P, CP and H — the data-race
      limit behind the paper's observed ~3.4x at 40 cores.
    """
    T = bench_iterations()
    thread_counts = [1, 5, 10, 20, 40]
    rows: list[dict] = []
    for code in medium_codes():
        graph = get_graph(code)

        mags_dm = MagsDMSummarizer(
            iterations=T, max_group_size=max(16, graph.n // 100)
        )
        mags_dm.summarize(graph)
        dm_rounds = [
            [float(s) * s for s in sizes]
            for sizes in mags_dm.last_group_sizes
            if sizes
        ]

        mags = MagsSummarizer(iterations=T)
        mags.summarize(graph)
        mags_rounds = [
            _merge_batch_works(merges)
            for merges in mags.last_iteration_merges
            if merges
        ]

        for p in thread_counts:
            rows.append(
                {
                    "dataset": code,
                    "algorithm": "Mags-DM",
                    "p": p,
                    "speedup": _round_speedup(
                        dm_rounds, p, sync_fraction=0.03,
                        serial_fraction=0.02,
                    ),
                }
            )
            rows.append(
                {
                    "dataset": code,
                    "algorithm": "Mags",
                    "p": p,
                    "speedup": _round_speedup(
                        mags_rounds, p, sync_fraction=0.05,
                        serial_fraction=0.25,
                    ),
                }
            )
    return "Figure 13: parallel speedup vs p (work-partition model)", rows


def _merge_batch_works(merges: list[tuple[int, int]]) -> list[float]:
    """Connected components of one iteration's merge pairs.

    Each component is a serial chain (its merges conflict), so it is
    one work item; the item's weight is its merge count.
    """
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in merges:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    sizes: dict[int, float] = {}
    for u, v in merges:
        root = find(u)
        sizes[root] = sizes.get(root, 0.0) + 1.0
    return list(sizes.values())


def _round_speedup(
    rounds: list[list[float]],
    workers: int,
    sync_fraction: float,
    serial_fraction: float,
) -> float:
    """Aggregate the per-round partition model into one speedup."""
    total = sum(sum(r) for r in rounds)
    if total == 0 or workers == 1:
        return 1.0
    parallel_time = 0.0
    for works in rounds:
        round_total = sum(works)
        round_speedup = partition_speedup(works, workers)
        parallel_time += round_total / round_speedup
        parallel_time += sync_fraction * round_total
    parallel_time += serial_fraction * total
    return total / parallel_time


# ----------------------------------------------------------------------
# Figures 14-16: parameter sweeps
# ----------------------------------------------------------------------
def fig14_b_sweep() -> tuple[str, list[dict]]:
    """Figure 14: compactness vs b in {3..7} for Mags and Mags-DM."""
    sweep = [3, 5, 7] if quick_mode() else [3, 4, 5, 6, 7]
    return "Figure 14: compactness vs b", _param_sweep(
        "b",
        sweep,
        mags=lambda T, b: MagsSummarizer(iterations=T, b=b),
        mags_dm=lambda T, b: MagsDMSummarizer(iterations=T, b=b),
    )


def fig15_h_sweep() -> tuple[str, list[dict]]:
    """Figure 15: compactness vs h in {10..50} for Mags and Mags-DM."""
    sweep = [10, 30, 50] if quick_mode() else [10, 20, 30, 40, 50]
    return "Figure 15: compactness vs h", _param_sweep(
        "h",
        sweep,
        mags=lambda T, h: MagsSummarizer(iterations=T, h=h),
        mags_dm=lambda T, h: MagsDMSummarizer(iterations=T, h=h),
    )


def fig16_k_sweep() -> tuple[str, list[dict]]:
    """Figure 16: compactness vs k in {10..50} for Mags."""
    sweep = [10, 30, 50] if quick_mode() else [10, 20, 30, 40, 50]
    return "Figure 16: compactness vs k (Mags)", _param_sweep(
        "k",
        sweep,
        mags=lambda T, k: MagsSummarizer(iterations=T, k=k),
        mags_dm=None,
    )


def _param_sweep(
    param: str,
    values: list[int],
    mags: Callable[[int, int], Summarizer] | None,
    mags_dm: Callable[[int, int], Summarizer] | None,
) -> list[dict]:
    T = bench_iterations()
    rows: list[dict] = []
    for code in medium_codes():
        for value in values:
            for label, make in (("Mags", mags), ("Mags-DM", mags_dm)):
                if make is None:
                    continue
                result = run_on_dataset(code, lambda: make(T, value))
                rows.append(
                    {
                        "dataset": code,
                        "algorithm": label,
                        param: value,
                        "relative_size": result.relative_size,
                        "time_s": result.runtime_seconds,
                    }
                )
    return rows


# ----------------------------------------------------------------------
# Table 3 and Section 6.6
# ----------------------------------------------------------------------
_TABLE3_CODES = [
    "SL", "DB", "AM", "CN", "YT", "SK", "IN", "EU", "ES", "LJ",
    "HO", "IC", "UK", "IT",
]


def table3_pagerank() -> tuple[str, list[dict]]:
    """Table 3: PageRank on the input graph vs. on the summary.

    The summary is produced by Mags-DM (the paper runs its own
    methods; Mags-DM is the fast one).  Reports both times and the
    summary's relative size, since the paper's discussion ties the
    query speedup to compactness.
    """
    import time

    from repro.queries.pagerank import SummaryPageRank, pagerank_input_graph

    T = bench_iterations()
    codes = ["SL", "DB", "AM"] if quick_mode() else list(_TABLE3_CODES)
    damping, pr_iters = 0.85, 20
    rows: list[dict] = []
    for code in codes:
        graph = get_graph(code)
        result = run_on_dataset(
            code, lambda: MagsDMSummarizer(iterations=T)
        )
        start = time.perf_counter()
        pagerank_input_graph(graph, damping, pr_iters)
        input_time = time.perf_counter() - start
        engine = SummaryPageRank(result.representation)
        start = time.perf_counter()
        engine.run(damping, pr_iters)
        summary_time = time.perf_counter() - start
        rows.append(
            {
                "dataset": code,
                "input_graph_s": input_time,
                "summary_s": summary_time,
                "relative_size": result.relative_size,
            }
        )
    return "Table 3: PageRank running time (input graph vs summary)", rows


def neighbor_query_cost() -> tuple[str, list[dict]]:
    """Section 6.6: expected neighbor-query cost vs 1.12 * d_avg."""
    from repro.queries.neighbors import SummaryNeighborIndex

    T = bench_iterations()
    codes = small_codes() if quick_mode() else small_codes() + ["AM", "YT"]
    rows: list[dict] = []
    for code in codes:
        graph = get_graph(code)
        result = run_on_dataset(
            code, lambda: MagsDMSummarizer(iterations=T)
        )
        index = SummaryNeighborIndex(result.representation)
        total_work = sum(index.work_units(q) for q in range(graph.n))
        avg_work = total_work / graph.n if graph.n else 0.0
        rows.append(
            {
                "dataset": code,
                "avg_query_work": avg_work,
                "d_avg": graph.avg_degree,
                "ratio": avg_work / graph.avg_degree
                if graph.avg_degree
                else 0.0,
            }
        )
    return "Section 6.6: neighbor query cost vs d_avg (bound: 1.12)", rows


def service_throughput(
    threads: int = 8, rounds: int = 2
) -> tuple[str, list[dict]]:
    """Closed-loop load test of the summary query service.

    Summarizes a community graph, serves it with
    :class:`repro.service.server.SummaryQueryServer`, and drives it
    with ``threads`` closed-loop clients (each thread waits for its
    response before sending the next request — the classic
    closed-loop load model, so throughput = concurrency / latency).

    Three phases over the same node set: ``cold`` (empty LRU, every
    expansion a miss), ``warm`` (same nodes again, served from
    cache), and ``warm-batch`` (warm cache, 64 queries per request).
    Expected shape: warm throughput strictly above cold, batch qps
    above single-request warm.
    """
    import threading as _threading
    import time as _time

    from repro.graph import generators
    from repro.service import (
        QueryEngine,
        SummaryQueryServer,
        SummaryServiceClient,
    )

    n = 400 if quick_mode() else 1200
    graph = generators.planted_partition(
        n, n // 30, p_in=0.4, p_out=0.004, seed=11
    )
    T = bench_iterations()
    rep = MagsDMSummarizer(iterations=T, seed=0).summarize(
        graph
    ).representation

    engine = QueryEngine(rep, cache_size=n)
    server = SummaryQueryServer(engine, workers=threads).start()
    host, port = server.address
    rows: list[dict] = []
    try:
        shards = [list(range(t, n, threads)) for t in range(threads)]

        def run_phase(send_shard, phase_rounds: int) -> dict:
            latencies: list[list[float]] = [[] for _ in range(threads)]
            barrier = _threading.Barrier(threads + 1)

            def worker(tid: int) -> None:
                with SummaryServiceClient(host, port) as client:
                    barrier.wait()
                    for _ in range(phase_rounds):
                        send_shard(client, shards[tid], latencies[tid])
                client_done[tid] = True

            client_done = [False] * threads
            pool = [
                _threading.Thread(target=worker, args=(t,))
                for t in range(threads)
            ]
            for thread in pool:
                thread.start()
            barrier.wait()
            started = _time.perf_counter()
            for thread in pool:
                thread.join()
            elapsed = _time.perf_counter() - started
            if not all(client_done):
                raise RuntimeError("load-generator thread died")
            flat = sorted(x for shard in latencies for x in shard)
            queries = len(flat)

            def pct(p: float) -> float:
                rank = max(1, -(-queries * int(p * 100) // 10000))
                return round(1000.0 * flat[rank - 1], 3)

            return {
                "threads": threads,
                "queries": queries,
                "qps": round(queries / elapsed, 1),
                "p50_ms": pct(50),
                "p95_ms": pct(95),
                "p99_ms": pct(99),
            }

        def send_single(client, shard, out) -> None:
            for node in shard:
                t0 = _time.perf_counter()
                client.neighbors(node)
                out.append(_time.perf_counter() - t0)

        def send_batch(client, shard, out) -> None:
            for start in range(0, len(shard), 64):
                chunk = shard[start:start + 64]
                requests = [
                    {"id": i, "op": "neighbors", "node": node}
                    for i, node in enumerate(chunk)
                ]
                t0 = _time.perf_counter()
                responses = client.batch(requests)
                per_query = (_time.perf_counter() - t0) / len(chunk)
                if any(not r["ok"] for r in responses):
                    raise RuntimeError("batch returned an error response")
                out.extend(per_query for _ in chunk)

        # The cold phase runs exactly one pass so every expansion is a
        # genuine miss; warm phases repeat to accumulate samples.
        for phase, sender, phase_rounds in (
            ("cold", send_single, 1),
            ("warm", send_single, rounds),
            ("warm-batch", send_batch, rounds),
        ):
            stats = engine.metrics.snapshot()
            row = {"phase": phase, **run_phase(sender, phase_rounds)}
            after = engine.metrics.snapshot()
            hits = after["cache"]["hits"] - stats["cache"]["hits"]
            misses = after["cache"]["misses"] - stats["cache"]["misses"]
            lookups = hits + misses
            row["hit_rate"] = round(hits / lookups, 3) if lookups else 0.0
            rows.append(row)
    finally:
        server.close()
    return (
        f"Service throughput: {threads} closed-loop clients, "
        f"n={n} (cold vs warm LRU)",
        rows,
    )


def cluster_throughput(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    threads: int = 4,
    rounds: int = 3,
    batch: int = 256,
) -> tuple[str, list[dict]]:
    """Cluster load harness: 1 -> 2 -> 4 shards behind the router.

    Every configuration runs the *same* wire path — real
    ``repro serve`` subprocesses per shard with an in-process
    :class:`repro.cluster.router.RouterEngine` served in front — so
    the single-shard row is an honest baseline, not a shortcut around
    the router.  Closed-loop clients stream seeded-shuffled
    ``degree`` batches over the full node range after a warmup pass,
    so every instance's LRU sits at steady state while measuring.

    On a single-core box the scaling comes from *aggregate cache
    capacity*, the same effect that motivates sharding a summary too
    big for one node's memory: each instance holds ``cache_size``
    expansions of a dense summary (miss/hit wire cost ratio ~11x on
    this workload), so S shards cache S times more of the node range
    and the miss fraction collapses as S grows.

    Aggregate rows carry client-side per-query percentiles (via a
    :class:`repro.obs.metrics.Histogram`) and the speedup over the
    single-shard baseline; per-shard rows report each instance's own
    server-side ``batch`` latency percentiles (per forwarded
    sub-batch, not per query) straight from its ``stats`` snapshot.
    """
    import random as _random
    import socket as _socket
    import tempfile as _tempfile
    import threading as _threading
    import time as _time

    from repro.cluster import ClusterManager, plan_cluster
    from repro.cluster.topology import InstanceSpec, default_spec
    from repro.graph import generators
    from repro.obs.metrics import MetricsRegistry
    from repro.service import SummaryServiceClient

    # Dense two-community graph: d_avg ~ n/3.3, so a cache miss (one
    # neighborhood expansion) costs ~11x a cache hit on the wire.
    # cache_size is ~40% of n: 1 shard misses ~60% of a uniform scan,
    # 2 shards ~20%, 4 shards fit their owned range entirely.
    n = 1024 if quick_mode() else 2048
    cache_size = n * 2 // 5
    graph = generators.planted_partition(
        n, 2, p_in=0.6, p_out=0.001, seed=11
    )
    registry = MetricsRegistry()
    rows: list[dict] = []

    def free_ports(count: int) -> list[int]:
        sockets, ports = [], []
        for _ in range(count):
            sock = _socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
        for sock in sockets:
            sock.close()
        return ports

    def run_config(shards: int, tmp: str) -> None:
        spec = default_spec(shards, 1, seed=0)
        ports = free_ports(len(spec.instances) + 1)
        spec.router_port = ports[0]
        spec.instances = [
            InstanceSpec(i.shard, i.replica, i.host, port)
            for i, port in zip(spec.instances, ports[1:])
        ]
        plan_cluster(
            graph, spec, tmp, lambda: MagsDMSummarizer(iterations=3, seed=0)
        )
        config = f"{shards}-shard"
        hist = registry.histogram("cluster_query_seconds", shards=shards)
        # threads+1 workers per instance: the router's pool may hold
        # `threads` persistent connections, and the per-shard stats
        # probe below still needs a free worker to be served.
        manager = ClusterManager(
            spec, workers=threads + 1, cache_size=cache_size
        )
        try:
            manager.start_instances()
            manager.start_router(workers=threads)
            host, port = spec.router_address
            barrier = _threading.Barrier(threads + 1)
            failures: list[str] = []

            def one_pass(client, order, record: bool) -> None:
                for start in range(0, len(order), batch):
                    chunk = order[start:start + batch]
                    requests = [
                        {"id": i, "op": "degree", "node": node}
                        for i, node in enumerate(chunk)
                    ]
                    t0 = _time.perf_counter()
                    responses = client.batch(requests)
                    per_query = (_time.perf_counter() - t0) / len(chunk)
                    bad = [r for r in responses if not r["ok"]]
                    if bad:
                        raise RuntimeError(f"batch error: {bad[0]}")
                    if record:
                        for _ in chunk:
                            hist.observe(per_query)

            def worker(tid: int) -> None:
                rng = _random.Random(97 + tid)
                order = list(range(n))
                rng.shuffle(order)
                try:
                    with SummaryServiceClient(host, port) as client:
                        one_pass(client, order, record=False)  # warmup
                        barrier.wait()
                        for _ in range(rounds):
                            one_pass(client, order, record=True)
                except Exception as exc:  # noqa: BLE001 - reported below
                    failures.append(repr(exc))
                    barrier.abort()

            pool = [
                _threading.Thread(target=worker, args=(t,))
                for t in range(threads)
            ]
            for thread in pool:
                thread.start()
            barrier.wait()
            started = _time.perf_counter()
            for thread in pool:
                thread.join()
            elapsed = _time.perf_counter() - started
            if failures:
                raise RuntimeError(
                    f"{config}: load generator failed: {failures[:3]}"
                )

            hits = misses = 0
            shard_rows: list[dict] = []
            for shard in range(shards):
                inst = spec.instances_for(shard)[0]
                with SummaryServiceClient(*inst.address) as client:
                    stats = client.stats()
                if stats["errors_total"]:
                    raise RuntimeError(
                        f"{config}: {inst.label} served "
                        f"{stats['errors_total']} error(s)"
                    )
                hits += stats["cache"]["hits"]
                misses += stats["cache"]["misses"]
                latency = stats["latency_ms"].get("batch", {})
                shard_rows.append({
                    "config": config,
                    "scope": inst.label,
                    "queries": stats["batch"]["queries"],
                    "qps": round(stats["batch"]["queries"] / elapsed, 1),
                    "p50_ms": latency.get("p50_ms", 0.0),
                    "p95_ms": latency.get("p95_ms", 0.0),
                    "p99_ms": latency.get("p99_ms", 0.0),
                    "hit_rate": stats["cache"]["hit_rate"],
                    "speedup": "",
                })
            snap = hist.snapshot()
            lookups = hits + misses
            rows.append({
                "config": config,
                "scope": "aggregate",
                "queries": int(snap["count"]),
                "qps": round(snap["count"] / elapsed, 1),
                "p50_ms": round(1000.0 * snap["p50"], 3),
                "p95_ms": round(1000.0 * snap["p95"], 3),
                "p99_ms": round(1000.0 * snap["p99"], 3),
                "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
                "speedup": 1.0,
            })
            rows.extend(shard_rows)
        finally:
            manager.stop()

    for shards in shard_counts:
        with _tempfile.TemporaryDirectory() as tmp:
            run_config(shards, tmp)

    aggregates = [r for r in rows if r["scope"] == "aggregate"]
    baseline = aggregates[0]["qps"]
    for row in aggregates:
        row["speedup"] = round(row["qps"] / baseline, 2)
    return (
        f"Cluster serving throughput: {threads} closed-loop clients, "
        f"n={n}, degree batches of {batch}, shards "
        f"{'/'.join(str(s) for s in shard_counts)}",
        rows,
    )


def mixed_ingest_throughput(
    threads: int = 8, ops_per_thread: int = 250
) -> tuple[str, list[dict]]:
    """Durable ingest under mixed read/write load (90/10 and 50/50).

    Serves a summary through a WAL-backed (``fsync=always``)
    :class:`repro.service.ingest.MutableQueryEngine` and drives it
    with ``threads`` closed-loop clients, each interleaving
    ``neighbors`` reads with acknowledged single-edge ``ingest``
    writes at the phase's write fraction.  Each thread toggles its
    own disjoint pool of non-edges (insert, then delete, then insert
    again), so every mutation is valid regardless of interleaving and
    the server-side dry-run never rejects.

    Reported per mix: sustained totals, write (ack) throughput —
    i.e. durable edges/sec, each one fsynced before the ack — and
    separate read/write latency percentiles, so the read-latency
    price of a write-heavy mix is visible directly.  The experiment
    asserts no acknowledged write was lost: the final epoch must
    equal the number of acks.
    """
    import tempfile
    import threading as _threading
    import time as _time

    from repro.durability.wal import WriteAheadLog
    from repro.dynamic.summary import DynamicGraphSummary
    from repro.graph import generators
    from repro.service import SummaryQueryServer, SummaryServiceClient
    from repro.service.ingest import MutableQueryEngine

    n = 400 if quick_mode() else 1200
    if quick_mode():
        ops_per_thread = min(ops_per_thread, 100)
    graph = generators.planted_partition(
        n, n // 30, p_in=0.4, p_out=0.004, seed=11
    )
    T = bench_iterations()
    rep = MagsDMSummarizer(iterations=T, seed=0).summarize(
        graph
    ).representation

    # Disjoint per-thread pools of toggleable non-edges.
    pool_size = 32
    edges = set(graph.edges())
    free: list[tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in edges:
                free.append((u, v))
                if len(free) >= threads * pool_size:
                    break
        if len(free) >= threads * pool_size:
            break

    def pct(sorted_s: list[float], p: int) -> float:
        rank = max(1, -(-len(sorted_s) * p // 100))
        return round(1000.0 * sorted_s[rank - 1], 3)

    rows: list[dict] = []
    for mix, write_frac in (("90/10", 0.10), ("50/50", 0.50)):
        with tempfile.TemporaryDirectory() as tmp:
            wal = WriteAheadLog(tmp, fsync="always")
            engine = MutableQueryEngine(
                DynamicGraphSummary.from_representation(rep),
                wal=wal,
                cache_size=n,
                max_inflight=2 * threads,
            )
            server = SummaryQueryServer(engine, workers=threads).start()
            host, port = server.address
            read_lat: list[list[float]] = [[] for _ in range(threads)]
            write_lat: list[list[float]] = [[] for _ in range(threads)]
            barrier = _threading.Barrier(threads + 1)
            problems: list[str] = []

            def worker(tid: int) -> None:
                import random as _random

                rng = _random.Random(7000 + tid)
                mine = free[tid * pool_size:(tid + 1) * pool_size]
                present = [False] * len(mine)
                cursor = 0
                with SummaryServiceClient(host, port) as client:
                    barrier.wait()
                    for _ in range(ops_per_thread):
                        if rng.random() < write_frac:
                            slot = cursor % len(mine)
                            cursor += 1
                            u, v = mine[slot]
                            sign = "-" if present[slot] else "+"
                            present[slot] = not present[slot]
                            t0 = _time.perf_counter()
                            result = client.ingest([[sign, u, v]])
                            write_lat[tid].append(
                                _time.perf_counter() - t0
                            )
                            if result.get("applied") != 1:
                                problems.append(f"bad ack: {result}")
                        else:
                            node = rng.randrange(n)
                            t0 = _time.perf_counter()
                            client.neighbors(node)
                            read_lat[tid].append(
                                _time.perf_counter() - t0
                            )

            try:
                pool = [
                    _threading.Thread(target=worker, args=(t,))
                    for t in range(threads)
                ]
                for thread in pool:
                    thread.start()
                barrier.wait()
                started = _time.perf_counter()
                for thread in pool:
                    thread.join()
                elapsed = _time.perf_counter() - started
                if problems:
                    raise RuntimeError(problems[0])
                reads = sorted(x for lat in read_lat for x in lat)
                writes = sorted(x for lat in write_lat for x in lat)
                # Zero acknowledged-but-lost: every ack is one commit.
                if engine.epoch != len(writes):
                    raise RuntimeError(
                        f"{len(writes)} acks but epoch={engine.epoch}"
                    )
                rows.append(
                    {
                        "mix": mix,
                        "threads": threads,
                        "reads": len(reads),
                        "writes": len(writes),
                        "total_qps": round(
                            (len(reads) + len(writes)) / elapsed, 1
                        ),
                        "writes_per_s": round(len(writes) / elapsed, 1),
                        "read_p50_ms": pct(reads, 50),
                        "read_p99_ms": pct(reads, 99),
                        "write_p50_ms": pct(writes, 50),
                        "write_p99_ms": pct(writes, 99),
                    }
                )
            finally:
                server.close()
                wal.close()
    return (
        f"Durable mixed read/write serving: {threads} closed-loop "
        f"clients, n={n}, WAL fsync=always",
        rows,
    )


def compactness_drift(
    total_mutations: int = 10_000,
    checkpoints: int = 5,
) -> tuple[str, list[dict]]:
    """Compactness drift under sustained structured mutations, with
    and without background maintenance.

    The corrections overlay freezes the super-node structure, so a
    mutation stream that *changes the community structure* (here: the
    planted blocks are gradually rewired into an orthogonal residue
    grouping) makes the live summary drift — corrections pile up
    against a partition that no longer matches the graph.  Three
    tracks over the same deterministic script:

    * ``drift``      — overlay only (``rebuild_factor=None``);
    * ``maintained`` — same engine plus periodic budgeted
      :meth:`~repro.service.ingest.MutableQueryEngine.maintenance_pass`
      ticks (the PR's background maintenance loop);
    * ``scratch``    — from-scratch re-summarization of the current
      graph at each checkpoint (the compactness floor).

    Reported per checkpoint: live cost/m per track and each live
    track's ratio to scratch.  The acceptance bar: after the full
    stream the maintained ratio stays within 1.15x of scratch while
    the unmaintained overlay drifts past 1.5x.
    """
    import random as _random

    from repro.dynamic.maintenance import MaintenanceTask
    from repro.dynamic.summary import DynamicGraphSummary
    from repro.graph import generators
    from repro.graph.graph import Graph
    from repro.service.ingest import MutableQueryEngine

    quick = quick_mode()
    n = 200 if quick else 600
    communities = 10 if quick else 20
    if quick:
        total_mutations = min(total_mutations, 600)
        checkpoints = min(checkpoints, 3)
    graph = generators.planted_partition(
        n, communities, p_in=0.6, p_out=0.01, seed=5
    )
    T = bench_iterations()
    factory = lambda: MagsDMSummarizer(iterations=T, seed=0)  # noqa: E731
    rep = factory().summarize(graph).representation

    # Deterministic rewiring script: the generator's communities are
    # residue classes (u % communities), so the orthogonal target is
    # consecutive blocks (u // block).  Delete edges crossing the
    # block grouping, insert the blocks' missing intra pairs — the
    # graph migrates to a structure orthogonal to the one the frozen
    # partition encodes.
    rng = _random.Random(17)
    edges = set(graph.edges())
    block = n // communities
    new_community = lambda x: x // block  # noqa: E731
    deletions = [
        e for e in sorted(edges) if new_community(e[0]) != new_community(e[1])
    ]
    rng.shuffle(deletions)
    insertions = []
    for start in range(0, n, block):
        members = range(start, min(start + block, n))
        for u in members:
            for v in members:
                if u < v and (u, v) not in edges:
                    insertions.append((u, v))
    rng.shuffle(insertions)
    script: list[tuple[str, int, int]] = []
    while len(script) < total_mutations and (deletions or insertions):
        if deletions:
            script.append(("-", *deletions.pop()))
        if insertions and len(script) < total_mutations:
            script.append(("+", *insertions.pop()))
    total_mutations = len(script)

    drift_engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(rep),
        cache_size=n,
    )
    maintained_engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(
            rep, summarizer_factory=factory
        ),
        cache_size=n,
    )
    task = MaintenanceTask(
        maintained_engine,
        interval=60.0,  # driven via run_once, never started
        max_supernodes=48,
        max_passes=64,
    )

    batch = 25
    maintenance_every = 10 if quick else 20  # batches between ticks
    step = max(1, total_mutations // checkpoints)
    marks = sorted(
        {min(k * step, total_mutations) for k in range(1, checkpoints)}
        | {total_mutations}
    )

    rows: list[dict] = []
    applied = 0
    seq = 0
    maintenance_passes = 0
    for start in range(0, total_mutations, batch):
        chunk = [list(op) for op in script[start:start + batch]]
        seq += 1
        for engine in (drift_engine, maintained_engine):
            ack = engine.ingest(f"bench-{id(engine)}", seq, chunk)
            if ack["applied"] != len(chunk):
                raise RuntimeError(f"bad ack: {ack}")
        applied += len(chunk)
        at_mark = bool(marks) and applied >= marks[0]
        if seq % maintenance_every == 0 or at_mark:
            maintenance_passes += task.run_once()["passes"]
        if at_mark:
            marks.pop(0)
            live = drift_engine._dynamic
            m = live.m
            current = Graph(n, live.to_representation().reconstruct_edges())
            scratch_cost = factory().summarize(current).representation.cost
            drift_cost = live.cost
            maintained_cost = maintained_engine._dynamic.cost
            rows.append(
                {
                    "mutations": applied,
                    "m": m,
                    "scratch_cost_per_m": round(scratch_cost / m, 4),
                    "maintained_cost_per_m": round(maintained_cost / m, 4),
                    "drift_cost_per_m": round(drift_cost / m, 4),
                    "maintained_ratio": round(
                        maintained_cost / scratch_cost, 4
                    ),
                    "drift_ratio": round(drift_cost / scratch_cost, 4),
                    "maintenance_passes": maintenance_passes,
                }
            )

    # Both live tracks must still decode to the same simulated graph.
    expect = set(
        Graph(n, (e for e in graph.edges())).edges()
    )
    for op, u, v in script:
        if op == "+":
            expect.add((u, v))
        else:
            expect.discard((u, v))
    for engine in (drift_engine, maintained_engine):
        got = set(engine._dynamic.to_representation().reconstruct_edges())
        if got != expect:
            raise RuntimeError("mutated summary no longer matches graph")
    return (
        f"Compactness drift over {total_mutations} structured "
        f"mutations, n={n} (maintained vs drift vs from-scratch)",
        rows,
    )
