"""Gap-encoded binary codecs for graphs and for representations.

Section 7 of the paper: graph compression "complements (and is
orthogonal to)" summarization — "we can feed the output of our Mags or
Mags-DM to another graph compression method, and compress it
further."  This module makes that claim testable:

* :class:`GraphCodec` serialises a plain graph the way adjacency-list
  compressors do — sorted neighbor lists, delta (gap) coded, varint
  bytes;
* :class:`SummaryCodec` serialises a representation ``R = (S, C)``
  with the same machinery (member lists, super-adjacency, correction
  lists, all gap-coded);
* :func:`compression_report` compares the two end to end, giving the
  bits-per-edge numbers a storage engineer would look at.

Both codecs round-trip exactly; the tests verify bit-identical
recovery and that the decoded summary still reconstructs the original
graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression.varint import (
    decode_varint,
    encode_varint,
)
from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = [
    "GraphCodec",
    "SummaryCodec",
    "CompressionReport",
    "compression_report",
]

_GRAPH_MAGIC = b"RGv1"
_SUMMARY_MAGIC = b"RSv1"


def _encode_sorted_list(values: list[int], out: bytearray) -> None:
    """Length + first value + gaps, all varints."""
    out.extend(encode_varint(len(values)))
    previous = 0
    for index, value in enumerate(values):
        if index == 0:
            out.extend(encode_varint(value))
        else:
            out.extend(encode_varint(value - previous - 1))
        previous = value
    return None


def _decode_sorted_list(data: bytes, offset: int) -> tuple[list[int], int]:
    count, offset = decode_varint(data, offset)
    values: list[int] = []
    previous = 0
    for index in range(count):
        gap, offset = decode_varint(data, offset)
        value = gap if index == 0 else previous + gap + 1
        values.append(value)
        previous = value
    return values, offset


class GraphCodec:
    """Binary adjacency-list codec (gap + varint)."""

    @staticmethod
    def encode(graph: Graph) -> bytes:
        out = bytearray(_GRAPH_MAGIC)
        out.extend(encode_varint(graph.n))
        for u in graph.nodes():
            # Store only higher-numbered neighbors: each edge once.
            successors = sorted(v for v in graph.adjacency()[u] if v > u)
            _encode_sorted_list(successors, out)
        return bytes(out)

    @staticmethod
    def decode(data: bytes) -> Graph:
        if data[:4] != _GRAPH_MAGIC:
            raise ValueError("not a graph blob")
        offset = 4
        n, offset = decode_varint(data, offset)
        edges: list[tuple[int, int]] = []
        for u in range(n):
            successors, offset = _decode_sorted_list(data, offset)
            edges.extend((u, v) for v in successors)
        return Graph(n, edges)


class SummaryCodec:
    """Binary codec for a representation ``R = (S, C)``."""

    @staticmethod
    def encode(rep: Representation) -> bytes:
        out = bytearray(_SUMMARY_MAGIC)
        out.extend(encode_varint(rep.n))
        out.extend(encode_varint(rep.m))
        # Super-node member lists, in sorted super-node id order; ids
        # themselves are re-numbered densely on decode, so only the
        # membership structure is stored.
        sids = sorted(rep.supernodes)
        sid_index = {sid: i for i, sid in enumerate(sids)}
        out.extend(encode_varint(len(sids)))
        for sid in sids:
            _encode_sorted_list(sorted(rep.supernodes[sid]), out)
        # Super-edges as per-super-node successor lists.
        successors: list[list[int]] = [[] for _ in sids]
        for su, sv in rep.summary_edges:
            iu, iv = sid_index[su], sid_index[sv]
            iu, iv = min(iu, iv), max(iu, iv)
            successors[iu].append(iv)
        for succ in successors:
            _encode_sorted_list(sorted(succ), out)
        # Corrections as adjacency-style per-node successor lists:
        # sorted source nodes (gap-coded) each carrying a gap-coded
        # sorted list of targets — the same layout as GraphCodec, so
        # correction-heavy summaries pay graph-codec prices, not
        # flat-pair prices.
        for pairs in (rep.additions, rep.removals):
            by_source: dict[int, list[int]] = {}
            for u, v in pairs:
                by_source.setdefault(u, []).append(v)
            out.extend(encode_varint(len(by_source)))
            previous_u = 0
            for index, u in enumerate(sorted(by_source)):
                if index == 0:
                    out.extend(encode_varint(u))
                else:
                    out.extend(encode_varint(u - previous_u - 1))
                previous_u = u
                _encode_sorted_list(sorted(by_source[u]), out)
        return bytes(out)

    @staticmethod
    def decode(data: bytes) -> Representation:
        if data[:4] != _SUMMARY_MAGIC:
            raise ValueError("not a summary blob")
        offset = 4
        n, offset = decode_varint(data, offset)
        m, offset = decode_varint(data, offset)
        count, offset = decode_varint(data, offset)
        supernodes: dict[int, list[int]] = {}
        for sid in range(count):
            members, offset = _decode_sorted_list(data, offset)
            supernodes[sid] = members
        summary_edges: set[tuple[int, int]] = set()
        for iu in range(count):
            succ, offset = _decode_sorted_list(data, offset)
            for iv in succ:
                summary_edges.add((iu, iv))
        corrections: list[set[tuple[int, int]]] = []
        for __ in range(2):
            groups, offset = decode_varint(data, offset)
            pairs: set[tuple[int, int]] = set()
            previous_u = 0
            for index in range(groups):
                gap, offset = decode_varint(data, offset)
                u = gap if index == 0 else previous_u + gap + 1
                previous_u = u
                targets, offset = _decode_sorted_list(data, offset)
                pairs.update((u, v) for v in targets)
            corrections.append(pairs)
        node_to_supernode = {
            node: sid for sid, members in supernodes.items() for node in members
        }
        return Representation(
            n=n,
            m=m,
            supernodes=supernodes,
            node_to_supernode=node_to_supernode,
            summary_edges=summary_edges,
            additions=corrections[0],
            removals=corrections[1],
        )


@dataclass(frozen=True)
class CompressionReport:
    """Byte accounting for plain vs summarized storage."""

    m: int
    graph_bytes: int
    summary_bytes: int

    @property
    def graph_bits_per_edge(self) -> float:
        return 8 * self.graph_bytes / self.m if self.m else 0.0

    @property
    def summary_bits_per_edge(self) -> float:
        return 8 * self.summary_bytes / self.m if self.m else 0.0

    @property
    def ratio(self) -> float:
        """summary/graph byte ratio (below 1 = summarization helps)."""
        if self.graph_bytes == 0:
            return 0.0
        return self.summary_bytes / self.graph_bytes


def compression_report(
    graph: Graph, representation: Representation
) -> CompressionReport:
    """Compare gap+varint storage of the graph vs its summary."""
    return CompressionReport(
        m=graph.m,
        graph_bytes=len(GraphCodec.encode(graph)),
        summary_bytes=len(SummaryCodec.encode(representation)),
    )
