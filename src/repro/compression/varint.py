"""Variable-length integer coding primitives.

The compression pipeline (Section 7 of the paper: summarization
composes with any downstream graph compression) needs a concrete
codec; this module provides LEB128-style varints and zig-zag coding,
the standard building blocks of adjacency-list compressors such as
WebGraph's successors.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_varints",
    "decode_varints",
    "zigzag_encode",
    "zigzag_decode",
    "varint_size",
]


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one varint from ``data[offset:]``.

    Returns ``(value, next_offset)``; raises ``ValueError`` on
    truncated input.
    """
    value = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise ValueError("truncated varint")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7


def encode_varints(values: Iterable[int]) -> bytes:
    """Concatenate the varint encodings of ``values``."""
    out = bytearray()
    for value in values:
        out.extend(encode_varint(value))
    return bytes(out)


def decode_varints(data: bytes) -> Iterator[int]:
    """Decode a stream of concatenated varints."""
    offset = 0
    while offset < len(data):
        value, offset = decode_varint(data, offset)
        yield value


def varint_size(value: int) -> int:
    """Bytes :func:`encode_varint` uses for ``value``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


def zigzag_encode(value: int) -> int:
    """Map a signed integer to an unsigned one (0, -1, 1, -2, ...)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    if value & 1:
        return -((value + 1) >> 1)
    return value >> 1
