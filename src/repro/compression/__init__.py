"""Downstream graph compression (Section 7: composes with summaries)."""

from repro.compression.codec import (
    CompressionReport,
    GraphCodec,
    SummaryCodec,
    compression_report,
)
from repro.compression.varint import (
    decode_varint,
    decode_varints,
    encode_varint,
    encode_varints,
    varint_size,
    zigzag_decode,
    zigzag_encode,
)

__all__ = [
    "CompressionReport",
    "GraphCodec",
    "SummaryCodec",
    "compression_report",
    "decode_varint",
    "decode_varints",
    "encode_varint",
    "encode_varints",
    "varint_size",
    "zigzag_decode",
    "zigzag_encode",
]
