"""Durable, corruption-detected checkpoints for long runs.

A Mags/Mags-DM run on a paper-scale graph is hours of work; a killed
process should not restart from iteration 1.  :class:`CheckpointStore`
persists small JSON state snapshots with the three properties a
recovery path needs:

* **atomic** — the payload is written to a temp file in the same
  directory and ``os.replace``'d into place, so a crash mid-write
  leaves either the previous checkpoint or none, never a half-file;
* **versioned** — files are ``ckpt-<step>.json`` and the store keeps
  the newest ``keep`` of them, so one bad snapshot does not erase
  history;
* **corruption-detected** — every file embeds a SHA-256 checksum over
  its state payload; :meth:`CheckpointStore.load` raises
  :class:`CheckpointCorrupt` on mismatch and
  :meth:`CheckpointStore.latest` transparently falls back to the
  newest *intact* checkpoint (counting the skip in the
  :mod:`repro.obs` registry).

The format is deliberately the same plain-JSON-per-file shape the
rest of the repo uses: ``{"v": 1, "step": ..., "checksum": ...,
"state": {...}}`` with the checksum computed over the canonical
(sorted-keys, compact) encoding of ``state``.

Fault-injection site: ``checkpoint:write`` — a scheduled ``corrupt``
fault flips bytes in the payload before it hits disk, which is how
the chaos harness produces realistic torn checkpoints.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "CheckpointError",
    "CheckpointCorrupt",
]

FORMAT_VERSION = 1

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be read or written."""


class CheckpointCorrupt(CheckpointError):
    """A checkpoint file failed its checksum or failed to parse."""


@dataclass(frozen=True)
class Checkpoint:
    """One loaded snapshot."""

    step: int
    state: dict
    path: Path


def _canonical(state: dict) -> bytes:
    return json.dumps(
        state, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _checksum(state: dict) -> str:
    return hashlib.sha256(_canonical(state)).hexdigest()


class CheckpointStore:
    """Versioned checkpoint directory.

    Parameters
    ----------
    directory:
        Created on first save if missing.
    keep:
        Newest snapshots retained; older ones are pruned after each
        successful save.
    """

    def __init__(self, directory: str | Path, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep

    # -- paths -----------------------------------------------------------
    def path_for(self, step: int) -> Path:
        if step < 0:
            raise ValueError("step must be >= 0")
        return self.directory / f"ckpt-{step:08d}.json"

    def steps(self) -> list[int]:
        """All stored step numbers, ascending (corrupt files included —
        corruption is only detectable on read)."""
        if not self.directory.is_dir():
            return []
        found = []
        for entry in self.directory.iterdir():
            match = _NAME_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # -- write -----------------------------------------------------------
    def save(self, state: dict, step: int) -> Path:
        """Atomically persist ``state`` as the checkpoint for ``step``."""
        from repro.resilience.faults import active_injector

        path = self.path_for(step)
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "v": FORMAT_VERSION,
            "step": step,
            "checksum": _checksum(state),
            "state": state,
        }
        payload = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        injector = active_injector()
        if injector is not None:
            payload = injector.corrupt("checkpoint:write", payload)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".ckpt-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(payload)
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._record("saved")
        self._prune()
        return path

    def _prune(self) -> None:
        steps = self.steps()
        for step in steps[: max(0, len(steps) - self.keep)]:
            try:
                self.path_for(step).unlink()
            except OSError:
                pass

    # -- read ------------------------------------------------------------
    def load(self, step: int) -> Checkpoint:
        """Load and verify one checkpoint; raises
        :class:`CheckpointCorrupt` on any integrity failure."""
        path = self.path_for(step)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read {path}: {exc}") from exc
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorrupt(
                f"{path} is not valid checkpoint JSON: {exc}"
            ) from exc
        if not isinstance(record, dict) or record.get("v") != FORMAT_VERSION:
            raise CheckpointCorrupt(
                f"{path} has unsupported checkpoint version "
                f"{record.get('v') if isinstance(record, dict) else '?'!r}"
            )
        state = record.get("state")
        if not isinstance(state, dict):
            raise CheckpointCorrupt(f"{path} carries no state object")
        if record.get("checksum") != _checksum(state):
            raise CheckpointCorrupt(f"{path} failed its checksum")
        if record.get("step") != step:
            raise CheckpointCorrupt(
                f"{path} claims step {record.get('step')!r}, "
                f"expected {step}"
            )
        return Checkpoint(step=step, state=state, path=path)

    def latest(self) -> Checkpoint | None:
        """The newest *intact* checkpoint, or ``None``.

        Corrupt files are skipped (and counted under
        ``repro_resilience_checkpoints_total{event="corrupt_skipped"}``)
        so recovery degrades to the last good snapshot instead of
        failing outright.
        """
        for step in reversed(self.steps()):
            try:
                checkpoint = self.load(step)
            except CheckpointCorrupt:
                self._record("corrupt_skipped")
                continue
            self._record("loaded")
            return checkpoint
        return None

    def _record(self, event: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_resilience_checkpoints_total", event=event
        ).inc()
