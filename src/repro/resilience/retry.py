"""Retry with exponential backoff + jitter, under a deadline budget.

The retry policy is data (:class:`RetryPolicy`), the time budget is
data (:class:`Deadline`), and :func:`call_with_retry` is the one loop
that combines them — the service client and the distributed
coordinator both delegate here so backoff behaviour, metric
accounting and ``resilience:retry`` spans are implemented exactly
once.

Jitter is drawn from a caller-supplied seeded RNG so retry schedules
are reproducible in tests and chaos runs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = [
    "RetryPolicy",
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "call_with_retry",
]

T = TypeVar("T")


class DeadlineExceeded(TimeoutError):
    """The operation's time budget ran out."""


class RetriesExhausted(RuntimeError):
    """Every attempt failed; carries the last underlying error."""

    def __init__(self, label: str, attempts: int, last: BaseException):
        super().__init__(
            f"{label or 'operation'} failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(base_delay * multiplier**(attempt-1), max_delay)``, plus up
    to ``jitter`` of itself drawn from the RNG.  ``max_attempts`` is
    the total number of tries (1 = no retries).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if rng is None or self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * rng.random())


class Deadline:
    """A monotonic-clock time budget.

    ``Deadline.after(2.0)`` expires two seconds from now;
    ``Deadline.never()`` never does.  Engines and retry loops share
    one instance so every layer draws from the same budget.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, expires_at: float | None):
        self._expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    @property
    def expires_at(self) -> float | None:
        return self._expires_at

    def remaining(self) -> float:
        """Seconds left (``inf`` for no deadline; never negative)."""
        if self._expires_at is None:
            return float("inf")
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return (
            self._expires_at is not None
            and time.monotonic() >= self._expires_at
        )

    def check(self, what: str = "operation") -> None:
        if self.expired:
            raise DeadlineExceeded(f"{what} exceeded its deadline budget")

    def clamp(self, seconds: float) -> float:
        """``seconds`` truncated to the remaining budget."""
        return min(seconds, self.remaining())


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...],
    deadline: Deadline | None = None,
    rng: random.Random | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it succeeds, the policy is exhausted, or the
    deadline expires.

    ``on_retry(attempt, error)`` is invoked before each backoff sleep
    (reconnect hooks, logging).  Retries are counted in the global
    :mod:`repro.obs` registry under
    ``repro_resilience_retries_total{component=label}`` and, when a
    tracer is active, wrapped in a ``resilience:retry`` span.
    """
    deadline = deadline or Deadline.never()
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        deadline.check(label or "retry loop")
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt >= policy.max_attempts:
                break
            _record_retry(label)
            if on_retry is not None:
                on_retry(attempt, exc)
            pause = policy.delay(attempt, rng)
            if deadline.remaining() <= pause:
                raise DeadlineExceeded(
                    f"{label or 'retry loop'}: backoff of {pause:.3f}s "
                    f"does not fit the remaining deadline budget"
                ) from exc
            if pause > 0:
                sleep(pause)
    raise RetriesExhausted(label, policy.max_attempts, last)


def _record_retry(label: str) -> None:
    from repro.algorithms.base import active_tracer
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "repro_resilience_retries_total", component=label or "unlabelled"
    ).inc()
    tracer = active_tracer()
    if tracer is not None:
        with tracer.span("resilience:retry", component=label):
            pass
