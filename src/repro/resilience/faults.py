"""Deterministic, seeded fault injection.

Production failure modes — a worker process dying, a straggling
machine, a dropped TCP connection, a corrupted checkpoint file — are
rare in tests and constant in deployments.  This module lets the
test-suite and the chaos harness *schedule* them: a :class:`FaultPlan`
lists faults keyed by **site labels** (strings like ``worker:2`` or
``client:send``), and a :class:`FaultInjector` fires them when the
instrumented code paths pass through those sites.

Everything is deterministic: a fault either fires on specific hit
numbers of its site (``after``/``times``) or with a probability drawn
from the injector's seeded RNG, so a chaos run with a fixed seed
replays exactly.

The hooks are **zero-cost when disabled**: call sites resolve the
process-global injector through :func:`active_injector` (or the
``sys.modules`` gate in :func:`repro.algorithms.base.active_fault_injector`)
and skip everything when it is ``None`` — no plan configured means one
``is None`` check, and a process that never imports this module pays
nothing at all.

Fault kinds
-----------
``crash_before`` / ``crash_after``
    Raise :class:`InjectedFault` at the entry / exit hook of the site
    (a worker that dies before producing output vs. after).
``delay``
    Sleep ``delay_s`` seconds at the entry hook (a straggler).
``drop``
    Raise :class:`InjectedConnectionDrop` (a ``ConnectionError``
    subclass) at the entry hook — transport code treats it exactly
    like a peer reset.
``corrupt``
    Flip bytes in a payload passed through :meth:`FaultInjector.corrupt`
    (checkpoint files, wire messages).
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedConnectionDrop",
    "active_injector",
    "set_injector",
    "use_injector",
]

FAULT_KINDS = ("crash_before", "crash_after", "delay", "drop", "corrupt")


class InjectedFault(RuntimeError):
    """A scheduled crash fired by the injector."""

    def __init__(self, site: str, kind: str):
        super().__init__(f"injected {kind} fault at site {site!r}")
        self.site = site
        self.kind = kind


class InjectedConnectionDrop(ConnectionError):
    """A scheduled connection drop; transport code sees a plain
    :class:`ConnectionError`."""

    def __init__(self, site: str):
        super().__init__(f"injected connection drop at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    site:
        The label the instrumented code passes to the injector.
    kind:
        One of :data:`FAULT_KINDS`.
    after:
        Number of site hits to let through before the fault arms
        (``after=1`` spares the first pass).
    times:
        How many hits the armed fault fires on (then it is spent);
        ``None`` means every hit.
    delay_s:
        Sleep duration for ``delay`` faults.
    probability:
        When set, the armed fault fires on each eligible hit with this
        probability (drawn from the injector's seeded RNG) instead of
        unconditionally.
    """

    site: str
    kind: str
    after: int = 0
    times: int | None = 1
    delay_s: float = 0.0
    probability: float | None = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None for always)")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")


@dataclass
class FaultPlan:
    """An ordered list of :class:`FaultSpec`; build with the helpers.

    >>> plan = FaultPlan().crash("worker:1").delay("worker:2", 0.01)
    >>> [s.kind for s in plan.specs]
    ['crash_before', 'delay']
    """

    specs: list[FaultSpec] = field(default_factory=list)

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def crash(self, site: str, *, after: int = 0, times: int = 1,
              when: str = "before") -> "FaultPlan":
        kind = "crash_before" if when == "before" else "crash_after"
        return self.add(FaultSpec(site, kind, after=after, times=times))

    def delay(self, site: str, seconds: float, *, after: int = 0,
              times: int | None = 1) -> "FaultPlan":
        return self.add(
            FaultSpec(site, "delay", after=after, times=times,
                      delay_s=seconds)
        )

    def drop(self, site: str, *, after: int = 0, times: int = 1,
             probability: float | None = None) -> "FaultPlan":
        return self.add(
            FaultSpec(site, "drop", after=after, times=times,
                      probability=probability)
        )

    def corrupt(self, site: str, *, after: int = 0,
                times: int | None = 1) -> "FaultPlan":
        return self.add(FaultSpec(site, "corrupt", after=after, times=times))


class _ArmedFault:
    """Mutable firing state for one spec inside one injector."""

    __slots__ = ("spec", "fired")

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self.fired = 0

    def should_fire(self, hit: int, rng: random.Random) -> bool:
        spec = self.spec
        if hit <= spec.after:
            return False
        if spec.times is not None and self.fired >= spec.times:
            return False
        if spec.probability is not None and rng.random() >= spec.probability:
            return False
        self.fired += 1
        return True


class FaultInjector:
    """Fires the faults of one :class:`FaultPlan` deterministically.

    Thread-safe: hit counters and the RNG are guarded by a lock so
    concurrent workers hitting the same site observe a consistent
    schedule.  Every fired fault is counted in the global
    :mod:`repro.obs` registry
    (``repro_resilience_faults_injected_total{site=...,kind=...}``).
    """

    def __init__(self, plan: FaultPlan, seed: int = 0,
                 sleep=time.sleep):
        self.plan = plan
        self.seed = seed
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._armed: dict[str, list[_ArmedFault]] = {}
        for spec in plan.specs:
            self._armed.setdefault(spec.site, []).append(_ArmedFault(spec))
        #: Fired faults as ``(site, kind)`` in firing order.
        self.fired: list[tuple[str, str]] = []

    # -- firing ----------------------------------------------------------
    def _fire_matching(self, site: str, kinds: tuple[str, ...]) -> list[str]:
        armed = self._armed.get(site)
        if not armed:
            return []
        fired: list[str] = []
        with self._lock:
            self._hits[site] = hit = self._hits.get(site, 0) + 1
            for fault in armed:
                if fault.spec.kind in kinds and fault.should_fire(
                    hit, self._rng
                ):
                    fired.append(fault.spec.kind)
                    self.fired.append((site, fault.spec.kind))
        for kind in fired:
            self._record(site, kind)
        return fired

    def before(self, site: str) -> None:
        """Entry hook: fires ``crash_before``, ``delay`` and ``drop``
        faults scheduled for ``site``."""
        for kind in self._fire_matching(
            site, ("crash_before", "delay", "drop")
        ):
            if kind == "delay":
                delay = max(
                    f.spec.delay_s
                    for f in self._armed[site]
                    if f.spec.kind == "delay"
                )
                self._sleep(delay)
            elif kind == "drop":
                raise InjectedConnectionDrop(site)
            else:
                raise InjectedFault(site, kind)

    def after(self, site: str) -> None:
        """Exit hook: fires ``crash_after`` faults for ``site``."""
        for kind in self._fire_matching(site, ("crash_after",)):
            raise InjectedFault(site, kind)

    def corrupt(self, site: str, data: bytes) -> bytes:
        """Pass ``data`` through ``site``; a scheduled ``corrupt``
        fault deterministically flips one byte per 64 (at least one)."""
        if not self._fire_matching(site, ("corrupt",)) or not data:
            return data
        corrupted = bytearray(data)
        rng = random.Random(self.seed ^ len(data))
        for _ in range(max(1, len(data) // 64)):
            index = rng.randrange(len(corrupted))
            corrupted[index] ^= 0xFF
        return bytes(corrupted)

    # -- inspection ------------------------------------------------------
    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def fired_count(self, site: str | None = None) -> int:
        with self._lock:
            if site is None:
                return len(self.fired)
            return sum(1 for s, __ in self.fired if s == site)

    def _record(self, site: str, kind: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_resilience_faults_injected_total", site=site, kind=kind
        ).inc()


#: The process-global injector; ``None`` (the default) disables
#: injection entirely — call sites skip all bookkeeping.
_INJECTOR: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The configured global injector, or ``None`` when disabled."""
    return _INJECTOR


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or clear, with ``None``) the global injector."""
    global _INJECTOR
    _INJECTOR = injector


@contextlib.contextmanager
def use_injector(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped injector installation (tests, the chaos harness)."""
    previous = _INJECTOR
    set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)
