"""Circuit breaker: stop hammering a failing dependency.

Classic three-state breaker (closed -> open -> half-open) guarding
the query engine inside :class:`~repro.service.server.SummaryQueryServer`:
after ``failure_threshold`` consecutive internal failures the breaker
*opens* and requests are rejected immediately with a structured
``overloaded`` error (cheap, bounded) instead of each one paying the
failure latency; after ``reset_timeout`` seconds one probe request is
let through (*half-open*) — success closes the breaker, failure
re-opens it for another window.

Only *internal* faults trip the breaker; client errors
(``bad_request``) and per-request timeouts are the caller's problem,
not evidence the engine is sick.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Thread-safe consecutive-failure circuit breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the breaker.
    reset_timeout:
        Seconds the breaker stays open before allowing a probe.
    clock:
        Injectable monotonic clock (tests).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime count of closed->open transitions.
        self.times_opened = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request proceed right now?

        In the half-open state only one caller wins the probe slot;
        the rest stay rejected until the probe resolves.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN:
                # Claim the probe: re-open pessimistically so only one
                # in-flight probe exists; success will close us.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if (
                self._state != self.OPEN
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.times_opened += 1
            elif self._state == self.OPEN:
                # A failed half-open probe re-arms the window.
                self._opened_at = self._clock()
