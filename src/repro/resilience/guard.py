"""Resource governance: budgets that make summarization *anytime*.

The paper's experimental protocol kills runs at a hard 24-hour limit
(:class:`~repro.algorithms.base.TimeLimitExceeded`), which throws the
work away.  Production wants the opposite contract — SWeG and LDME
both stress summarizing graphs far beyond memory — so a
:class:`ResourceBudget` turns Mags / Mags-DM / Greedy into **anytime
algorithms**: when the budget is exhausted the run stops *cleanly* at
the next phase or iteration boundary and returns the current valid
summary, flagged ``truncated=True`` on the
:class:`~repro.algorithms.base.SummaryResult`.  A truncated summary is
still a lossless encoding of the input (every committed merge keeps
the partition valid and the optimal output encoding is exact), it is
merely less compact than an unconstrained run's.

Budget dimensions:

* **wall clock** (``time_budget`` seconds) — checked on every
  :meth:`exhausted` call via the monotonic clock;
* **memory** (``memory_budget_mb`` RSS ceiling) — sampled by a daemon
  watchdog thread between :meth:`start` and :meth:`stop`, so the hot
  path never reads ``/proc``; the main thread only reads a flag;
* **merge count** (``max_merges``) — equivalently a floor of
  ``n - max_merges`` super-nodes, bounding how much merge work one
  job may consume;
* **candidate count** (``max_candidates``) — a cap on the candidate
  pair set an algorithm may materialise (the dominant memory term of
  Mags / Greedy).  Trimming does not *stop* the run; it flags the
  result truncated because the search space was reduced.

The algorithm layer never imports this module: the budget is handed to
:meth:`~repro.algorithms.base.Summarizer.configure_budget` duck-typed,
exactly like the checkpoint store, so unbudgeted runs execute the
pre-guard code paths unchanged.  With a generous budget the checks are
pure reads (no RNG, no state the algorithms observe), so output is
bit-identical to an unbudgeted run — asserted in
``tests/test_guard_budget.py``.

Every trip is counted under
``repro_guard_budget_trips_total{reason=...}`` in :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time

__all__ = ["ResourceBudget", "current_rss_mb"]


def current_rss_mb() -> float | None:
    """This process's resident set size in MiB, or ``None`` when the
    platform offers no way to read it (the memory ceiling is then
    silently unenforceable — budgets degrade, they never crash).

    Prefers ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``resource.getrusage`` (peak RSS), which over-approximates but is
    still a safe ceiling signal.
    """
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        import resource

        return pages * resource.getpagesize() / (1024.0 * 1024.0)
    except (OSError, ValueError, IndexError, ImportError):
        pass
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalise heuristically.
        return rss / 1024.0 if rss < (1 << 40) else rss / (1024.0 * 1024.0)
    except (ImportError, OSError, ValueError):
        return None


class ResourceBudget:
    """A bundle of resource ceilings for one summarization run.

    Parameters
    ----------
    time_budget:
        Wall-clock seconds from :meth:`start`; ``None`` = unlimited.
    memory_budget_mb:
        RSS ceiling in MiB, enforced by a watchdog thread sampling
        every ``poll_interval`` seconds; ``None`` = unlimited.
    max_merges:
        Total merges the run may commit (``None`` = unlimited).
    max_candidates:
        Candidate pairs an algorithm may keep per generation sweep
        (``None`` = unlimited); excess pairs are dropped
        deterministically (the tail of the sorted pair list).
    poll_interval:
        Watchdog sampling period in seconds.

    The object is reusable across runs: :meth:`start` resets the
    clock, the merge counter and the trip record.
    """

    def __init__(
        self,
        time_budget: float | None = None,
        memory_budget_mb: float | None = None,
        max_merges: int | None = None,
        max_candidates: int | None = None,
        poll_interval: float = 0.25,
    ):
        if time_budget is not None and time_budget < 0:
            raise ValueError("time_budget must be >= 0")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be > 0")
        if max_merges is not None and max_merges < 0:
            raise ValueError("max_merges must be >= 0")
        if max_candidates is not None and max_candidates < 0:
            raise ValueError("max_candidates must be >= 0")
        if poll_interval <= 0:
            raise ValueError("poll_interval must be > 0")
        self.time_budget = time_budget
        self.memory_budget_mb = memory_budget_mb
        self.max_merges = max_merges
        self.max_candidates = max_candidates
        self.poll_interval = poll_interval
        self._started_at: float | None = None
        self._merges = 0
        self._memory_tripped = threading.Event()
        self._stop_watchdog = threading.Event()
        self._watchdog: threading.Thread | None = None
        #: Every budget dimension that tripped, in first-hit order.
        self.trips: list[str] = []

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ResourceBudget":
        """Arm the budget: reset counters, start the clock and (when a
        memory ceiling is set) the watchdog thread."""
        self._started_at = time.monotonic()
        self._merges = 0
        self.trips = []
        self._memory_tripped.clear()
        self._stop_watchdog.clear()
        if self.memory_budget_mb is not None and current_rss_mb() is not None:
            self._watchdog = threading.Thread(
                target=self._watch_memory,
                name="repro-budget-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        return self

    def stop(self) -> None:
        """Disarm: stop the watchdog (idempotent)."""
        self._stop_watchdog.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None

    def __enter__(self) -> "ResourceBudget":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _watch_memory(self) -> None:
        while not self._stop_watchdog.wait(self.poll_interval):
            rss = current_rss_mb()
            if rss is not None and rss > self.memory_budget_mb:
                self._memory_tripped.set()
                return

    # -- accounting ------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    @property
    def merges(self) -> int:
        """Merges noted so far this run."""
        return self._merges

    def note_merges(self, k: int = 1) -> None:
        """Record ``k`` committed merges against ``max_merges``."""
        self._merges += k

    def clamp_candidates(self, pairs: list) -> list:
        """Trim a candidate pair list to ``max_candidates``.

        Returns the (possibly shortened) list; a trim records a
        ``candidate_cap`` trip, which flags the run's result truncated
        without stopping it.
        """
        cap = self.max_candidates
        if cap is None or len(pairs) <= cap:
            return pairs
        self._trip("candidate_cap")
        return pairs[:cap]

    # -- exhaustion ------------------------------------------------------
    def exhausted(self) -> str | None:
        """The reason the run must stop now, or ``None``.

        Returns one of ``"time_budget"``, ``"memory_budget"``,
        ``"merge_cap"`` — each recorded (and counted in the metrics
        registry) on first detection.  Cheap enough for inner loops:
        one clock read plus two comparisons.
        """
        if (
            self.time_budget is not None
            and self._started_at is not None
            and time.monotonic() - self._started_at > self.time_budget
        ):
            return self._trip("time_budget")
        if self._memory_tripped.is_set():
            return self._trip("memory_budget")
        if self.max_merges is not None and self._merges >= self.max_merges:
            return self._trip("merge_cap")
        return None

    def _trip(self, reason: str) -> str:
        if reason not in self.trips:
            self.trips.append(reason)
            self._record(reason)
        return reason

    @staticmethod
    def _record(reason: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_guard_budget_trips_total", reason=reason
        ).inc()
