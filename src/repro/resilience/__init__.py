"""repro.resilience — fault tolerance for summarization and serving.

Four small, composable pieces:

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection (crashes, stragglers, connection drops, payload
  corruption) keyed by site labels; zero-cost when no injector is
  configured;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff + seeded jitter), :class:`Deadline` budgets and the shared
  :func:`call_with_retry` loop;
* :mod:`repro.resilience.checkpoint` — atomic, versioned,
  checksum-verified :class:`CheckpointStore` for long summarization
  runs (``python -m repro summarize --checkpoint-dir/--resume``);
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` guarding
  the serving engine;
* :mod:`repro.resilience.guard` — :class:`ResourceBudget` resource
  governance (wall-clock deadline, RSS watchdog, merge/candidate
  caps) that turns the summarizers into anytime algorithms.

Consumers: :class:`~repro.service.client.SummaryServiceClient`
(auto-reconnect + idempotent retry),
:class:`~repro.service.server.SummaryQueryServer` (load shedding,
breaker, degraded mode),
:class:`~repro.distributed.DistributedSummarizer` (worker retry and
singleton-partition fallback) and the Mags/Mags-DM summarizers
(checkpoint/resume).  Everything reports into :mod:`repro.obs`
(``repro_resilience_*`` metrics, ``resilience:`` spans).  See
``docs/resilience.md`` and ``tools/chaos_harness.py``.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointStore,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedConnectionDrop,
    InjectedFault,
    active_injector,
    set_injector,
    use_injector,
)
from repro.resilience.guard import ResourceBudget, current_rss_mb
from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    call_with_retry,
)

__all__ = [
    # faults
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "InjectedConnectionDrop",
    "active_injector",
    "set_injector",
    "use_injector",
    # retry
    "RetryPolicy",
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "call_with_retry",
    # checkpoint
    "Checkpoint",
    "CheckpointStore",
    "CheckpointError",
    "CheckpointCorrupt",
    # breaker
    "CircuitBreaker",
    # guard
    "ResourceBudget",
    "current_rss_mb",
]
