"""repro.obs — unified tracing, metrics and phase profiling.

The observability layer the rest of the package reports into:

* :mod:`repro.obs.tracer` — nested spans with wall/CPU time, counters
  and events; a no-op :data:`NULL_TRACER` keeps the disabled cost to
  one attribute check;
* :mod:`repro.obs.metrics` — the process-global
  :class:`MetricsRegistry` of counters, gauges and p50/p95/p99
  histograms (the serving metrics are a façade over it);
* :mod:`repro.obs.exporters` — JSONL traces, rendered text trees and
  Prometheus text dumps;
* :mod:`repro.obs.schema` — the documented span-record schema and its
  validator (CI checks emitted traces against it);
* :mod:`repro.obs.profiled` — span-per-call decorator for entry
  points.

Everything is stdlib-only.  Importing this package does **not** turn
tracing on — install a tracer with :func:`start_tracing` /
:func:`use_tracer` — and the instrumentation in
:mod:`repro.algorithms.base` activates itself through ``sys.modules``,
so processes that never import ``repro.obs`` run the pre-observability
code paths untouched (the overhead guard test pins this).
"""

from repro.obs.exporters import (
    diff_phase_totals,
    phase_totals,
    read_trace_jsonl,
    registry_to_prometheus,
    render_trace_tree,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.profiled import profiled
from repro.obs.schema import (
    SCHEMA_VERSION,
    validate_record,
    validate_trace,
    validate_trace_file,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    start_tracing,
    stop_tracing,
    use_tracer,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "start_tracing",
    "stop_tracing",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    # exporters
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_trace_tree",
    "phase_totals",
    "diff_phase_totals",
    "registry_to_prometheus",
    # schema
    "SCHEMA_VERSION",
    "validate_record",
    "validate_trace",
    "validate_trace_file",
    # decorator
    "profiled",
]
