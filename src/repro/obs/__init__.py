"""repro.obs — unified tracing, metrics and phase profiling.

The observability layer the rest of the package reports into:

* :mod:`repro.obs.tracer` — nested spans with wall/CPU time, counters
  and events; a no-op :data:`NULL_TRACER` keeps the disabled cost to
  one attribute check;
* :mod:`repro.obs.metrics` — the process-global
  :class:`MetricsRegistry` of counters, gauges and p50/p95/p99
  histograms (the serving metrics are a façade over it);
* :mod:`repro.obs.exporters` — JSONL traces, rendered text trees and
  Prometheus text dumps;
* :mod:`repro.obs.schema` — the documented span-record schema and its
  validator (CI checks emitted traces against it);
* :mod:`repro.obs.context` — the trace context that rides on wire
  requests so spans parent correctly across processes;
* :mod:`repro.obs.collect` — the cluster collector: merges
  per-instance span files into one request tree and per-instance
  registry snapshots into one labelled registry;
* :mod:`repro.obs.slo` — declarative availability/latency objectives
  with error-budget burn, evaluated against merged telemetry;
* :mod:`repro.obs.profiled` — span-per-call decorator for entry
  points.

Everything is stdlib-only.  Importing this package does **not** turn
tracing on — install a tracer with :func:`start_tracing` /
:func:`use_tracer` — and the instrumentation in
:mod:`repro.algorithms.base` activates itself through ``sys.modules``,
so processes that never import ``repro.obs`` run the pre-observability
code paths untouched (the overhead guard test pins this).
"""

from repro.obs.collect import (
    MergedTrace,
    assemble_trace,
    merge_registry_snapshots,
    pull_cluster_telemetry,
    read_trace_dir,
    render_merged_trace,
)
from repro.obs.context import TraceContext, new_trace_id, validate_trace_field
from repro.obs.exporters import (
    SpanSink,
    diff_phase_totals,
    phase_totals,
    read_trace_jsonl,
    registry_to_prometheus,
    render_trace_tree,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.obs.profiled import profiled
from repro.obs.schema import (
    SCHEMA_VERSION,
    SCHEMA_VERSIONS,
    validate_record,
    validate_trace,
    validate_trace_file,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOResult,
    evaluate_slos,
    format_slo_report,
    load_slo_config,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_instance_label,
    get_tracer,
    set_instance_label,
    set_tracer,
    start_tracing,
    stop_tracing,
    use_tracer,
)

__all__ = [
    # tracer
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "start_tracing",
    "stop_tracing",
    "get_instance_label",
    "set_instance_label",
    # context
    "TraceContext",
    "new_trace_id",
    "validate_trace_field",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    # exporters
    "SpanSink",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_trace_tree",
    "phase_totals",
    "diff_phase_totals",
    "registry_to_prometheus",
    # schema
    "SCHEMA_VERSION",
    "SCHEMA_VERSIONS",
    "validate_record",
    "validate_trace",
    "validate_trace_file",
    # collector
    "MergedTrace",
    "assemble_trace",
    "read_trace_dir",
    "render_merged_trace",
    "merge_registry_snapshots",
    "pull_cluster_telemetry",
    # SLOs
    "SLO",
    "SLOResult",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "load_slo_config",
    "format_slo_report",
    # decorator
    "profiled",
]
