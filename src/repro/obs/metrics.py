"""Process-wide metrics: counters, gauges and reservoir histograms.

The :class:`MetricsRegistry` is the single source of truth for
operational numbers — the serving stack's request/error/cache counters
(:mod:`repro.service.metrics` is a thin façade over one of these) and
the summarizers' run/merge totals all land here, keyed by metric name
plus a small label set, Prometheus-style.

Histograms keep a bounded reservoir (most recent ``reservoir``
samples in a deque) so memory stays constant regardless of uptime;
percentiles use the **nearest-rank** rule over the retained window,
which is exact for the window.  This is the one implementation of
percentiles in the codebase — the previous copy in
``repro.service.metrics`` was deleted in favour of it.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default histogram reservoir size (samples retained).
DEFAULT_RESERVOIR = 8192

#: Percentiles reported by :meth:`Histogram.snapshot`.
PERCENTILES = (50.0, 95.0, 99.0)

_NUMBER_T = (int, float)


def nearest_rank(sorted_values: list[float], percentile: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, math.ceil(percentile / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class Counter:
    """Monotonically increasing counter."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (e.g. active connections)."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded-reservoir histogram with exact window percentiles.

    Tracks lifetime ``count`` / ``sum`` / ``min`` / ``max`` and keeps
    the most recent ``reservoir`` observations for percentile queries.
    """

    kind = "histogram"
    __slots__ = ("_lock", "_samples", "_count", "_sum", "_min", "_max")

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        if reservoir < 1:
            raise ValueError("reservoir must be >= 1")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def samples(self) -> deque:
        """The live reservoir (read-only use; the recorder shim in
        ``repro.service.metrics`` exposes it for tests)."""
        return self._samples

    def percentile(self, percentile: float) -> float:
        """Nearest-rank percentile over the retained window (0 when
        empty)."""
        with self._lock:
            window = sorted(self._samples)
        if not window:
            return 0.0
        return nearest_rank(window, percentile)

    def snapshot(self, samples: int = 0) -> dict[str, Any]:
        """Lifetime stats plus window percentiles, in observed units.

        ``samples > 0`` additionally includes (up to) that many of the
        most recent reservoir samples under ``"samples"`` — what makes
        a snapshot *mergeable* with bounded wire size: the cluster
        telemetry op ships capped samples so the collector's merged
        histogram can still answer percentile queries.
        """
        with self._lock:
            window = sorted(self._samples)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            recent = (
                list(self._samples)[-samples:] if samples > 0 else None
            )
        if not count:
            return {"count": 0}
        snap: dict[str, Any] = {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": lo,
            "max": hi,
        }
        for percentile in PERCENTILES:
            snap[f"p{percentile:g}"] = nearest_rank(window, percentile)
        if recent is not None:
            snap["samples"] = recent
        return snap

    def merge(self, snapshot: dict[str, Any]) -> "Histogram":
        """Fold another histogram's :meth:`snapshot` into this one.

        Lifetime ``count``/``sum``/``min``/``max`` merge exactly; the
        reservoir extends with the snapshot's carried ``"samples"``
        (if any), so merged percentiles are computed over the union of
        the retained windows.  Returns self for chaining.
        """
        count = snapshot.get("count", 0)
        if not isinstance(count, _NUMBER_T) or count <= 0:
            return self
        total = snapshot.get("sum", 0.0)
        lo, hi = snapshot.get("min"), snapshot.get("max")
        carried = snapshot.get("samples") or ()
        with self._lock:
            self._count += int(count)
            if isinstance(total, _NUMBER_T):
                self._sum += float(total)
            if isinstance(lo, _NUMBER_T) and lo < self._min:
                self._min = float(lo)
            if isinstance(hi, _NUMBER_T) and hi > self._max:
                self._max = float(hi)
            for value in carried:
                if isinstance(value, _NUMBER_T):
                    self._samples.append(float(value))
        return self


_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    ``registry.counter("requests_total", op="neighbors")`` returns the
    same :class:`Counter` object on every call with the same name and
    labels, so call sites can either cache the handle (hot paths) or
    re-look it up (cold paths) — both hit the same number.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelKey], Any] = {}

    # -- get-or-create ----------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, reservoir: int = DEFAULT_RESERVOIR, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, reservoir=reservoir)

    # -- enumeration ------------------------------------------------------
    def family(self, name: str) -> list[tuple[dict[str, str], Any]]:
        """Every (labels, metric) registered under ``name``."""
        with self._lock:
            return [
                (dict(key[1]), metric)
                for key, metric in self._metrics.items()
                if key[0] == name
            ]

    def collect(self) -> Iterable[tuple[str, dict[str, str], Any]]:
        """All metrics as ``(name, labels, metric)``, sorted by name
        then labels (a stable export order)."""
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, label_key), metric in items:
            yield name, dict(label_key), metric

    def snapshot(self, samples: int = 0) -> dict[str, list[dict[str, Any]]]:
        """Everything, as one JSON-serialisable dict keyed by metric
        name; each entry carries its labels, kind and value/stats.
        ``samples`` is forwarded to :meth:`Histogram.snapshot` (the
        telemetry op ships capped samples for mergeable percentiles).
        """
        out: dict[str, list[dict[str, Any]]] = {}
        for name, labels, metric in self.collect():
            entry: dict[str, Any] = {"labels": labels, "kind": metric.kind}
            if metric.kind == "histogram":
                entry.update(metric.snapshot(samples=samples))
            else:
                entry["value"] = metric.value
            out.setdefault(name, []).append(entry)
        return out

    def clear(self) -> None:
        """Drop every registered metric (tests and fresh runs)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


#: The process-global registry — what `python -m repro profile` dumps
#: and what the summarizer instrumentation records into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return REGISTRY
