"""Cluster trace + telemetry collection.

The read-side of distributed observability.  Per-instance ``repro
serve --trace-dir`` processes each append their own spans to
``<label>.trace.jsonl`` files (see
:class:`~repro.obs.exporters.SpanSink`); every instance also answers
the ``telemetry`` wire op with a registry snapshot.  This module

* reads a whole trace directory back (live + rotated generations),
* reassembles the spans of **one** request — keyed by its trace id —
  into a single cross-process tree (:func:`assemble_trace`, rendered
  by ``repro cluster trace <id>``),
* pulls registry snapshots from every cluster instance
  (:func:`pull_cluster_telemetry`) and merges them into one
  cluster-wide :class:`~repro.obs.metrics.MetricsRegistry` with
  ``instance`` labels (:func:`merge_registry_snapshots`) — the input
  to both the merged Prometheus dump and SLO evaluation
  (:mod:`repro.obs.slo`).

No synchronisation with the writers is needed: a span's record is
flushed to disk before the request's response is sent, so any trace a
client has seen complete is fully on disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.exporters import TRACE_FILE_SUFFIX, read_trace_jsonl
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MergedTrace",
    "trace_files",
    "read_trace_dir",
    "trace_ids",
    "assemble_trace",
    "render_merged_trace",
    "merge_registry_snapshots",
    "pull_cluster_telemetry",
    "write_cluster_telemetry",
    "load_cluster_telemetry",
    "registry_snapshots",
]

#: Samples per histogram carried in a telemetry snapshot — enough for
#: meaningful merged percentiles, small enough that a full registry
#: stays well under the wire protocol's 1 MiB line cap.
TELEMETRY_SAMPLES = 1024

#: ``kind`` marker of the JSON file written by
#: :func:`write_cluster_telemetry` (how ``repro slo`` recognises one).
TELEMETRY_KIND = "cluster_telemetry"


# ---------------------------------------------------------------------------
# Span-file reading
# ---------------------------------------------------------------------------
def trace_files(trace_dir: str | Path) -> list[Path]:
    """Every span file under ``trace_dir``: live ``*.trace.jsonl``
    plus rotated ``*.trace.jsonl.N`` generations, sorted by name."""
    trace_dir = Path(trace_dir)
    if not trace_dir.is_dir():
        return []
    paths = [
        path
        for path in trace_dir.iterdir()
        if path.is_file()
        and (
            path.name.endswith(TRACE_FILE_SUFFIX)
            or (
                TRACE_FILE_SUFFIX + "." in path.name
                and path.suffix[1:].isdigit()
            )
        )
    ]
    return sorted(paths)


def read_trace_dir(trace_dir: str | Path) -> list[dict[str, Any]]:
    """All span records from every instance's files (all trace ids
    interleaved; filter with :func:`assemble_trace`)."""
    records: list[dict[str, Any]] = []
    for path in trace_files(trace_dir):
        records.extend(read_trace_jsonl(path))
    return records


def trace_ids(records: list[dict[str, Any]]) -> list[str]:
    """Distinct trace ids present, most recent first."""
    first_seen: dict[str, float] = {}
    for record in records:
        trace = record.get("trace")
        if isinstance(trace, str):
            start = record.get("start_unix", 0.0)
            if trace not in first_seen or start < first_seen[trace]:
                first_seen[trace] = start
    return sorted(first_seen, key=lambda t: -first_seen[t])


# ---------------------------------------------------------------------------
# Cross-process trace reassembly
# ---------------------------------------------------------------------------
def _record_instance(record: dict[str, Any]) -> str:
    """Process identity of a span record (v1 records have neither
    ``instance`` nor ``pid``; fall back gracefully)."""
    instance = record.get("instance")
    if isinstance(instance, str) and instance:
        return instance
    pid = record.get("pid")
    return f"pid:{pid}" if pid is not None else "?"


@dataclass
class MergedTrace:
    """One request's spans, merged across every process that served it."""

    trace_id: str
    records: list[dict[str, Any]] = field(default_factory=list)
    roots: list[dict[str, Any]] = field(default_factory=list)
    instances: list[str] = field(default_factory=list)
    fanout_width: int = 0
    #: instance label -> {"spans", "wall_s", "cpu_s"}; wall/CPU sum
    #: only instance-local roots so nesting is not double-counted.
    instance_totals: dict[str, dict[str, float]] = field(default_factory=dict)


def assemble_trace(
    records: list[dict[str, Any]], trace_id: str
) -> MergedTrace:
    """Filter ``records`` down to one trace id and compute its merged
    shape: roots, participating instances, fan-out width and
    per-instance wall/CPU totals."""
    by_span: dict[str, dict[str, Any]] = {}
    for record in records:
        if record.get("trace") == trace_id and isinstance(
            record.get("span"), str
        ):
            by_span.setdefault(record["span"], record)
    merged = sorted(
        by_span.values(), key=lambda r: r.get("start_unix", 0.0)
    )
    out = MergedTrace(trace_id=trace_id, records=merged)
    if not merged:
        return out
    children: dict[str, list[dict[str, Any]]] = {}
    for record in merged:
        parent = record.get("parent")
        if parent in by_span:
            children.setdefault(parent, []).append(record)
        else:
            out.roots.append(record)
    out.fanout_width = max(
        (
            sum(1 for c in kids if c.get("name") == "router:fanout")
            for kids in children.values()
        ),
        default=0,
    )
    for record in merged:
        instance = _record_instance(record)
        totals = out.instance_totals.setdefault(
            instance, {"spans": 0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        totals["spans"] += 1
        parent = by_span.get(record.get("parent"))
        if parent is None or _record_instance(parent) != instance:
            # An instance-local root: its wall/CPU covers every
            # nested same-instance span below it.
            totals["wall_s"] += record.get("wall_s", 0.0)
            totals["cpu_s"] += record.get("cpu_s", 0.0)
    out.instances = sorted(out.instance_totals)
    return out


def render_merged_trace(merged: MergedTrace) -> str:
    """Human view of a merged trace: the span tree (each line tagged
    with its emitting instance/pid) plus per-instance totals."""
    by_span = {r["span"]: r for r in merged.records}
    children: dict[str | None, list[dict[str, Any]]] = {}
    for record in merged.records:
        parent = record.get("parent")
        if parent not in by_span:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_unix", 0.0))

    lines = [
        f"trace {merged.trace_id}: {len(merged.records)} span(s) "
        f"across {len(merged.instances)} instance(s), "
        f"fan-out width {merged.fanout_width}"
    ]

    def walk(record: dict[str, Any], depth: int) -> None:
        where = _record_instance(record)
        pid = record.get("pid")
        tag = f"[{where} pid={pid}]" if pid is not None else f"[{where}]"
        parts = [
            record.get("name", "?"),
            tag,
            f"wall={record.get('wall_s', 0.0):.6f}s",
            f"cpu={record.get('cpu_s', 0.0):.6f}s",
        ]
        attrs = record.get("attrs") or {}
        parts.extend(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append("  " * depth + "- " + "  ".join(parts))
        for child in children.get(record.get("span"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    if merged.instance_totals:
        lines.append("per-instance totals:")
        for instance in merged.instances:
            totals = merged.instance_totals[instance]
            lines.append(
                f"  {instance}: spans={totals['spans']:.0f} "
                f"wall={totals['wall_s']:.6f}s cpu={totals['cpu_s']:.6f}s"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Telemetry aggregation
# ---------------------------------------------------------------------------
def merge_registry_snapshots(
    snapshots: dict[str, dict[str, Any]]
) -> MetricsRegistry:
    """Merge per-instance registry snapshots (label -> snapshot as
    produced by :meth:`MetricsRegistry.snapshot`) into one registry
    whose every metric carries an extra ``instance`` label.

    Counters/gauges copy their values; histograms fold through
    :meth:`~repro.obs.metrics.Histogram.merge`, so the merged registry
    renders straight to a cluster-wide Prometheus dump and answers
    the percentile queries SLO evaluation needs.
    """
    registry = MetricsRegistry()
    for instance, snapshot in sorted(snapshots.items()):
        if not isinstance(snapshot, dict):
            continue
        for name, entries in snapshot.items():
            if not isinstance(entries, list):
                continue
            for entry in entries:
                if not isinstance(entry, dict):
                    continue
                labels = dict(entry.get("labels") or {})
                labels["instance"] = instance
                kind = entry.get("kind")
                if kind == "counter":
                    value = entry.get("value", 0)
                    if isinstance(value, (int, float)) and value > 0:
                        registry.counter(name, **labels).inc(value)
                    else:
                        registry.counter(name, **labels)
                elif kind == "gauge":
                    value = entry.get("value", 0)
                    registry.gauge(name, **labels).set(
                        value if isinstance(value, (int, float)) else 0.0
                    )
                elif kind == "histogram":
                    registry.histogram(name, **labels).merge(entry)
    return registry


def pull_cluster_telemetry(
    spec, timeout: float = 5.0
) -> dict[str, dict[str, Any]]:
    """Issue the ``telemetry`` op to the router and every instance of
    a :class:`~repro.cluster.topology.ClusterSpec`.

    Returns ``label -> {"pid", "instance", "registry"}``; unreachable
    targets get ``{"error": ...}`` instead (never raises for a down
    process — mirrors ``probe_topology``).
    """
    from repro.service.client import ServiceError, SummaryServiceClient

    targets = [("router", spec.router_host, spec.router_port)]
    targets += [(i.label, i.host, i.port) for i in spec.instances]
    out: dict[str, dict[str, Any]] = {}
    for label, host, port in targets:
        try:
            with SummaryServiceClient(host, port, timeout=timeout) as client:
                out[label] = client.telemetry()
        except (OSError, ServiceError, ValueError) as exc:
            out[label] = {"error": f"{type(exc).__name__}: {exc}"}
    return out


def registry_snapshots(
    telemetry: dict[str, dict[str, Any]]
) -> dict[str, dict[str, Any]]:
    """The reachable instances' registry snapshots, keyed by label
    (drops ``{"error": ...}`` rows)."""
    return {
        label: entry["registry"]
        for label, entry in telemetry.items()
        if isinstance(entry, dict) and isinstance(entry.get("registry"), dict)
    }


def write_cluster_telemetry(
    telemetry: dict[str, dict[str, Any]], path: str | Path
) -> Path:
    """Persist a :func:`pull_cluster_telemetry` result (the file
    ``repro slo`` evaluates offline)."""
    path = Path(path)
    payload = {
        "kind": TELEMETRY_KIND,
        "version": 1,
        "instances": telemetry,
    }
    path.write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_cluster_telemetry(path: str | Path) -> dict[str, dict[str, Any]]:
    """Read back a :func:`write_cluster_telemetry` file; raises
    ``ValueError`` on anything that is not one."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable telemetry file {path}: {exc}") from exc
    if (
        not isinstance(payload, dict)
        or payload.get("kind") != TELEMETRY_KIND
        or not isinstance(payload.get("instances"), dict)
    ):
        raise ValueError(
            f"{path} is not a {TELEMETRY_KIND!r} file (write one with "
            "'repro cluster telemetry --json-out')"
        )
    return payload["instances"]
