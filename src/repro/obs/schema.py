"""The trace record schema and its validator.

Every line of a trace JSONL file is one **span record** (schema v1):

===========  =========  ==================================================
field        type       meaning
===========  =========  ==================================================
``v``        int        schema version (currently 1)
``type``     str        record type, always ``"span"``
``trace``    str        trace id shared by every span of one run
``span``     str        unique span id
``parent``   str|null   parent span id (null for roots)
``name``     str        span name, e.g. ``summarize:Mags`` /
                        ``phase:merge`` / ``service:request``
``start_unix``  number  wall-clock start (``time.time()``)
``wall_s``   number     wall duration in seconds
``cpu_s``    number     CPU (``time.process_time``) duration in seconds
``attrs``    object     arbitrary attributes (algorithm, params, ...)
``counters`` object     name -> accumulated number
``events``   array      ``{"name", "at_s", "attrs"}`` point events
===========  =========  ==================================================

The validator is what the CI observability job (and ``python -m repro
trace --validate``) runs against emitted traces, so the schema above
is load-bearing documentation: changing the emitter without updating
this module fails the build.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.tracer import SCHEMA_VERSION

__all__ = [
    "SCHEMA_VERSION",
    "validate_record",
    "validate_trace",
    "validate_trace_file",
]

_NUMBER = (int, float)

#: field name -> accepted types (None in the tuple means nullable).
_FIELDS: dict[str, tuple] = {
    "v": (int,),
    "type": (str,),
    "trace": (str,),
    "span": (str,),
    "parent": (str, type(None)),
    "name": (str,),
    "start_unix": _NUMBER,
    "wall_s": _NUMBER,
    "cpu_s": _NUMBER,
    "attrs": (dict,),
    "counters": (dict,),
    "events": (list,),
}


def validate_record(record: Any, where: str = "record") -> list[str]:
    """Schema errors of one span record (empty list == valid)."""
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    errors: list[str] = []
    for field, types in _FIELDS.items():
        if field not in record:
            errors.append(f"{where}: missing field {field!r}")
            continue
        value = record[field]
        if not isinstance(value, types) or isinstance(value, bool):
            errors.append(
                f"{where}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if not errors:
        if record["v"] != SCHEMA_VERSION:
            errors.append(
                f"{where}: schema version {record['v']}, "
                f"expected {SCHEMA_VERSION}"
            )
        if record["type"] != "span":
            errors.append(f"{where}: type {record['type']!r} != 'span'")
        if record["wall_s"] < 0 or record["cpu_s"] < 0:
            errors.append(f"{where}: negative duration")
        for counter, value in record["counters"].items():
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                errors.append(
                    f"{where}: counter {counter!r} is not a number"
                )
        for i, event in enumerate(record["events"]):
            if (
                not isinstance(event, dict)
                or not isinstance(event.get("name"), str)
                or not isinstance(event.get("at_s"), _NUMBER)
                or not isinstance(event.get("attrs"), dict)
            ):
                errors.append(f"{where}: event[{i}] malformed")
    return errors


def validate_trace(records: list[dict[str, Any]]) -> list[str]:
    """Schema + referential errors of a whole trace.

    Beyond per-record checks: every non-null parent id must resolve to
    a span in the trace, and all spans must share one trace id.
    """
    errors: list[str] = []
    for i, record in enumerate(records):
        errors.extend(validate_record(record, where=f"line {i + 1}"))
    if errors:
        return errors
    if not records:
        return ["trace is empty"]
    ids = {r["span"] for r in records}
    traces = {r["trace"] for r in records}
    if len(traces) > 1:
        errors.append(f"multiple trace ids in one file: {sorted(traces)}")
    for i, record in enumerate(records):
        parent = record["parent"]
        if parent is not None and parent not in ids:
            errors.append(
                f"line {i + 1}: parent {parent!r} not found in trace"
            )
    return errors


def validate_trace_file(path: str | Path) -> list[str]:
    """Read a JSONL trace and return its validation errors."""
    from repro.obs.exporters import read_trace_jsonl

    try:
        records = read_trace_jsonl(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_trace(records)
