"""The trace record schema and its validator.

Every line of a trace JSONL file is one **span record** (schema v2):

===========  =========  ==================================================
field        type       meaning
===========  =========  ==================================================
``v``        int        schema version (1 or 2; emitter writes 2)
``type``     str        record type, always ``"span"``
``trace``    str        trace id shared by every span of one run
``span``     str        unique span id
``parent``   str|null   parent span id (null for roots)
``pid``      int        emitting process id (v2+)
``instance`` str        emitting instance label, e.g. ``shard0/r1``
                        (v2+; empty when the process was not labelled)
``name``     str        span name, e.g. ``summarize:Mags`` /
                        ``phase:merge`` / ``service:request``
``start_unix``  number  wall-clock start (``time.time()``)
``wall_s``   number     wall duration in seconds
``cpu_s``    number     CPU (``time.process_time``) duration in seconds
``attrs``    object     arbitrary attributes (algorithm, params, ...)
``counters`` object     name -> accumulated number
``events``   array      ``{"name", "at_s", "attrs"}`` point events
===========  =========  ==================================================

v1 records (no ``pid``/``instance``) are still accepted by the
validator — old traces stay readable; the cluster collector falls
back to per-record defaults for them.

The validator is what the CI observability job (and ``python -m repro
trace --validate``) runs against emitted traces, so the schema above
is load-bearing documentation: changing the emitter without updating
this module fails the build.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.obs.tracer import SCHEMA_VERSION

__all__ = [
    "SCHEMA_VERSION",
    "SCHEMA_VERSIONS",
    "validate_record",
    "validate_trace",
    "validate_trace_file",
]

#: Schema versions the validator accepts (the emitter always writes
#: the newest).
SCHEMA_VERSIONS = (1, 2)

_NUMBER = (int, float)

#: field name -> accepted types (None in the tuple means nullable).
_FIELDS: dict[str, tuple] = {
    "v": (int,),
    "type": (str,),
    "trace": (str,),
    "span": (str,),
    "parent": (str, type(None)),
    "name": (str,),
    "start_unix": _NUMBER,
    "wall_s": _NUMBER,
    "cpu_s": _NUMBER,
    "attrs": (dict,),
    "counters": (dict,),
    "events": (list,),
}

#: Fields added in schema v2 (required from v2 on; optional — but
#: still type-checked when present — in v1 records).
_V2_FIELDS: dict[str, tuple] = {
    "pid": (int,),
    "instance": (str,),
}


def validate_record(record: Any, where: str = "record") -> list[str]:
    """Schema errors of one span record (empty list == valid)."""
    if not isinstance(record, dict):
        return [f"{where}: not a JSON object"]
    errors: list[str] = []
    version = record.get("v")
    fields = dict(_FIELDS)
    v2_required = isinstance(version, int) and version >= 2
    for field, types in _V2_FIELDS.items():
        if v2_required or field in record:
            fields[field] = types
    for field, types in fields.items():
        if field not in record:
            errors.append(f"{where}: missing field {field!r}")
            continue
        value = record[field]
        if not isinstance(value, types) or isinstance(value, bool):
            errors.append(
                f"{where}: field {field!r} has type "
                f"{type(value).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    if not errors:
        if record["v"] not in SCHEMA_VERSIONS:
            errors.append(
                f"{where}: schema version {record['v']}, "
                f"expected one of {list(SCHEMA_VERSIONS)}"
            )
        if record["type"] != "span":
            errors.append(f"{where}: type {record['type']!r} != 'span'")
        if record["wall_s"] < 0 or record["cpu_s"] < 0:
            errors.append(f"{where}: negative duration")
        for counter, value in record["counters"].items():
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                errors.append(
                    f"{where}: counter {counter!r} is not a number"
                )
        for i, event in enumerate(record["events"]):
            if (
                not isinstance(event, dict)
                or not isinstance(event.get("name"), str)
                or not isinstance(event.get("at_s"), _NUMBER)
                or not isinstance(event.get("attrs"), dict)
            ):
                errors.append(f"{where}: event[{i}] malformed")
    return errors


def validate_trace(
    records: list[dict[str, Any]],
    *,
    require_single_trace: bool = True,
) -> list[str]:
    """Schema + referential errors of a whole trace.

    Beyond per-record checks: every non-null parent id must resolve to
    a span in the trace, and all spans must share one trace id.  Pass
    ``require_single_trace=False`` for per-instance span files, which
    interleave spans from many requests *and* may reference parents
    living in another process's file (the cluster collector merges
    the fragments down to one trace id before full validation).
    """
    errors: list[str] = []
    for i, record in enumerate(records):
        errors.extend(validate_record(record, where=f"line {i + 1}"))
    if errors:
        return errors
    if not records:
        return ["trace is empty"]
    traces = {r["trace"] for r in records}
    if not require_single_trace:
        return errors
    if len(traces) > 1:
        errors.append(f"multiple trace ids in one file: {sorted(traces)}")
    ids = {r["span"] for r in records}
    for i, record in enumerate(records):
        parent = record["parent"]
        if parent is not None and parent not in ids:
            errors.append(
                f"line {i + 1}: parent {parent!r} not found in trace"
            )
    return errors


def validate_trace_file(path: str | Path) -> list[str]:
    """Read a JSONL trace and return its validation errors."""
    from repro.obs.exporters import read_trace_jsonl

    try:
        records = read_trace_jsonl(path)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    return validate_trace(records)
