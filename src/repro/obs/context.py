"""Trace context propagation across process boundaries.

A :class:`TraceContext` is the tiny piece of tracer state that rides
on a wire request — the trace id plus (optionally) the caller's span
id — so a server can parent its ``service:request`` span under the
router's fan-out span and a collector can stitch the per-process
fragments back into one tree.

Wire form (the optional ``"trace"`` field of a service request)::

    {"id": "6f1d2c3b4a596877", "span": "aabbccdd00112233"}

``id`` is required; ``span`` is optional (a client that starts a trace
itself sends only ``id``, making the first server-side span the
root).  Both are bounded, charset-restricted strings so the protocol
validator can reject adversarial values before they reach the tracer
(see :func:`validate_trace_field`, called by
``repro.service.protocol.validate_request``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.obs.tracer import Span, Tracer, _new_id

__all__ = [
    "TraceContext",
    "new_trace_id",
    "validate_trace_field",
    "TRACE_ID_MAX_LEN",
]

#: Upper bound on wire trace/span id length (a fresh local id is 16
#: hex chars; foreign tracers may be longer, but not unbounded).
TRACE_ID_MAX_LEN = 64

_ID_RE = re.compile(r"^[0-9A-Za-z_.\-]{1,%d}$" % TRACE_ID_MAX_LEN)

_WIRE_KEYS = frozenset({"id", "span"})


def new_trace_id() -> str:
    """A fresh random trace id (16 hex chars)."""
    return _new_id()


def _check_id(value: Any, what: str) -> str:
    if not isinstance(value, str) or not _ID_RE.match(value):
        raise ValueError(
            f"trace {what} must be a 1-{TRACE_ID_MAX_LEN} char string of "
            "[0-9A-Za-z_.-]"
        )
    return value


def validate_trace_field(value: Any) -> None:
    """Raise ``ValueError`` unless ``value`` is a well-formed wire
    trace context (``{"id": ...}`` with an optional ``"span"``)."""
    if not isinstance(value, dict):
        raise ValueError("'trace' must be an object")
    unknown = set(value) - _WIRE_KEYS
    if unknown:
        raise ValueError(
            f"'trace' has unknown keys: {sorted(unknown)}"
        )
    if "id" not in value:
        raise ValueError("'trace' is missing required key 'id'")
    _check_id(value["id"], "id")
    if "span" in value:
        _check_id(value["span"], "span")


@dataclass(frozen=True)
class TraceContext:
    """A propagated trace identity: trace id + parent span id."""

    trace_id: str
    parent_span_id: str | None = None

    def to_wire(self) -> dict[str, str]:
        """The ``"trace"`` request-field value for this context."""
        wire = {"id": self.trace_id}
        if self.parent_span_id is not None:
            wire["span"] = self.parent_span_id
        return wire

    @classmethod
    def from_wire(cls, value: Any) -> "TraceContext":
        """Decode (and validate) a wire ``"trace"`` value.

        Raises ``ValueError`` on anything malformed — same checks as
        :func:`validate_trace_field`.
        """
        validate_trace_field(value)
        return cls(trace_id=value["id"], parent_span_id=value.get("span"))

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (client starting a distributed trace)."""
        return cls(trace_id=new_trace_id())

    @classmethod
    def from_span(cls, span: Span) -> "TraceContext":
        """The context an outbound request should carry so the remote
        side parents under ``span``."""
        return cls(trace_id=span.trace_id, parent_span_id=span.span_id)

    @classmethod
    def current(cls, tracer: Tracer | None = None) -> "TraceContext | None":
        """Context of the calling thread's innermost open span, if
        any (``None`` when tracing is off or no span is open)."""
        if tracer is None:
            from repro.obs.tracer import get_tracer

            tracer = get_tracer()
        span = tracer.current()
        if span is None:
            return None
        return cls.from_span(span)
