"""Declarative service-level objectives over merged cluster telemetry.

An :class:`SLO` is a target on the serving metrics every instance
already records (:mod:`repro.service.metrics`):

* ``kind="availability"`` — the success ratio
  ``1 - errors/requests`` (from ``service_requests_total`` /
  ``service_errors_total``, summed across instances) must be at least
  ``objective`` (e.g. ``0.99``);
* ``kind="latency"`` — the ``percentile`` of
  ``service_request_seconds`` (histogram snapshots merged across
  instances via :meth:`~repro.obs.metrics.Histogram.merge`,
  optionally restricted to one ``op``) must be at most ``objective``
  milliseconds.

Every result reports **error-budget burn** — how much of the allowed
slack is spent: for availability, observed error ratio over allowed
error ratio; for latency, observed percentile over the threshold.
``burn <= 1`` means the objective holds; ``burn > 1`` is a violation
(what fails ``repro slo`` and the chaos-harness gate).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.metrics import Histogram

__all__ = [
    "SLO",
    "SLOResult",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "load_slo_config",
    "format_slo_report",
]

_KINDS = ("availability", "latency")


@dataclass(frozen=True)
class SLO:
    """One objective.  ``objective`` is a minimum success ratio in
    (0, 1] for availability, a maximum latency in milliseconds for
    latency SLOs."""

    name: str
    kind: str
    objective: float
    op: str | None = None
    percentile: float = 99.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"SLO {self.name!r}: kind must be one of {_KINDS}"
            )
        if self.kind == "availability" and not 0.0 < self.objective <= 1.0:
            raise ValueError(
                f"SLO {self.name!r}: availability objective must be in "
                "(0, 1]"
            )
        if self.kind == "latency" and self.objective <= 0:
            raise ValueError(
                f"SLO {self.name!r}: latency objective (ms) must be > 0"
            )
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(
                f"SLO {self.name!r}: percentile must be in (0, 100]"
            )


@dataclass(frozen=True)
class SLOResult:
    """Outcome of one SLO against one merged registry."""

    slo: SLO
    ok: bool
    actual: float
    budget_burn: float
    detail: str


#: The gate shipped by default: four nines of headroom would be
#: meaningless for a local drill, so these are deliberately loose —
#: they catch a broken cluster, not a slow laptop.
DEFAULT_SLOS = (
    SLO(name="availability", kind="availability", objective=0.99),
    SLO(name="latency-p99", kind="latency", objective=1000.0),
)


def _counter_total(snapshot: dict[str, Any], name: str) -> float:
    total = 0.0
    for entry in snapshot.get(name) or []:
        value = entry.get("value") if isinstance(entry, dict) else None
        if isinstance(value, (int, float)):
            total += value
    return total


def _normalise(snapshots: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Accept either raw registry snapshots or full telemetry entries
    (``{"registry": snapshot, ...}``) per instance."""
    out: dict[str, dict[str, Any]] = {}
    for label, value in snapshots.items():
        if not isinstance(value, dict):
            continue
        if isinstance(value.get("registry"), dict):
            out[label] = value["registry"]
        else:
            out[label] = value
    return out


def _availability(
    slo: SLO, snapshots: dict[str, dict[str, Any]]
) -> SLOResult:
    requests = sum(
        _counter_total(s, "service_requests_total")
        for s in snapshots.values()
    )
    errors = sum(
        _counter_total(s, "service_errors_total") for s in snapshots.values()
    )
    if requests <= 0:
        return SLOResult(
            slo=slo, ok=True, actual=1.0, budget_burn=0.0,
            detail="no requests observed",
        )
    ratio = max(0.0, 1.0 - errors / requests)
    allowed = 1.0 - slo.objective
    observed = 1.0 - ratio
    if allowed > 0:
        burn = observed / allowed
    else:
        burn = 0.0 if observed == 0 else math.inf
    return SLOResult(
        slo=slo,
        ok=ratio >= slo.objective,
        actual=ratio,
        budget_burn=burn,
        detail=(
            f"{errors:.0f} error(s) / {requests:.0f} request(s) "
            f"across {len(snapshots)} instance(s)"
        ),
    )


def _latency(slo: SLO, snapshots: dict[str, dict[str, Any]]) -> SLOResult:
    merged = Histogram()
    entries = 0
    for snapshot in snapshots.values():
        for entry in snapshot.get("service_request_seconds") or []:
            if not isinstance(entry, dict):
                continue
            labels = entry.get("labels") or {}
            if slo.op is not None and labels.get("op") != slo.op:
                continue
            merged.merge(entry)
            entries += 1
    if merged.count == 0:
        return SLOResult(
            slo=slo, ok=True, actual=0.0, budget_burn=0.0,
            detail="no latency observations",
        )
    actual_ms = merged.percentile(slo.percentile) * 1000.0
    return SLOResult(
        slo=slo,
        ok=actual_ms <= slo.objective,
        actual=actual_ms,
        budget_burn=actual_ms / slo.objective,
        detail=(
            f"p{slo.percentile:g} over {merged.count:.0f} request(s), "
            f"{entries} histogram(s)"
            + (f", op={slo.op}" if slo.op else "")
        ),
    )


def evaluate_slos(
    snapshots: dict[str, Any],
    slos: tuple[SLO, ...] | list[SLO] = DEFAULT_SLOS,
) -> list[SLOResult]:
    """Evaluate each SLO against per-instance registry snapshots
    (label -> registry snapshot, or label -> telemetry entry as
    returned by :func:`repro.obs.collect.pull_cluster_telemetry`)."""
    normalised = _normalise(snapshots)
    results = []
    for slo in slos:
        if slo.kind == "availability":
            results.append(_availability(slo, normalised))
        else:
            results.append(_latency(slo, normalised))
    return results


def load_slo_config(path: str | Path) -> list[SLO]:
    """Read SLO definitions from JSON::

        {"slos": [
          {"name": "availability", "kind": "availability",
           "objective": 0.999},
          {"name": "khop-p95", "kind": "latency", "objective": 250,
           "percentile": 95, "op": "khop"}
        ]}

    Raises ``ValueError`` on anything malformed.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable SLO config {path}: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("slos"), list
    ):
        raise ValueError(f"{path}: expected an object with a 'slos' list")
    slos: list[SLO] = []
    for i, raw in enumerate(payload["slos"]):
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: slos[{i}] is not an object")
        unknown = set(raw) - {"name", "kind", "objective", "op", "percentile"}
        if unknown:
            raise ValueError(
                f"{path}: slos[{i}] has unknown keys {sorted(unknown)}"
            )
        try:
            slos.append(
                SLO(
                    name=str(raw.get("name", f"slo-{i}")),
                    kind=raw.get("kind", ""),
                    objective=float(raw.get("objective", 0.0)),
                    op=raw.get("op"),
                    percentile=float(raw.get("percentile", 99.0)),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: slos[{i}]: {exc}") from exc
    if not slos:
        raise ValueError(f"{path}: 'slos' list is empty")
    return slos


def format_slo_report(results: list[SLOResult]) -> str:
    """The table ``repro slo`` prints — one row per objective."""
    lines = [
        f"{'SLO':<20} {'kind':<13} {'objective':>12} {'actual':>12} "
        f"{'burn':>7}  status"
    ]
    for result in results:
        slo = result.slo
        if slo.kind == "availability":
            objective = f"{slo.objective:.3%}"
            actual = f"{result.actual:.3%}"
        else:
            objective = f"{slo.objective:g}ms@p{slo.percentile:g}"
            actual = f"{result.actual:.2f}ms"
        burn = (
            "inf" if math.isinf(result.budget_burn)
            else f"{result.budget_burn:.2f}"
        )
        status = "OK" if result.ok else "VIOLATED"
        lines.append(
            f"{slo.name:<20} {slo.kind:<13} {objective:>12} {actual:>12} "
            f"{burn:>7}  {status} ({result.detail})"
        )
    return "\n".join(lines)
