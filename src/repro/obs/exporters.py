"""Trace and metrics exporters: JSONL, text tree, Prometheus text.

Three consumers, three formats:

* **JSONL** — one span record per line (the schema of
  :mod:`repro.obs.schema`); machine-diffable, what
  ``python -m repro profile --trace-out`` writes and
  ``python -m repro trace`` / ``tools/summarize_bench_results.py
  --diff-traces`` read back;
* **text tree** — the human view of one trace, spans indented under
  their parents with wall/CPU time and counters;
* **Prometheus text format** — a ``/metrics``-style dump of a
  :class:`~repro.obs.metrics.MetricsRegistry` (histograms rendered as
  summaries with quantiles), served by the TCP service's ``stats`` op
  with ``"format": "prometheus"``.
"""

from __future__ import annotations

import gzip
import json
import re
import threading
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SpanSink",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "render_trace_tree",
    "phase_totals",
    "diff_phase_totals",
    "registry_to_prometheus",
]


def _open(path: str | Path, mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_trace_jsonl(
    records: Iterable[dict[str, Any]], path: str | Path
) -> Path:
    """Write span records as JSONL (gzipped when the path ends in
    ``.gz``); returns the path written."""
    path = Path(path)
    with _open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_trace_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Read span records back from a JSONL trace file."""
    records = []
    with _open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ---------------------------------------------------------------------------
# Streaming per-span export (what `repro serve --trace-dir` writes)
# ---------------------------------------------------------------------------
#: Suffix of the live per-instance span file; rotated generations are
#: ``<name>.trace.jsonl.1`` .. ``.<keep>``.
TRACE_FILE_SUFFIX = ".trace.jsonl"

_UNSAFE_FILENAME_RE = re.compile(r"[^0-9A-Za-z_.\-]")


def instance_filename(instance: str) -> str:
    """The span-file name for an instance label (``shard0/r1`` ->
    ``shard0-r1.trace.jsonl``)."""
    safe = _UNSAFE_FILENAME_RE.sub("-", instance) or "trace"
    return safe + TRACE_FILE_SUFFIX


class SpanSink:
    """Append finished span records to a size-capped JSONL file.

    The per-process export half of cluster tracing: hand
    ``sink.write`` to :class:`~repro.obs.tracer.Tracer` as its
    ``sink`` and every finished span lands on disk (flushed per
    write) *before* the request's response is sent, so a collector
    reading after a response never races the writer.

    Rotation: when the live file would exceed ``max_bytes`` it is
    shifted to ``.1`` (existing generations shift up, the oldest
    beyond ``keep`` is deleted) and a fresh file is started.  Records
    failing schema validation are dropped and counted in
    :attr:`rejected` rather than poisoning the file.
    """

    def __init__(
        self,
        directory: str | Path,
        instance: str = "",
        *,
        max_bytes: int = 8 * 1024 * 1024,
        keep: int = 3,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / instance_filename(instance)
        self.max_bytes = max_bytes
        self.keep = keep
        self.rejected = 0
        self.rotations = 0
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size

    def write(self, record: dict[str, Any]) -> None:
        """Validate, serialise and append one span record."""
        from repro.obs.schema import validate_record

        if validate_record(record):
            self.rejected += 1
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        encoded = line.encode("utf-8")
        with self._lock:
            if self._fh is None:
                raise ValueError("sink is closed")
            if self._size and self._size + len(encoded) > self.max_bytes:
                self._rotate_locked()
            self._fh.write(line)
            self._fh.flush()
            self._size += len(encoded)

    def _rotate_locked(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(self.path.name + f".{self.keep}")
        oldest.unlink(missing_ok=True)
        for generation in range(self.keep - 1, 0, -1):
            source = self.path.with_name(self.path.name + f".{generation}")
            if source.exists():
                source.rename(
                    self.path.with_name(self.path.name + f".{generation + 1}")
                )
        self.path.rename(self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "SpanSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Text tree
# ---------------------------------------------------------------------------
def render_trace_tree(records: list[dict[str, Any]]) -> str:
    """Render one trace as an indented tree, roots in start order.

    Each line shows the span name, wall and CPU seconds, and any
    counters; events are summarised as a count.
    """
    children: dict[str | None, list[dict[str, Any]]] = {}
    ids = {r.get("span") for r in records}
    for record in records:
        parent = record.get("parent")
        if parent not in ids:
            parent = None  # orphan (e.g. truncated trace): treat as root
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_unix", 0.0))

    lines: list[str] = []

    def walk(record: dict[str, Any], depth: int) -> None:
        parts = [
            f"{record.get('name', '?')}",
            f"wall={record.get('wall_s', 0.0):.6f}s",
            f"cpu={record.get('cpu_s', 0.0):.6f}s",
        ]
        counters = record.get("counters") or {}
        parts.extend(f"{k}={v:g}" for k, v in sorted(counters.items()))
        events = record.get("events") or []
        if events:
            parts.append(f"events={len(events)}")
        lines.append("  " * depth + "- " + "  ".join(parts))
        for child in children.get(record.get("span"), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Phase aggregation (the Figs. 8-10 view)
# ---------------------------------------------------------------------------
def phase_totals(records: list[dict[str, Any]]) -> dict[str, float]:
    """Total wall seconds per phase, summed over every ``phase:*`` span.

    Algorithms emit one phase span per (phase, iteration); summing
    collapses the trace to the per-phase decomposition the paper's
    ablation figures plot.
    """
    totals: dict[str, float] = {}
    for record in records:
        name = record.get("name", "")
        if name.startswith("phase:"):
            phase = record.get("attrs", {}).get("phase", name[6:])
            totals[phase] = totals.get(phase, 0.0) + record.get("wall_s", 0.0)
    return totals


def diff_phase_totals(
    a_records: list[dict[str, Any]], b_records: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Phase-by-phase wall-time comparison of two traces.

    Returns one row per phase (union of both traces, first-trace order
    first) with ``a_s``, ``b_s``, ``delta_s`` and ``ratio`` — the diff
    ``tools/summarize_bench_results.py --diff-traces`` prints.
    """
    a_totals = phase_totals(a_records)
    b_totals = phase_totals(b_records)
    phases = list(a_totals) + [p for p in b_totals if p not in a_totals]
    rows = []
    for phase in phases:
        a_s = a_totals.get(phase)
        b_s = b_totals.get(phase)
        rows.append(
            {
                "phase": phase,
                "a_s": a_s,
                "b_s": b_s,
                "delta_s": (b_s - a_s) if a_s is not None and b_s is not None
                else None,
                "ratio": (b_s / a_s) if a_s and b_s is not None else None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None)\
        -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus exposition text format.

    Counters and gauges map directly; histograms are rendered as
    summaries — ``{quantile="0.5|0.95|0.99"}`` sample lines plus
    ``_sum`` and ``_count``.
    """
    lines: list[str] = []
    seen_types: set[str] = set()
    for name, labels, metric in registry.collect():
        if metric.kind == "histogram":
            if name not in seen_types:
                lines.append(f"# TYPE {name} summary")
                seen_types.add(name)
            snap = metric.snapshot()
            for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                lines.append(
                    f"{name}{_labels_text(labels, {'quantile': str(q)})} "
                    f"{snap.get(key, 0.0):g}"
                )
            lines.append(
                f"{name}_sum{_labels_text(labels)} {snap.get('sum', 0.0):g}"
            )
            lines.append(
                f"{name}_count{_labels_text(labels)} {snap.get('count', 0):g}"
            )
        else:
            if name not in seen_types:
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_types.add(name)
            lines.append(f"{name}{_labels_text(labels)} {metric.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")
