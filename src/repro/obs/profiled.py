"""``@profiled`` — span-per-call instrumentation for hot entry points.

The decorator resolves the *global* tracer at call time, so decorated
functions are free when tracing is off (one attribute check, then a
direct call) and automatically traced when a
:class:`~repro.obs.tracer.Tracer` is installed::

    from repro.obs import profiled

    @profiled
    def build_index(rep): ...

    @profiled("encode", stage="output")
    def encode(partition): ...

The span name defaults to ``module.qualname`` of the wrapped function.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar, overload

from repro.obs.tracer import get_tracer

__all__ = ["profiled"]

F = TypeVar("F", bound=Callable)


@overload
def profiled(name: F) -> F: ...
@overload
def profiled(name: str | None = None, **static_attrs: Any) -> Callable[[F], F]: ...


def profiled(name=None, **static_attrs):
    """Wrap a callable in a span on the global tracer.

    Usable bare (``@profiled``) or parameterised
    (``@profiled("name", key=value)``); static attributes are attached
    to every span the wrapper opens.
    """

    def decorate(fn: Callable) -> Callable:
        label = span_name or (
            f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__qualname__}"
        )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = get_tracer()
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(label, **static_attrs):
                return fn(*args, **kwargs)

        wrapper.__wrapped__ = fn
        return wrapper

    if callable(name):  # bare @profiled
        span_name = None
        return decorate(name)
    span_name = name
    return decorate
