"""Nested-span tracer: the backbone of :mod:`repro.obs`.

A :class:`Tracer` produces **spans** — named intervals with wall and
CPU time, arbitrary attributes, monotonically increasing counters and
point-in-time events — nested through a per-thread stack so a span
started while another is open becomes its child.  Finished spans are
collected as plain JSON-serialisable dicts (the trace schema of
:mod:`repro.obs.schema`) ready for the JSONL / text-tree exporters.

Tracing is **opt-in and cheap when off**: the process-global tracer
defaults to :data:`NULL_TRACER`, whose every operation is a no-op on
shared singletons, and the instrumentation sites in
:mod:`repro.algorithms.base` look the tracer up through ``sys.modules``
so a process that never imports ``repro.obs`` pays literally nothing.

Usage::

    from repro import obs

    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        with tracer.span("summarize", algorithm="Mags") as span:
            span.inc("merges", 3)
            span.event("iteration", t=1)
    obs.write_trace_jsonl(tracer.records(), "trace.jsonl")
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "start_tracing",
    "stop_tracing",
    "get_instance_label",
    "set_instance_label",
]

#: Version stamped into every exported span record ("v" field).
#: v2 added process identity (``pid``/``instance``) so traces merged
#: across cluster instances attribute every span to its process.
SCHEMA_VERSION = 2

#: Finished spans kept per tracer; beyond this, spans are dropped (and
#: counted in :attr:`Tracer.dropped`) so a runaway loop cannot exhaust
#: memory.
DEFAULT_MAX_SPANS = 100_000


def _new_id() -> str:
    """16-hex-char random identifier (trace and span ids)."""
    return os.urandom(8).hex()


_instance_label = ""


def get_instance_label() -> str:
    """The process-wide instance label stamped into span records
    (empty until :func:`set_instance_label`)."""
    return _instance_label


def set_instance_label(label: str) -> str:
    """Name this process (e.g. ``shard0/r1`` or ``router``) in every
    span it emits from now on; returns the previous label."""
    global _instance_label
    previous = _instance_label
    _instance_label = str(label)
    return previous


class Span:
    """One named interval of work.

    Created by :meth:`Tracer.span` / :meth:`Tracer.start_span`; not
    instantiated directly.  Mutators (:meth:`set`, :meth:`inc`,
    :meth:`event`) may be called until the span ends.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "counters",
        "events",
        "start_unix",
        "wall_s",
        "cpu_s",
        "_wall0",
        "_cpu0",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.events: list[dict[str, Any]] = []
        self.start_unix = time.time()
        self.wall_s: float | None = None
        self.cpu_s: float | None = None
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()

    # -- mutators ---------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach or update attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def inc(self, counter: str, n: float = 1) -> None:
        """Add ``n`` to the span counter ``counter``."""
        self.counters[counter] = self.counters.get(counter, 0) + n

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event at the current wall offset."""
        self.events.append(
            {
                "name": name,
                "at_s": round(time.perf_counter() - self._wall0, 6),
                "attrs": attrs,
            }
        )

    # -- lifecycle --------------------------------------------------------
    def finish(self) -> None:
        """Freeze wall/CPU durations (idempotent)."""
        if self.wall_s is None:
            self.wall_s = time.perf_counter() - self._wall0
            self.cpu_s = time.process_time() - self._cpu0

    def as_record(self) -> dict[str, Any]:
        """The JSON-serialisable trace record (schema v2)."""
        return {
            "v": SCHEMA_VERSION,
            "type": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "instance": _instance_label,
            "name": self.name,
            "start_unix": self.start_unix,
            "wall_s": round(self.wall_s or 0.0, 9),
            "cpu_s": round(self.cpu_s or 0.0, 9),
            "attrs": self.attrs,
            "counters": self.counters,
            "events": self.events,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.wall_s is None else f"{self.wall_s:.6f}s"
        return f"Span({self.name!r}, {state})"


class Tracer:
    """Collects nested spans into an in-memory trace.

    Thread behaviour: each thread has its own span stack, so spans
    opened in a worker thread nest among themselves; pass ``parent=``
    to :meth:`start_span`/:meth:`span` to attach a worker-thread span
    under a span of the spawning thread (the parallel merge paths do
    this).  The finished-record list is guarded by a lock.

    Cross-process behaviour: pass ``context=`` (anything with a
    ``trace_id`` and ``parent_span_id``, e.g.
    :class:`repro.obs.context.TraceContext` decoded from a wire
    request) to adopt a remote caller's trace — the span takes the
    caller's trace id and parents under the caller's span, so a
    collector can reassemble one tree across processes.  ``sink``, if
    given, is called with each finished span record as it closes
    (the JSONL export hook); sink exceptions are swallowed and counted
    in :attr:`sink_errors` so a full disk cannot take down serving.
    """

    enabled = True

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        sink=None,
    ):
        self.trace_id = _new_id()
        self.dropped = 0
        self.sink_errors = 0
        self._max_spans = max_spans
        self._sink = sink
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(
        self,
        name: str,
        parent: Span | None = None,
        context=None,
        **attrs: Any,
    ) -> Span:
        """Open a span (explicit form; prefer :meth:`span`).

        The parent defaults to the calling thread's innermost open
        span; pass ``parent=`` to override (cross-thread nesting) or
        ``context=`` to adopt a remote caller's trace id and parent
        span id (``context`` wins over any local parent).  A child
        span inherits its parent's trace id, so adoption propagates
        down the whole local subtree.
        """
        if context is not None:
            trace_id = context.trace_id
            parent_id = context.parent_span_id
        else:
            if parent is None:
                parent = self.current()
            if parent is not None:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                trace_id = self.trace_id
                parent_id = None
        span = Span(name, trace_id, parent_id, attrs)
        self._stack().append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` and collect its record."""
        span.finish()
        stack = self._stack()
        if span in stack:
            # Usually the top; tolerate out-of-order ends from misuse.
            stack.remove(span)
        record = span.as_record()
        sink = self._sink
        if sink is not None:
            try:
                sink(record)
            except Exception:
                self.sink_errors += 1
        with self._lock:
            if len(self._records) < self._max_spans:
                self._records.append(record)
            else:
                self.dropped += 1

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        parent: Span | None = None,
        context=None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Context manager around one span::

            with tracer.span("phase:merge", t=3) as span:
                span.inc("merges")
        """
        opened = self.start_span(name, parent=parent, context=context, **attrs)
        try:
            yield opened
        except BaseException as exc:
            opened.set(error=type(exc).__name__)
            raise
        finally:
            self.end_span(opened)

    # -- current-span conveniences ---------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record an event on the calling thread's current span
        (dropped when no span is open)."""
        span = self.current()
        if span is not None:
            span.event(name, **attrs)

    def inc(self, counter: str, n: float = 1) -> None:
        """Bump a counter on the calling thread's current span."""
        span = self.current()
        if span is not None:
            span.inc(counter, n)

    # -- output -----------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """Finished span records, in end order (children before
        parents)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop collected records (open spans are unaffected)."""
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _NullSpan:
    """Inert span: accepts the whole :class:`Span` mutator API, keeps
    nothing, and doubles as its own context manager."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def inc(self, counter: str, n: float = 1) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op returning shared
    singletons, so the enabled check plus a call costs nanoseconds."""

    enabled = False

    def span(self, name: str, parent=None, context=None, **attrs: Any) \
            -> _NullSpan:
        return NULL_SPAN

    def start_span(self, name: str, parent=None, context=None,
                   **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def end_span(self, span) -> None:
        pass

    def current(self) -> None:
        return None

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def inc(self, counter: str, n: float = 1) -> None:
        pass

    def records(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()

_global_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-global tracer (default: :data:`NULL_TRACER`)."""
    return _global_tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def start_tracing(max_spans: int = DEFAULT_MAX_SPANS, sink=None) -> Tracer:
    """Create a fresh :class:`Tracer`, install it globally, return it."""
    tracer = Tracer(max_spans=max_spans, sink=sink)
    set_tracer(tracer)
    return tracer


def stop_tracing() -> Tracer | NullTracer:
    """Restore the null tracer; returns the tracer that was active."""
    return set_tracer(NULL_TRACER)
