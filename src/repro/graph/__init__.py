"""Graph substrate: data structure, I/O, generators, dataset registry."""

from repro.graph.graph import Graph, GraphError
from repro.graph.io import clean_edges, load_graph, save_graph
from repro.graph.stats import GraphStats, graph_stats
from repro.graph.datasets import (
    DATASETS,
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    SMALL_DATASETS,
    DatasetSpec,
    dataset_codes,
    load_dataset,
)

__all__ = [
    "Graph",
    "GraphError",
    "clean_edges",
    "load_graph",
    "save_graph",
    "GraphStats",
    "graph_stats",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "MEDIUM_DATASETS",
    "DatasetSpec",
    "dataset_codes",
    "load_dataset",
]
