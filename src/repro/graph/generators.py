"""Synthetic graph generators.

The paper evaluates on 18 real graphs spanning web, social, e-mail,
internet-topology, co-purchase and collaboration networks (Table 2).
Those corpora are multi-gigabyte downloads, so this reproduction
substitutes seeded synthetic generators whose outputs exercise the
same structural regimes the summarization algorithms care about:

* heavy-tailed degree distributions (Barabási–Albert, R-MAT,
  configuration model) — drive MinHash group skew and the dividing
  strategy of Mags-DM;
* dense local communities (planted partition, caveman) — many nodes
  with near-identical neighborhoods, the regime where summarization
  wins big;
* near-regular sparse graphs (Erdős–Rényi, Watts–Strogatz) — the
  adversarial regime where relative size stays close to 1;
* clique-and-star composites — the structure Slugger's hierarchical
  model exploits (the paper's HO discussion in Section 6.2).

All generators take a ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.io import clean_edges

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "watts_strogatz",
    "planted_partition",
    "caveman",
    "rmat",
    "configuration_power_law",
    "cliques_and_stars",
    "copying_model",
    "templated_web",
]


def _finish(raw_edges) -> Graph:
    """Clean raw edges (dedup, drop loops) and build the graph."""
    n, edges = clean_edges(raw_edges)
    return Graph(n, edges)


def erdos_renyi(n: int, p: float, seed: int = 0) -> Graph:
    """G(n, p) random graph.

    Edge sampling is vectorised: for each node ``u`` we draw its
    higher-numbered neighbors with a single binomial pass, which keeps
    generation O(m) in expectation rather than O(n^2) Python loops.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    for u in range(n - 1):
        count = n - 1 - u
        mask = rng.random(count) < p
        for offset in np.flatnonzero(mask):
            edges.append((u, u + 1 + int(offset)))
    graph = Graph(n, edges)
    return graph


def barabasi_albert(n: int, m_attach: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph with ``m_attach`` edges per node.

    Uses the standard repeated-endpoint list so that sampling is
    proportional to degree.  Produces the heavy-tailed degree profile
    of social / co-purchase networks (YT, AM, LJ in Table 2).
    """
    if m_attach < 1:
        raise ValueError("m_attach must be >= 1")
    if n <= m_attach:
        raise ValueError("need n > m_attach")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    # Start from a star on m_attach + 1 nodes so every early node has degree.
    repeated: list[int] = []
    for v in range(m_attach):
        edges.append((v, m_attach))
        repeated.extend((v, m_attach))
    for u in range(m_attach + 1, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            targets.add(repeated[rng.integers(len(repeated))])
        for v in targets:
            edges.append((u, v))
            repeated.extend((u, v))
    return _finish(edges)


def watts_strogatz(n: int, k: int, beta: float, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring probability ``beta``."""
    if k % 2 or k <= 0:
        raise ValueError("k must be a positive even integer")
    if n <= k:
        raise ValueError("need n > k")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(edges):
        if rng.random() < beta:
            w = int(rng.integers(n))
            attempts = 0
            while (
                w == u
                or (min(u, w), max(u, w)) in rewired
                or (min(u, w), max(u, w)) in edges
            ) and attempts < 32:
                w = int(rng.integers(n))
                attempts += 1
            if attempts < 32:
                rewired.add((min(u, w), max(u, w)))
                continue
        rewired.add((u, v))
    return _finish(rewired)


def planted_partition(
    n: int,
    communities: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Graph:
    """Stochastic block model with equal-size communities.

    Nodes in the same community share most neighbors, which is the
    regime graph summarization compresses best — clusters collapse to
    super-nodes with few corrections.
    """
    if communities < 1:
        raise ValueError("communities must be >= 1")
    rng = np.random.default_rng(seed)
    membership = np.arange(n) % communities
    edges: list[tuple[int, int]] = []
    for u in range(n - 1):
        same = membership[u + 1:] == membership[u]
        probs = np.where(same, p_in, p_out)
        mask = rng.random(n - 1 - u) < probs
        for offset in np.flatnonzero(mask):
            edges.append((u, u + 1 + int(offset)))
    return Graph(n, edges)


def caveman(cliques: int, clique_size: int, seed: int = 0) -> Graph:
    """Connected caveman graph: ``cliques`` cliques joined in a ring.

    An extreme best case for summarization: each clique becomes one
    super-node with a self-loop super-edge.
    """
    if cliques < 1 or clique_size < 2:
        raise ValueError("need cliques >= 1 and clique_size >= 2")
    edges: list[tuple[int, int]] = []
    for c in range(cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    # Ring links between consecutive cliques.
    if cliques > 1:
        for c in range(cliques):
            u = c * clique_size
            v = ((c + 1) % cliques) * clique_size + 1
            edges.append((u, v))
    return _finish(edges)


def rmat(
    scale: int,
    edge_factor: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker-style generator (``n = 2**scale`` nodes).

    The default (a, b, c) follow the Graph500 parameters and produce
    the skewed, locally-dense structure of web crawls (CN, IN, EU, UK,
    IT in Table 2).  ``edge_factor`` is the target m/n ratio before
    deduplication.
    """
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    target = n * edge_factor
    # Draw all bit decisions at once: for each edge and each level,
    # pick one of the four quadrants.
    probs = np.array([a, b, c, d])
    quadrants = rng.choice(4, size=(target, scale), p=probs)
    row_bits = (quadrants >> 1) & 1  # quadrants 2,3 add a row bit
    col_bits = quadrants & 1  # quadrants 1,3 add a col bit
    powers = 1 << np.arange(scale - 1, -1, -1, dtype=np.int64)
    rows = (row_bits * powers).sum(axis=1)
    cols = (col_bits * powers).sum(axis=1)
    return _finish(zip(rows.tolist(), cols.tolist()))


def configuration_power_law(
    n: int, exponent: float = 2.5, d_min: int = 2, seed: int = 0
) -> Graph:
    """Configuration-model graph with a power-law degree sequence.

    Degrees are sampled from a discrete power law with exponent
    ``exponent`` (truncated at sqrt(n) to keep the graph simple-izable),
    then stubs are matched uniformly; loops and multi-edges from the
    matching are dropped, the standard simplification.
    """
    if exponent <= 1.0:
        raise ValueError("exponent must be > 1")
    rng = np.random.default_rng(seed)
    d_max = max(d_min + 1, int(np.sqrt(n)))
    supports = np.arange(d_min, d_max + 1, dtype=np.float64)
    weights = supports ** (-exponent)
    weights /= weights.sum()
    degrees = rng.choice(
        np.arange(d_min, d_max + 1), size=n, p=weights
    ).astype(np.int64)
    if degrees.sum() % 2:
        degrees[int(rng.integers(n))] += 1
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    return _finish(zip(stubs[:half].tolist(), stubs[half:2 * half].tolist()))


def copying_model(
    n: int,
    out_degree: int,
    mutation: float = 0.1,
    seed: int = 0,
) -> Graph:
    """Kleinberg-style copying model for web graphs.

    Each new node picks a random *prototype* among the existing nodes
    and copies its neighbor list; with probability ``mutation`` each
    copied link is redirected to a uniformly random node instead.  Low
    mutation produces many nodes with near-identical neighborhoods —
    the structure that lets the paper's web crawls (CN, IN, IC, UK,
    IT) summarize down to relative sizes of ~0.1, which R-MAT's
    independent-edge skew cannot reproduce.
    """
    if out_degree < 1:
        raise ValueError("out_degree must be >= 1")
    if not 0.0 <= mutation <= 1.0:
        raise ValueError("mutation must be in [0, 1]")
    seed_nodes = out_degree + 1
    if n <= seed_nodes:
        raise ValueError(f"need n > {seed_nodes} for out_degree={out_degree}")
    rng = np.random.default_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    edges: list[tuple[int, int]] = []

    def link(u: int, v: int) -> None:
        if u != v and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            edges.append((u, v))

    # Seed clique so prototypes always have neighbors.
    for i in range(seed_nodes):
        for j in range(i + 1, seed_nodes):
            link(i, j)
    for u in range(seed_nodes, n):
        prototype = int(rng.integers(u))
        copied = list(adjacency[prototype])
        if len(copied) > out_degree:
            copied = list(rng.choice(copied, size=out_degree, replace=False))
        for v in copied:
            if rng.random() < mutation:
                v = int(rng.integers(u))
            link(u, v)
        # Keep the copier attached to its prototype occasionally, the
        # "hierarchy" links of real crawls.
        if rng.random() < 0.5:
            link(u, prototype)
    return _finish(edges)


def templated_web(
    n: int,
    templates: int,
    hubs: int,
    template_size: int,
    mutation: float = 0.05,
    seed: int = 0,
) -> Graph:
    """Web-crawl analog built from shared link templates.

    Real crawls compress extremely well (relative sizes ~0.1 in the
    paper's Table 3) because whole site sections share boilerplate
    link blocks: thousands of pages carry *identical* out-link sets.
    This generator makes that structure explicit: ``templates`` random
    hub subsets of size ``template_size`` are drawn over ``hubs`` hub
    pages, every ordinary page instantiates one template (Zipf-ish
    template popularity), and each of its links mutates to a random
    page with probability ``mutation``.
    """
    if templates < 1 or hubs < 2 or template_size < 1:
        raise ValueError("need templates >= 1, hubs >= 2, template_size >= 1")
    if template_size > hubs:
        raise ValueError("template_size cannot exceed hubs")
    if n <= hubs:
        raise ValueError("need n > hubs")
    rng = np.random.default_rng(seed)
    hub_ids = np.arange(hubs)
    template_links = [
        rng.choice(hub_ids, size=template_size, replace=False)
        for _ in range(templates)
    ]
    # Zipf-ish template popularity: some boilerplates dominate a crawl.
    weights = 1.0 / np.arange(1, templates + 1)
    weights /= weights.sum()
    edges: list[tuple[int, int]] = []
    # Sparse hub backbone (site navigation among hubs).
    for i in range(1, hubs):
        edges.append((i, int(rng.integers(i))))
    for page in range(hubs, n):
        template = int(rng.choice(templates, p=weights))
        for v in template_links[template]:
            v = int(v)
            if rng.random() < mutation:
                v = int(rng.integers(n))
            edges.append((page, v))
    return _finish(edges)


def cliques_and_stars(
    cliques: int,
    clique_size: int,
    stars: int,
    star_size: int,
    noise_edges: int = 0,
    seed: int = 0,
) -> Graph:
    """Composite of cliques and stars hanging off a sparse backbone.

    Mirrors the Hollywood-2011 discussion in Section 6.2: a large
    clique plus a hierarchy around it is the structure that favours
    Slugger's hierarchical model over flat summaries.  ``noise_edges``
    uniform random extra edges control how far the graph is from the
    pure composite (real collaboration networks are cliques *plus*
    cross-production links, which is what keeps their relative size
    near 0.5 rather than near 0).
    """
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    next_id = 0
    hubs: list[int] = []
    for _ in range(cliques):
        members = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.append((u, v))
        hubs.append(members[0])
    for _ in range(stars):
        center = next_id
        next_id += 1
        leaves = list(range(next_id, next_id + star_size))
        next_id += star_size
        for leaf in leaves:
            edges.append((center, leaf))
        hubs.append(center)
    # Sparse random backbone among hubs keeps the graph connected-ish.
    for i, u in enumerate(hubs[1:], start=1):
        v = hubs[int(rng.integers(i))]
        edges.append((u, v))
    for _ in range(noise_edges):
        u = int(rng.integers(next_id))
        v = int(rng.integers(next_id))
        edges.append((u, v))
    return _finish(edges)
