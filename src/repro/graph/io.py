"""Edge-list I/O and cleaning.

The paper's experimental setup (Section 6.1) removes all edge
directions, duplicated edges, and self-loops before summarizing.
:func:`clean_edges` implements exactly that normalisation, and the
reader/writer pair round-trips graphs through the common whitespace
separated edge-list format used by SNAP/LAW/NetworkRepository dumps.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.graph.graph import Graph

__all__ = [
    "clean_edges",
    "read_edge_list",
    "read_declared_node_count",
    "write_edge_list",
    "load_graph",
    "save_graph",
]


def clean_edges(
    raw_edges: Iterable[tuple[int, int]],
) -> tuple[int, list[tuple[int, int]]]:
    """Normalise a raw (possibly directed / noisy) edge list.

    Removes self-loops, collapses both edge directions and duplicate
    occurrences into a single undirected edge, and relabels nodes to a
    dense ``0..n-1`` range in increasing original-id order.  Note that
    ``n`` is inferred from the ids that appear in edges, so isolated
    nodes are invisible here — the ``# n=<count>`` header written by
    :func:`save_graph` exists precisely so the
    :func:`save_graph` / :func:`load_graph` roundtrip stays the
    identity for graphs with isolated nodes.

    Returns
    -------
    (n, edges):
        Node count and the cleaned, relabeled edge list, each edge as
        ``(u, v)`` with ``u < v``.

    Examples
    --------
    >>> clean_edges([(7, 3), (3, 7), (7, 7), (3, 9)])
    (3, [(0, 1), (0, 2)])
    """
    raw: list[tuple[int, int]] = [
        (a, b) if a < b else (b, a) for a, b in raw_edges if a != b
    ]
    nodes = sorted({node for edge in raw for node in edge})
    relabel = {node: index for index, node in enumerate(nodes)}
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for a, b in raw:
        key = (relabel[a], relabel[b])
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return len(nodes), edges


def _open_text(path: Path, mode: str):
    """Open ``path`` as text, transparently handling ``.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(path: str | Path) -> Iterator[tuple[int, int]]:
    """Yield raw integer edges from a whitespace-separated file.

    Lines starting with ``#`` or ``%`` (SNAP / NetworkRepository
    comment styles) and blank lines are skipped — including the
    optional ``# n=<count>`` header written by :func:`write_edge_list`
    (use :func:`read_declared_node_count` to recover it).  Extra
    columns beyond the first two (e.g. timestamps or weights) are
    ignored.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped[0] in "#%":
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            yield int(parts[0]), int(parts[1])


def read_declared_node_count(path: str | Path) -> int | None:
    """The ``# n=<count>`` header value, or ``None`` if absent.

    Only the leading run of comment/blank lines is scanned, so edge
    data is never touched; a malformed count raises ``ValueError``.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped[0] not in "#%":
                return None
            body = stripped.lstrip("#%").strip()
            if body.startswith("n="):
                count = int(body[2:].strip())
                if count < 0:
                    raise ValueError(f"negative node count header: {count}")
                return count
    return None


def write_edge_list(
    path: str | Path,
    edges: Iterable[tuple[int, int]],
    *,
    n: int | None = None,
) -> None:
    """Write edges as ``u v`` lines (gzip if the path ends in .gz).

    With ``n``, an optional ``# n=<count>`` header is written first so
    readers can recover the exact node count — edge lines alone cannot
    represent isolated nodes.  Plain SNAP-style consumers skip the
    header as an ordinary comment.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        if n is not None:
            handle.write(f"# n={n}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")


def load_graph(path: str | Path) -> Graph:
    """Read, clean, and build a :class:`Graph` from an edge-list file.

    Files carrying the ``# n=<count>`` header (everything written by
    :func:`save_graph`) are treated as already densely labeled: edges
    are deduplicated and self-loops dropped, but ids are *not*
    relabeled, and the declared count preserves isolated nodes — so
    ``load_graph(save_graph(g)) == g`` exactly.  An edge id at or
    beyond the declared count raises :class:`~repro.graph.graph.GraphError`.
    Headerless files fall back to the paper's Section 6.1
    normalisation via :func:`clean_edges`, as before.
    """
    declared = read_declared_node_count(path)
    if declared is None:
        n, edges = clean_edges(read_edge_list(path))
        return Graph(n, edges)
    seen: set[tuple[int, int]] = set()
    edges = []
    for a, b in read_edge_list(path):
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        if key not in seen:
            seen.add(key)
            edges.append(key)
    return Graph(declared, edges)


def save_graph(path: str | Path, graph: Graph) -> None:
    """Persist a graph as a sorted, deterministic edge list.

    Writes the ``# n=<count>`` header so the roundtrip through
    :func:`load_graph` is the identity even when the graph has
    isolated nodes (which edge lines cannot express).
    """
    write_edge_list(path, sorted(graph.edges()), n=graph.n)
