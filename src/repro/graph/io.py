"""Edge-list I/O and cleaning.

The paper's experimental setup (Section 6.1) removes all edge
directions, duplicated edges, and self-loops before summarizing.
:func:`clean_edges` implements exactly that normalisation, and the
reader/writer pair round-trips graphs through the common whitespace
separated edge-list format used by SNAP/LAW/NetworkRepository dumps.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.graph.graph import Graph

__all__ = [
    "clean_edges",
    "read_edge_list",
    "write_edge_list",
    "load_graph",
    "save_graph",
]


def clean_edges(
    raw_edges: Iterable[tuple[int, int]],
) -> tuple[int, list[tuple[int, int]]]:
    """Normalise a raw (possibly directed / noisy) edge list.

    Removes self-loops, collapses both edge directions and duplicate
    occurrences into a single undirected edge, and relabels nodes to a
    dense ``0..n-1`` range in increasing original-id order — so a graph
    that is already densely labeled keeps its labels (the roundtrip
    through :func:`save_graph` / :func:`load_graph` is the identity).

    Returns
    -------
    (n, edges):
        Node count and the cleaned, relabeled edge list, each edge as
        ``(u, v)`` with ``u < v``.

    Examples
    --------
    >>> clean_edges([(7, 3), (3, 7), (7, 7), (3, 9)])
    (3, [(0, 1), (0, 2)])
    """
    raw: list[tuple[int, int]] = [
        (a, b) if a < b else (b, a) for a, b in raw_edges if a != b
    ]
    nodes = sorted({node for edge in raw for node in edge})
    relabel = {node: index for index, node in enumerate(nodes)}
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for a, b in raw:
        key = (relabel[a], relabel[b])
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return len(nodes), edges


def _open_text(path: Path, mode: str):
    """Open ``path`` as text, transparently handling ``.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def read_edge_list(path: str | Path) -> Iterator[tuple[int, int]]:
    """Yield raw integer edges from a whitespace-separated file.

    Lines starting with ``#`` or ``%`` (SNAP / NetworkRepository
    comment styles) and blank lines are skipped.  Extra columns beyond
    the first two (e.g. timestamps or weights) are ignored.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped[0] in "#%":
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            yield int(parts[0]), int(parts[1])


def write_edge_list(path: str | Path, edges: Iterable[tuple[int, int]]) -> None:
    """Write edges as ``u v`` lines (gzip if the path ends in .gz)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        for u, v in edges:
            handle.write(f"{u} {v}\n")


def load_graph(path: str | Path) -> Graph:
    """Read, clean, and build a :class:`Graph` from an edge-list file."""
    n, edges = clean_edges(read_edge_list(path))
    return Graph(n, edges)


def save_graph(path: str | Path, graph: Graph) -> None:
    """Persist a graph as a sorted, deterministic edge list."""
    write_edge_list(path, sorted(graph.edges()))
