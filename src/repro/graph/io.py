"""Edge-list I/O, cleaning, and validated ingestion.

The paper's experimental setup (Section 6.1) removes all edge
directions, duplicated edges, and self-loops before summarizing.
:func:`clean_edges` implements exactly that normalisation, and the
reader/writer pair round-trips graphs through the common whitespace
separated edge-list format used by SNAP/LAW/NetworkRepository dumps.

Ingestion is a trust boundary: uploads arrive malformed, truncated,
oversized, or adversarial, so :func:`load_graph` validates every line
and reports problems with a 1-based line number, the byte offset of
the line in the (decompressed) stream, and the offending text
truncated to 80 characters.  A ``policy`` selects what happens to a
bad record:

``strict``
    (default) raise on the first bad line — the historical behavior;
``skip``
    drop bad lines, counting them per reason;
``quarantine``
    like ``skip``, but also append each rejected line to a sidecar
    file (``<input>.quarantine`` unless overridden) as
    ``line<TAB>byte_offset<TAB>reason<TAB>snippet`` for later triage.

Resource caps (``max_nodes``, ``max_edges``, ``max_line_bytes``)
defend against decompression bombs and runaway inputs; cap violations
always raise regardless of policy, as does gzip truncation/corruption
(the framing is unrecoverable, so skipping cannot be sound).  Rejected
lines are counted under ``repro_ingest_rejected_lines_total{reason=}``
when :mod:`repro.obs` is loaded (resolved through ``sys.modules`` so
this module never imports it).
"""

from __future__ import annotations

import gzip
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.graph.graph import Graph, GraphError

__all__ = [
    "clean_edges",
    "read_edge_list",
    "read_declared_node_count",
    "write_edge_list",
    "load_graph",
    "load_graph_checked",
    "save_graph",
    "IngestReport",
    "INGEST_POLICIES",
    "DEFAULT_MAX_LINE_BYTES",
]

#: Ingestion policies accepted by :func:`load_graph`.
INGEST_POLICIES = ("strict", "skip", "quarantine")

#: Default per-line length cap for :func:`load_graph` — far above any
#: legitimate ``u v [extras]`` line, low enough that a decompression
#: bomb of unterminated garbage fails fast.
DEFAULT_MAX_LINE_BYTES = 1 << 16

#: Offending text shown in diagnostics is truncated to this length.
_SNIPPET_CHARS = 80


def clean_edges(
    raw_edges: Iterable[tuple[int, int]],
) -> tuple[int, list[tuple[int, int]]]:
    """Normalise a raw (possibly directed / noisy) edge list.

    Removes self-loops, collapses both edge directions and duplicate
    occurrences into a single undirected edge, and relabels nodes to a
    dense ``0..n-1`` range in increasing original-id order.  Note that
    ``n`` is inferred from the ids that appear in edges, so isolated
    nodes are invisible here — the ``# n=<count>`` header written by
    :func:`save_graph` exists precisely so the
    :func:`save_graph` / :func:`load_graph` roundtrip stays the
    identity for graphs with isolated nodes.

    Returns
    -------
    (n, edges):
        Node count and the cleaned, relabeled edge list, each edge as
        ``(u, v)`` with ``u < v``.

    Examples
    --------
    >>> clean_edges([(7, 3), (3, 7), (7, 7), (3, 9)])
    (3, [(0, 1), (0, 2)])
    """
    raw: list[tuple[int, int]] = [
        (a, b) if a < b else (b, a) for a, b in raw_edges if a != b
    ]
    nodes = sorted({node for edge in raw for node in edge})
    relabel = {node: index for index, node in enumerate(nodes)}
    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for a, b in raw:
        key = (relabel[a], relabel[b])
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)
    return len(nodes), edges


def _open_text(path: Path, mode: str):
    """Open ``path`` as text, transparently handling ``.gz``."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _snippet(line: str) -> str:
    """The offending text of a diagnostic, truncated to 80 chars."""
    text = line.rstrip("\n")
    if len(text) > _SNIPPET_CHARS:
        text = text[:_SNIPPET_CHARS] + "..."
    return text


def _where(line_no: int, offset: int, line: str) -> str:
    """The standard location suffix of every per-line diagnostic."""
    return f"(line {line_no}, byte {offset}): {_snippet(line)!r}"


def _iter_lines(path: Path) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line_no, byte_offset, line)`` with gzip errors mapped
    to :class:`~repro.graph.graph.GraphError`.

    ``line_no`` is 1-based; ``byte_offset`` is the position of the
    line's first byte in the *decompressed* stream (what a text editor
    on the unpacked file would see).
    """
    offset = 0
    try:
        with _open_text(path, "r") as handle:
            for line_no, line in enumerate(handle, start=1):
                yield line_no, offset, line
                offset += len(line.encode("utf-8", "surrogateescape"))
    except (EOFError, gzip.BadGzipFile) as exc:
        raise GraphError(
            f"{path}: truncated or corrupt gzip stream after line "
            f"offset {offset} ({type(exc).__name__}: {exc})"
        ) from exc
    except UnicodeDecodeError as exc:
        raise GraphError(
            f"{path}: not a text edge list (binary or wrongly encoded "
            f"data near byte {exc.start})"
        ) from exc


def _record_rejected(reason: str, count: int = 1) -> None:
    """Count a rejected line when :mod:`repro.obs` is already loaded.

    Resolved through ``sys.modules`` (same gate as
    :func:`repro.algorithms.base.active_tracer`) so ingestion never
    drags the observability stack into a process that does not use it.
    """
    obs = sys.modules.get("repro.obs.metrics")
    if obs is None:
        return
    obs.get_registry().counter(
        "repro_ingest_rejected_lines_total", reason=reason
    ).inc(count)


def _classify_line(
    line: str, max_line_bytes: int | None
) -> tuple[str, tuple[int, int] | None, str]:
    """Classify one raw line.

    Returns ``(kind, edge, reason)`` where ``kind`` is ``"edge"``
    (``edge`` holds the pair), ``"blank"`` (comment/empty, always
    skipped), or ``"bad"`` (``reason`` one of ``line_too_long``,
    ``malformed``, ``non_integer``).
    """
    if (
        max_line_bytes is not None
        and len(line.encode("utf-8", "surrogateescape")) > max_line_bytes
    ):
        return "bad", None, "line_too_long"
    stripped = line.strip()
    if not stripped or stripped[0] in "#%":
        return "blank", None, ""
    parts = stripped.split()
    if len(parts) < 2:
        return "bad", None, "malformed"
    try:
        return "edge", (int(parts[0]), int(parts[1])), ""
    except ValueError:
        return "bad", None, "non_integer"


_REASON_MESSAGES = {
    "line_too_long": "edge line exceeds the byte cap",
    "malformed": "malformed edge line, expected 'u v'",
    "non_integer": "malformed edge line, non-integer endpoint",
    "id_out_of_range": "node id outside the declared range",
}


def read_edge_list(
    path: str | Path, *, max_line_bytes: int | None = None
) -> Iterator[tuple[int, int]]:
    """Yield raw integer edges from a whitespace-separated file.

    Lines starting with ``#`` or ``%`` (SNAP / NetworkRepository
    comment styles) and blank lines are skipped — including the
    optional ``# n=<count>`` header written by :func:`write_edge_list`
    (use :func:`read_declared_node_count` to recover it).  Extra
    columns beyond the first two (e.g. timestamps or weights) are
    ignored.

    Every ``ValueError`` names the 1-based line number, the byte
    offset of the line in the (decompressed) stream, and the offending
    text truncated to 80 characters.  ``max_line_bytes`` optionally
    caps the per-line length (``None`` = unbounded, the historical
    behavior); :func:`load_graph` applies its default cap and its
    ingestion policy on top of this reader.
    """
    path = Path(path)
    for line_no, offset, line in _iter_lines(path):
        kind, edge, reason = _classify_line(line, max_line_bytes)
        if kind == "edge":
            yield edge
        elif kind == "bad":
            raise ValueError(
                f"{path}: {_REASON_MESSAGES[reason]} "
                f"{_where(line_no, offset, line)}"
            )


def read_declared_node_count(path: str | Path) -> int | None:
    """The ``# n=<count>`` header value, or ``None`` if absent.

    Only the leading run of comment/blank lines is scanned, so edge
    data is never touched; a malformed count raises ``ValueError``
    naming the line and its text.
    """
    path = Path(path)
    for line_no, offset, line in _iter_lines(path):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped[0] not in "#%":
            return None
        body = stripped.lstrip("#%").strip()
        if body.startswith("n="):
            try:
                count = int(body[2:].strip())
            except ValueError:
                raise ValueError(
                    f"{path}: malformed node count header "
                    f"{_where(line_no, offset, line)}"
                ) from None
            if count < 0:
                raise ValueError(
                    f"{path}: negative node count header: {count} "
                    f"{_where(line_no, offset, line)}"
                )
            return count
    return None


def write_edge_list(
    path: str | Path,
    edges: Iterable[tuple[int, int]],
    *,
    n: int | None = None,
) -> None:
    """Write edges as ``u v`` lines (gzip if the path ends in .gz).

    With ``n``, an optional ``# n=<count>`` header is written first so
    readers can recover the exact node count — edge lines alone cannot
    represent isolated nodes.  Plain SNAP-style consumers skip the
    header as an ordinary comment.
    """
    path = Path(path)
    with _open_text(path, "w") as handle:
        if n is not None:
            handle.write(f"# n={n}\n")
        for u, v in edges:
            handle.write(f"{u} {v}\n")


@dataclass
class IngestReport:
    """What :func:`load_graph_checked` accepted and rejected."""

    #: Total lines scanned (including comments and blanks).
    lines_total: int = 0
    #: Edge records accepted (before dedup / self-loop cleaning).
    edges_accepted: int = 0
    #: Lines rejected by the policy (``skip`` / ``quarantine``).
    rejected: int = 0
    #: Rejection counts keyed by reason (``malformed``,
    #: ``non_integer``, ``line_too_long``, ``id_out_of_range``).
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    #: Sidecar path, set only when quarantining wrote at least a line.
    quarantine_path: Path | None = None

    def note(self, reason: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )


class _Quarantine:
    """Lazily-created sidecar for rejected lines."""

    def __init__(self, path: Path):
        self.path = path
        self._handle = None

    def write(self, line_no: int, offset: int, reason: str, line: str) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w")
        self._handle.write(
            f"{line_no}\t{offset}\t{reason}\t{_snippet(line)}\n"
        )

    def close(self) -> Path | None:
        if self._handle is None:
            return None
        self._handle.close()
        return self.path


def load_graph_checked(
    path: str | Path,
    *,
    policy: str = "strict",
    max_nodes: int | None = None,
    max_edges: int | None = None,
    max_line_bytes: int | None = DEFAULT_MAX_LINE_BYTES,
    quarantine_path: str | Path | None = None,
) -> tuple[Graph, IngestReport]:
    """Validated ingestion: :func:`load_graph` plus an
    :class:`IngestReport` of everything that was rejected.

    See :func:`load_graph` for the semantics; this variant exists for
    callers (the CLI, services) that need to surface rejection counts
    instead of silently accepting a partially-skipped file.
    """
    path = Path(path)
    if policy not in INGEST_POLICIES:
        raise ValueError(
            f"unknown ingestion policy {policy!r}; "
            f"expected one of {', '.join(INGEST_POLICIES)}"
        )
    report = IngestReport()
    quarantine: _Quarantine | None = None
    if policy == "quarantine":
        sidecar = (
            Path(quarantine_path)
            if quarantine_path is not None
            else path.with_name(path.name + ".quarantine")
        )
        quarantine = _Quarantine(sidecar)

    declared = read_declared_node_count(path)
    if (
        declared is not None
        and max_nodes is not None
        and declared > max_nodes
    ):
        raise GraphError(
            f"{path}: declared node count {declared} exceeds the "
            f"max_nodes cap of {max_nodes}"
        )

    def reject(line_no: int, offset: int, reason: str, line: str) -> None:
        report.note(reason)
        _record_rejected(reason)
        if policy == "strict":
            raise_type = (
                GraphError if reason == "id_out_of_range" else ValueError
            )
            raise raise_type(
                f"{path}: {_REASON_MESSAGES[reason]} "
                f"{_where(line_no, offset, line)}"
            )
        if quarantine is not None:
            quarantine.write(line_no, offset, reason, line)

    raw_edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    headered_edges: list[tuple[int, int]] = []
    try:
        for line_no, offset, line in _iter_lines(path):
            report.lines_total = line_no
            kind, edge, reason = _classify_line(line, max_line_bytes)
            if kind == "blank":
                continue
            if kind == "bad":
                reject(line_no, offset, reason, line)
                continue
            a, b = edge
            if declared is not None and not (
                0 <= a < declared and 0 <= b < declared
            ):
                reject(line_no, offset, "id_out_of_range", line)
                continue
            report.edges_accepted += 1
            if max_edges is not None and report.edges_accepted > max_edges:
                raise GraphError(
                    f"{path}: edge record count exceeds the max_edges "
                    f"cap of {max_edges} at line {line_no}"
                )
            if declared is None:
                raw_edges.append((a, b))
            else:
                # Headered files are already densely labeled: dedupe
                # and drop self-loops, but never relabel, so the
                # save_graph/load_graph roundtrip is the identity.
                if a == b:
                    continue
                key = (a, b) if a < b else (b, a)
                if key not in seen:
                    seen.add(key)
                    headered_edges.append(key)
    finally:
        if quarantine is not None:
            report.quarantine_path = quarantine.close()

    if declared is not None:
        return Graph(declared, headered_edges), report
    n, edges = clean_edges(raw_edges)
    if max_nodes is not None and n > max_nodes:
        raise GraphError(
            f"{path}: node count {n} exceeds the max_nodes cap "
            f"of {max_nodes}"
        )
    return Graph(n, edges), report


def load_graph(
    path: str | Path,
    *,
    policy: str = "strict",
    max_nodes: int | None = None,
    max_edges: int | None = None,
    max_line_bytes: int | None = DEFAULT_MAX_LINE_BYTES,
    quarantine_path: str | Path | None = None,
) -> Graph:
    """Read, validate, clean, and build a :class:`Graph` from an
    edge-list file.

    Files carrying the ``# n=<count>`` header (everything written by
    :func:`save_graph`) are treated as already densely labeled: edges
    are deduplicated and self-loops dropped, but ids are *not*
    relabeled, and the declared count preserves isolated nodes — so
    ``load_graph(save_graph(g)) == g`` exactly.  An edge id at or
    beyond the declared count is an ``id_out_of_range`` issue (a
    :class:`~repro.graph.graph.GraphError` under the strict policy).
    Headerless files fall back to the paper's Section 6.1
    normalisation via :func:`clean_edges`, as before.

    ``policy`` decides what happens to bad lines (see the module
    docstring): ``strict`` raises with the line number, byte offset
    and offending text; ``skip`` drops them; ``quarantine``
    additionally appends them to ``quarantine_path`` (default
    ``<input>.quarantine``).  ``max_nodes`` / ``max_edges`` /
    ``max_line_bytes`` are hard resource caps and raise regardless of
    policy, as does gzip truncation or binary junk.  Self-loops and
    duplicate edges are normal cleaning, never rejections.
    """
    graph, _report = load_graph_checked(
        path,
        policy=policy,
        max_nodes=max_nodes,
        max_edges=max_edges,
        max_line_bytes=max_line_bytes,
        quarantine_path=quarantine_path,
    )
    return graph


def save_graph(path: str | Path, graph: Graph) -> None:
    """Persist a graph as a sorted, deterministic edge list.

    Writes the ``# n=<count>`` header so the roundtrip through
    :func:`load_graph` is the identity even when the graph has
    isolated nodes (which edge lines cannot express).
    """
    write_edge_list(path, sorted(graph.edges()), n=graph.n)
