"""Scaled-down synthetic analogs of the paper's datasets (Table 2).

The paper evaluates on 18 public graphs from SNAP, LAW and Network
Repository, from 53K edges (Caida) to 1.03B edges (IT-2004).  Those
are not redistributable here and are far beyond what a pure-Python
interpreter can summarize in bounded time (repro band 3), so each
dataset is replaced by a seeded generator chosen to match its *type*
and average degree from Table 2, at a few-hundred-to-few-thousand
node scale.

The registry preserves the paper's grouping:

* ``SMALL_DATASETS`` — CA..DB, the graphs Greedy can process (Fig. 4/6);
* ``LARGE_DATASETS`` — AM..IT, the graphs where Greedy times out
  (Fig. 5/7).

Each entry records the paper's true statistics alongside the analog's
generator so that benchmark output can show both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.graph import generators
from repro.graph.graph import Graph

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "SMALL_DATASETS",
    "LARGE_DATASETS",
    "MEDIUM_DATASETS",
    "load_dataset",
    "dataset_codes",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset of Table 2 and its synthetic stand-in."""

    code: str
    name: str
    kind: str
    paper_n: int
    paper_m: int
    paper_davg: float
    small: bool
    make: Callable[[], Graph] = field(repr=False)

    def load(self) -> Graph:
        """Generate the analog graph (deterministic per spec)."""
        return self.make()


def _social(n: int, m_attach: int, seed: int) -> Callable[[], Graph]:
    return lambda: generators.barabasi_albert(n, m_attach, seed=seed)


def _community(
    n: int, communities: int, p_in: float, p_out: float, seed: int
) -> Callable[[], Graph]:
    return lambda: generators.planted_partition(
        n, communities, p_in, p_out, seed=seed
    )


def _internet(n: int, exponent: float, seed: int) -> Callable[[], Graph]:
    return lambda: generators.configuration_power_law(
        n, exponent=exponent, d_min=2, seed=seed
    )


def _collab(
    cliques: int,
    clique_size: int,
    stars: int,
    star_size: int,
    seed: int,
    noise: int = 0,
) -> Callable[[], Graph]:
    return lambda: generators.cliques_and_stars(
        cliques, clique_size, stars, star_size, noise_edges=noise, seed=seed
    )


def _webt(
    n: int,
    templates: int,
    hubs: int,
    template_size: int,
    mutation: float,
    seed: int,
) -> Callable[[], Graph]:
    return lambda: generators.templated_web(
        n, templates, hubs, template_size, mutation=mutation, seed=seed
    )


def _copying(
    n: int, out_degree: int, mutation: float, seed: int
) -> Callable[[], Graph]:
    return lambda: generators.copying_model(
        n, out_degree, mutation=mutation, seed=seed
    )


# Analog parameters are chosen so d_avg lands near the paper's value
# for each dataset while n stays interpreter-friendly.  Seeds are fixed
# so every run of the benchmark suite sees identical graphs.
_SPECS: list[DatasetSpec] = [
    # ---- small graphs (Greedy-feasible; Figures 4 and 6) ----
    DatasetSpec(
        "CA", "Caida", "Internet", 26_475, 53_381, 4.0, True,
        _internet(400, 2.6, seed=11),
    ),
    DatasetSpec(
        "EN", "Email-Enron", "E-Mail", 36_692, 183_831, 10.0, True,
        _community(360, 24, 0.55, 0.010, seed=12),
    ),
    DatasetSpec(
        "BK", "Brightkite", "Geo-Social", 58_228, 214_078, 7.4, True,
        _social(420, 4, seed=13),
    ),
    DatasetSpec(
        "EA", "Email-Eu-All", "E-Mail", 265_009, 364_481, 2.8, True,
        _community(520, 40, 0.42, 0.003, seed=14),
    ),
    DatasetSpec(
        "SL", "Slashdot-0922", "Social", 82_168, 504_230, 12.3, True,
        _social(400, 6, seed=15),
    ),
    DatasetSpec(
        "DB", "DBLP", "Co-author", 317_080, 1_049_866, 6.6, True,
        _webt(460, 30, 60, 3, 0.18, seed=16),
    ),
    # ---- large graphs (Greedy-infeasible; Figures 5 and 7) ----
    DatasetSpec(
        "AM", "Amazon0601", "Co-purchase", 403_394, 2_443_408, 12.1, False,
        _copying(2_000, 6, 0.02, seed=21),
    ),
    DatasetSpec(
        "CN", "CNR-2000", "Web", 325_557, 2_738_969, 16.8, False,
        _webt(1_500, 40, 120, 8, 0.04, seed=22),
    ),
    DatasetSpec(
        "YT", "Youtube", "Social", 1_134_890, 2_987_624, 5.3, False,
        _copying(2_400, 3, 0.06, seed=23),
    ),
    DatasetSpec(
        "SK", "Skitter", "Internet", 1_696_415, 11_095_298, 13.1, False,
        _webt(2_400, 80, 160, 6, 0.20, seed=24),
    ),
    DatasetSpec(
        "IN", "IN-2004", "Web", 1_382_867, 13_591_473, 19.7, False,
        _webt(1_800, 40, 140, 10, 0.03, seed=25),
    ),
    DatasetSpec(
        "EU", "EU-2005", "Web", 862_664, 16_138_468, 37.4, False,
        _webt(1_200, 40, 100, 18, 0.06, seed=26),
    ),
    DatasetSpec(
        "ES", "Eswiki-2013", "Web", 970_327, 21_184_931, 43.7, False,
        _copying(1_000, 22, 0.10, seed=27),
    ),
    DatasetSpec(
        "LJ", "LiveJournal", "Social", 3_997_962, 34_681_189, 17.3, False,
        _copying(3_000, 9, 0.10, seed=28),
    ),
    DatasetSpec(
        "HO", "Hollywood-2011", "Collaboration", 1_985_306, 114_492_816,
        115.3, False,
        _collab(10, 56, 10, 24, seed=29, noise=14_000),
    ),
    DatasetSpec(
        "IC", "Indochina-2004", "Web", 7_414_758, 150_984_819, 40.7, False,
        _webt(3_000, 50, 200, 20, 0.02, seed=30),
    ),
    DatasetSpec(
        "UK", "UK-2005", "Web", 39_454_463, 783_027_125, 39.7, False,
        _webt(3_300, 60, 220, 20, 0.02, seed=31),
    ),
    DatasetSpec(
        "IT", "IT-2004", "Web", 41_290_648, 1_027_474_947, 49.8, False,
        _webt(6_500, 80, 300, 25, 0.02, seed=32),
    ),
]

DATASETS: dict[str, DatasetSpec] = {spec.code: spec for spec in _SPECS}
SMALL_DATASETS: list[str] = [s.code for s in _SPECS if s.small]
LARGE_DATASETS: list[str] = [s.code for s in _SPECS if not s.small]
# The parameter-analysis figures (11-16) use a medium subset in the
# paper (YT, SK, IN, LJ, IC, HO); we keep the same codes.
MEDIUM_DATASETS: list[str] = ["YT", "SK", "IN", "LJ", "IC", "HO"]


def dataset_codes() -> list[str]:
    """All dataset codes in Table 2 order."""
    return [spec.code for spec in _SPECS]


def load_dataset(code: str) -> Graph:
    """Generate the synthetic analog for a Table 2 dataset code."""
    try:
        spec = DATASETS[code.upper()]
    except KeyError:
        known = ", ".join(dataset_codes())
        raise KeyError(f"unknown dataset {code!r}; known codes: {known}")
    return spec.load()
