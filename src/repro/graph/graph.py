"""Undirected graph substrate.

The paper (Section 2.1) works on simple undirected graphs
``G = (V, E)`` with nodes relabeled to ``0..n-1``.  All algorithms in
this package consume :class:`Graph`, which stores adjacency as a list
of Python sets (fast membership and set algebra, which the cost
calculus of Section 2.2 relies on) and lazily exposes a CSR view for
vectorised workloads such as PageRank (Section 6.6).

Graphs are immutable after construction; summarization never mutates
its input.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid graph input."""


class Graph:
    """A simple undirected graph with integer nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.  Isolated nodes are allowed (they simply never
        participate in a merge).
    edges:
        Iterable of ``(u, v)`` pairs.  Self-loops and duplicates are
        rejected; use :func:`repro.graph.io.clean_edges` to sanitise raw
        edge lists first (the paper removes directions, duplicates and
        self-loops, Section 6.1).

    Examples
    --------
    >>> g = Graph(3, [(0, 1), (1, 2)])
    >>> g.n, g.m
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_n", "_m", "_adj", "_csr_cache")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]]):
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self._n = n
        adj: list[set[int]] = [set() for _ in range(n)]
        m = 0
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise GraphError(f"self-loop ({u}, {v}) not allowed")
            if v in adj[u]:
                raise GraphError(f"duplicate edge ({u}, {v})")
            adj[u].add(v)
            adj[v].add(u)
            m += 1
        self._m = m
        self._adj = adj
        self._csr_cache: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of (undirected) edges."""
        return self._m

    @property
    def avg_degree(self) -> float:
        """Average degree ``d_avg = 2m/n`` (Table 1)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self._m / self._n

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        return len(self._adj[u])

    def neighbors(self, u: int) -> frozenset[int]:
        """The neighbor set ``N_u`` of node ``u`` (read-only view)."""
        return frozenset(self._adj[u])

    def adjacency(self) -> Sequence[set[int]]:
        """Internal adjacency list.

        Exposed for the summarization algorithms, which iterate over
        neighborhoods in tight loops; callers must not mutate the sets.
        """
        return self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            return False
        return v in self._adj[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_set(self) -> set[tuple[int, int]]:
        """The edge set as ``(min, max)`` tuples (materialised)."""
        return set(self.edges())

    def nodes(self) -> range:
        """All node ids."""
        return range(self._n)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, indices)`` CSR arrays (cached).

        Used by the vectorised PageRank baseline; neighbor lists are
        sorted so the representation is deterministic.
        """
        if self._csr_cache is None:
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            for u in range(self._n):
                indptr[u + 1] = indptr[u] + len(self._adj[u])
            indices = np.empty(indptr[-1], dtype=np.int64)
            for u in range(self._n):
                nbrs = sorted(self._adj[u])
                indices[indptr[u]:indptr[u + 1]] = nbrs
            self._csr_cache = (indptr, indices)
        return self._csr_cache

    def degrees(self) -> np.ndarray:
        """Degree of every node as an ``int64`` array."""
        return np.fromiter(
            (len(nbrs) for nbrs in self._adj), dtype=np.int64, count=self._n
        )

    def subgraph(self, keep: Iterable[int]) -> "Graph":
        """Induced subgraph on ``keep``, relabeled to ``0..len(keep)-1``.

        The relabeling preserves the relative order of the kept ids.
        """
        kept = sorted(set(keep))
        if kept and not (0 <= kept[0] and kept[-1] < self._n):
            raise GraphError(
                f"keep ids must be within 0..{self._n - 1}"
            )
        index = {old: new for new, old in enumerate(kept)}
        edges = [
            (index[u], index[v])
            for u, v in self.edges()
            if u in index and v in index
        ]
        return Graph(len(kept), edges)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._adj == other._adj

    def __hash__(self):  # pragma: no cover - graphs are not hashable
        raise TypeError("Graph objects are mutable-sized; not hashable")

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m}, d_avg={self.avg_degree:.2f})"

    @classmethod
    def from_edge_list(cls, edges: Iterable[tuple[int, int]]) -> "Graph":
        """Build a graph from edges alone; ``n`` is ``max id + 1``.

        Raises :class:`GraphError` on self-loops or duplicates, same as
        the constructor.
        """
        edge_list = list(edges)
        if not edge_list:
            return cls(0, [])
        n = max(max(u, v) for u, v in edge_list) + 1
        return cls(n, edge_list)
