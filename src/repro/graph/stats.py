"""Descriptive graph statistics (Table 2 columns and friends)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "GraphStats",
    "graph_stats",
    "degree_histogram",
    "duplication_profile",
]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one graph."""

    n: int
    m: int
    avg_degree: float
    max_degree: int
    min_degree: int
    median_degree: float
    isolated_nodes: int

    def as_row(self) -> dict[str, float | int]:
        """Flat dict view for tabular reporting."""
        return {
            "n": self.n,
            "m": self.m,
            "d_avg": round(self.avg_degree, 2),
            "d_max": self.max_degree,
            "d_min": self.min_degree,
            "d_med": self.median_degree,
            "isolated": self.isolated_nodes,
        }


def graph_stats(graph: Graph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    if graph.n == 0:
        return GraphStats(0, 0, 0.0, 0, 0, 0.0, 0)
    degrees = graph.degrees()
    return GraphStats(
        n=graph.n,
        m=graph.m,
        avg_degree=graph.avg_degree,
        max_degree=int(degrees.max()),
        min_degree=int(degrees.min()),
        median_degree=float(np.median(degrees)),
        isolated_nodes=int((degrees == 0).sum()),
    )


def duplication_profile(graph: Graph) -> dict[str, float]:
    """How much neighborhood duplication a graph carries.

    Summarization compresses exactly this structure (nodes with
    identical or near-identical neighbor sets collapse into
    super-nodes), so the profile predicts achievable relative size:
    the paper's web crawls have huge twin classes (relative sizes near
    0.1) while random-ish social graphs have almost none.

    Returns
    -------
    dict with:
        ``twin_fraction`` — fraction of nodes sharing an *identical*
        neighbor set with at least one other node;
        ``twin_classes`` — number of distinct shared neighborhoods;
        ``largest_class`` — size of the biggest twin class.
    """
    classes: dict[frozenset[int], int] = {}
    for u in graph.nodes():
        key = frozenset(graph.adjacency()[u])
        classes[key] = classes.get(key, 0) + 1
    shared = [count for count in classes.values() if count > 1]
    twins = sum(shared)
    return {
        "twin_fraction": twins / graph.n if graph.n else 0.0,
        "twin_classes": float(len(shared)),
        "largest_class": float(max(shared, default=0)),
    }


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Map each occurring degree to its node count."""
    histogram: dict[int, int] = {}
    for u in graph.nodes():
        d = graph.degree(u)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram
