"""Further graph queries answered directly on the summary.

Section 6.6 closes with "in the future, we will investigate other
graph queries"; this module collects the ones that fall out of the
representation with no decompression:

* exact degree vector (recovered from super-edge sizes plus
  corrections — no adjacency expansion);
* common-neighbor and Jaccard queries between node pairs (built on
  the Algorithm 6 neighbor index);
* degree distribution, for workload characterisation.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import Representation
from repro.queries.neighbors import SummaryNeighborIndex

__all__ = [
    "degree_vector",
    "degree_distribution",
    "common_neighbors",
    "jaccard_similarity",
    "top_degree_nodes",
]


def degree_vector(representation: Representation) -> np.ndarray:
    """Exact degree of every node, computed from ``(S, C)`` alone.

    Runs in ``O(|P| + |E| + |C|)`` — proportional to the summary, not
    to the graph: each super-edge contributes the partner side's size
    to every member, and corrections adjust by one.
    """
    degrees = np.zeros(representation.n, dtype=np.int64)
    for su, sv in representation.summary_edges:
        members_u = representation.supernodes[su]
        if su == sv:
            degrees[members_u] += len(members_u) - 1
        else:
            members_v = representation.supernodes[sv]
            degrees[members_u] += len(members_v)
            degrees[members_v] += len(members_u)
    for u, v in representation.additions:
        degrees[u] += 1
        degrees[v] += 1
    for u, v in representation.removals:
        degrees[u] -= 1
        degrees[v] -= 1
    return degrees


def degree_distribution(representation: Representation) -> dict[int, int]:
    """Histogram of :func:`degree_vector`."""
    values, counts = np.unique(degree_vector(representation), return_counts=True)
    return {int(d): int(c) for d, c in zip(values, counts)}


def common_neighbors(
    index: SummaryNeighborIndex, u: int, v: int
) -> set[int]:
    """Exact common neighbor set of ``u`` and ``v``."""
    return index.neighbors(u) & index.neighbors(v)


def jaccard_similarity(index: SummaryNeighborIndex, u: int, v: int) -> float:
    """Exact Jaccard similarity of two nodes' neighborhoods."""
    nu = index.neighbors(u)
    nv = index.neighbors(v)
    union = len(nu | nv)
    if union == 0:
        return 0.0
    return len(nu & nv) / union


def top_degree_nodes(
    representation: Representation, count: int
) -> list[tuple[int, int]]:
    """The ``count`` highest-degree nodes as ``(node, degree)`` pairs,
    ties broken by node id."""
    if count < 0:
        raise ValueError("count must be non-negative")
    degrees = degree_vector(representation)
    order = np.lexsort((np.arange(len(degrees)), -degrees))
    return [(int(node), int(degrees[node])) for node in order[:count]]
