"""Query processing on summaries (Section 6.6)."""

from repro.queries.analytics import (
    common_neighbors,
    degree_distribution,
    degree_vector,
    jaccard_similarity,
    top_degree_nodes,
)
from repro.queries.neighbors import SummaryNeighborIndex, neighbor_query
from repro.queries.traversal import (
    bfs_distances,
    connected_components,
    num_connected_components,
    shortest_path,
)
from repro.queries.pagerank import (
    SummaryPageRank,
    pagerank_input_graph,
    pagerank_reference,
    pagerank_summary,
)

__all__ = [
    "common_neighbors",
    "degree_distribution",
    "degree_vector",
    "jaccard_similarity",
    "top_degree_nodes",
    "bfs_distances",
    "connected_components",
    "num_connected_components",
    "shortest_path",
    "SummaryNeighborIndex",
    "neighbor_query",
    "SummaryPageRank",
    "pagerank_input_graph",
    "pagerank_reference",
    "pagerank_summary",
]
