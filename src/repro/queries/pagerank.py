"""PageRank on the input graph vs. on the summary (Section 6.6).

Equation 8 defines the iteration on the input graph:

    PR_0(x) = 1
    PR_t(x) = (1 - d) + d * sum over y in N_x of PR_{t-1}(y) / |N_y|

Algorithm 7 evaluates the same recurrence *on the representation*:
per-super-node mass ``A_u`` is aggregated once, summed over
super-edges into ``B_u``, broadcast back to members, and finally
adjusted by the corrections.  Its running time is
``O(T * (|E| + |C|))`` versus ``O(T * m)`` on the input graph, so a
compact summary computes PageRank asymptotically faster — Table 3's
experiment.

Both sides are vectorised with numpy over pre-built index arrays so
the timing comparison in the Table 3 bench measures the algorithmic
difference, not interpreter overhead asymmetry.  A pure-Python
reference (:func:`pagerank_reference`) pins down the exact semantics
for tests, including the isolated-node convention (zero-degree nodes
contribute no mass).
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = [
    "pagerank_reference",
    "pagerank_input_graph",
    "SummaryPageRank",
    "pagerank_summary",
]


def pagerank_reference(
    graph: Graph, damping: float = 0.85, iterations: int = 20
) -> list[float]:
    """Literal Equation 8, pure Python; the testing oracle."""
    ranks = [1.0] * graph.n
    adjacency = graph.adjacency()
    for _ in range(iterations):
        contribution = [
            damping * ranks[y] / len(adjacency[y]) if adjacency[y] else 0.0
            for y in range(graph.n)
        ]
        ranks = [
            (1.0 - damping) + sum(contribution[y] for y in adjacency[x])
            for x in range(graph.n)
        ]
    return ranks


def pagerank_input_graph(
    graph: Graph, damping: float = 0.85, iterations: int = 20
) -> np.ndarray:
    """Equation 8 vectorised over the CSR adjacency (the baseline side
    of Table 3)."""
    n = graph.n
    if n == 0:
        return np.zeros(0)
    indptr, indices = graph.csr()
    degrees = graph.degrees().astype(np.float64)
    safe_degrees = np.where(degrees > 0, degrees, 1.0)
    ranks = np.ones(n)
    has_neighbors = np.diff(indptr) > 0
    nonempty = np.flatnonzero(has_neighbors)
    starts = indptr[nonempty]
    for _ in range(iterations):
        contribution = damping * ranks / safe_degrees
        contribution[degrees == 0] = 0.0
        sums = np.zeros(n)
        if len(indices):
            sums[nonempty] = np.add.reduceat(contribution[indices], starts)
        ranks = (1.0 - damping) + sums
    return ranks


class SummaryPageRank:
    """Algorithm 7 with the index arrays prebuilt.

    Build once per representation, then call :meth:`run` for any
    damping/iteration setting.  The self-super-edge case (all-pairs
    inside one super-node) subtracts each member's own contribution,
    which the flat cartesian-product semantics requires but the
    paper's pseudocode leaves implicit.
    """

    def __init__(self, representation: Representation):
        self._rep = representation
        n = representation.n
        # Dense renumbering of super-nodes.
        ids = sorted(representation.supernodes)
        self._index_of = {sid: i for i, sid in enumerate(ids)}
        self._num_super = len(ids)
        self._membership = np.zeros(n, dtype=np.int64)
        for sid, members in representation.supernodes.items():
            self._membership[members] = self._index_of[sid]
        # Super-edges as (src, dst) index arrays, both directions;
        # self-edges broadcast to members with self-exclusion.
        src, dst = [], []
        self._self_loop = np.zeros(self._num_super, dtype=bool)
        for su, sv in representation.summary_edges:
            if su == sv:
                self._self_loop[self._index_of[su]] = True
            else:
                iu, iv = self._index_of[su], self._index_of[sv]
                src.extend((iu, iv))
                dst.extend((iv, iu))
        self._edge_src = np.asarray(src, dtype=np.int64)
        self._edge_dst = np.asarray(dst, dtype=np.int64)
        self._plus_x, self._plus_y = _correction_arrays(
            representation.additions
        )
        self._minus_x, self._minus_y = _correction_arrays(
            representation.removals
        )
        # True degrees are needed for the contribution denominators;
        # recover them from the representation itself so no access to
        # the original graph is required (the summary is self-contained).
        from repro.queries.analytics import degree_vector

        self._degrees = degree_vector(representation).astype(np.float64)

    def run(
        self, damping: float = 0.85, iterations: int = 20
    ) -> np.ndarray:
        """Run Algorithm 7 and return the final rank vector."""
        rep = self._rep
        n = rep.n
        if n == 0:
            return np.zeros(0)
        degrees = self._degrees
        safe_degrees = np.where(degrees > 0, degrees, 1.0)
        membership = self._membership
        ranks = np.ones(n)
        for _ in range(iterations):
            contribution = damping * ranks / safe_degrees
            contribution[degrees == 0] = 0.0
            # Line 4: per-super-node aggregated mass A_u.
            mass = np.bincount(
                membership, weights=contribution, minlength=self._num_super
            )
            # Lines 5-7: B_u over super-edges, broadcast to members.
            received = np.zeros(self._num_super)
            if len(self._edge_src):
                np.add.at(received, self._edge_src, mass[self._edge_dst])
            received[self._self_loop] += mass[self._self_loop]
            ranks_new = (1.0 - damping) + received[membership]
            # Self-super-edge: a node must not receive its own mass.
            own_loop = self._self_loop[membership]
            ranks_new[own_loop] -= contribution[own_loop]
            # Lines 8-9: corrections.
            if len(self._plus_x):
                np.add.at(ranks_new, self._plus_x, contribution[self._plus_y])
                np.add.at(ranks_new, self._plus_y, contribution[self._plus_x])
            if len(self._minus_x):
                np.subtract.at(
                    ranks_new, self._minus_x, contribution[self._minus_y]
                )
                np.subtract.at(
                    ranks_new, self._minus_y, contribution[self._minus_x]
                )
            ranks = ranks_new
        return ranks


def pagerank_summary(
    representation: Representation,
    damping: float = 0.85,
    iterations: int = 20,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`SummaryPageRank`."""
    return SummaryPageRank(representation).run(damping, iterations)


def _correction_arrays(
    pairs: set[tuple[int, int]],
) -> tuple[np.ndarray, np.ndarray]:
    if not pairs:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    array = np.asarray(sorted(pairs), dtype=np.int64)
    return array[:, 0], array[:, 1]
