"""Graph traversal answered directly on the summary.

More of Section 6.6's "other graph queries": BFS distances, shortest
paths, and connected components, all served from ``R = (S, C)``
without reconstructing the graph.

The component query exploits the summary's structure rather than
expanding it: a super-edge connects *every* pair across its two
member sets, so whole super-nodes collapse into one component in a
single union — the component sweep runs in
``O(|P| + |E| + |C|)`` instead of ``O(n + m)``.  BFS uses the
Algorithm 6 neighbor index, with the standard summary-side
optimisation that an unvisited super-node's members are enqueued as a
block.
"""

from __future__ import annotations

from collections import deque

from repro.core.encoding import Representation
from repro.queries.neighbors import SummaryNeighborIndex

__all__ = [
    "bfs_distances",
    "shortest_path",
    "connected_components",
    "num_connected_components",
]


def bfs_distances(
    index: SummaryNeighborIndex, source: int
) -> dict[int, int]:
    """Exact BFS hop distances from ``source`` (reachable nodes only)."""
    rep = index.representation
    if not 0 <= source < rep.n:
        raise IndexError(f"node {source} out of range")
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        next_distance = distances[u] + 1
        for v in index.neighbors(u):
            if v not in distances:
                distances[v] = next_distance
                frontier.append(v)
    return distances


def shortest_path(
    index: SummaryNeighborIndex, source: int, target: int
) -> list[int] | None:
    """One shortest path from ``source`` to ``target``, or None.

    Bidirectional-free simple BFS with parent tracking; exact because
    the neighbor index is exact.
    """
    rep = index.representation
    for node in (source, target):
        if not 0 <= node < rep.n:
            raise IndexError(f"node {node} out of range")
    if source == target:
        return [source]
    parent: dict[int, int] = {source: source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in index.neighbors(u):
            if v in parent:
                continue
            parent[v] = u
            if v == target:
                path = [v]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            frontier.append(v)
    return None


def connected_components(representation: Representation) -> list[int]:
    """Component label per node, computed on the summary structure.

    Labels are the smallest node id in each component.  Work is
    proportional to the representation size: each super-node is one
    union-find block, each super-edge and correction one union.
    """
    parent = list(range(representation.n))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra > rb:
                ra, rb = rb, ra
            parent[rb] = ra

    # Removals are bucketed per super-edge so each super-edge can
    # decide locally how its surviving cartesian product connects.
    node_to_supernode = representation.node_to_supernode
    removals_by_edge: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for x, y in representation.removals:
        sx, sy = node_to_supernode[x], node_to_supernode[y]
        key = (sx, sy) if sx <= sy else (sy, sx)
        removals_by_edge.setdefault(key, []).append((x, y))

    for su, sv in representation.summary_edges:
        key = (su, sv) if su <= sv else (sv, su)
        _union_superedge(
            representation.supernodes[su],
            representation.supernodes[sv],
            su == sv,
            removals_by_edge.get(key, []),
            union,
        )

    for x, y in representation.additions:
        union(x, y)

    return [find(x) for x in range(representation.n)]


def _union_superedge(
    members_u: list[int],
    members_v: list[int],
    self_edge: bool,
    removals: list[tuple[int, int]],
    union,
) -> None:
    """Union exactly the connectivity of one super-edge's survivors.

    Case analysis keeps the common paths linear:

    * no removals — the (bi)clique is connected: chain-union everyone;
    * some side has a node untouched by removals — that node is a
      universal anchor (all its pairs survive), so the whole other
      side unions to it and each touched node just needs one
      surviving partner;
    * every node is touched — rare and removal-heavy; fall back to
      enumerating the surviving pairs, which is bounded by the number
      of edges this super-edge reconstructs.
    """
    if not removals:
        anchor = members_u[0]
        for x in members_u[1:]:
            union(anchor, x)
        if not self_edge:
            for y in members_v:
                union(anchor, y)
        return

    removed_of: dict[int, set[int]] = {}
    for x, y in removals:
        removed_of.setdefault(x, set()).add(y)
        removed_of.setdefault(y, set()).add(x)

    if self_edge:
        untouched = [x for x in members_u if x not in removed_of]
        if untouched:
            # Every other member's pair with the anchor survives.
            anchor = untouched[0]
            for x in members_u:
                if x != anchor:
                    union(anchor, x)
            return
        removed_pairs = {tuple(sorted(p)) for p in removals}
        for i, x in enumerate(members_u):
            for y in members_u[i + 1:]:
                if tuple(sorted((x, y))) not in removed_pairs:
                    union(x, y)
        return

    untouched_u = [x for x in members_u if x not in removed_of]
    untouched_v = [y for y in members_v if y not in removed_of]
    if untouched_u or untouched_v:
        if untouched_u:
            anchors, anchor_side, other_side = (
                untouched_u, members_u, members_v
            )
        else:
            anchors, anchor_side, other_side = (
                untouched_v, members_v, members_u
            )
        anchor = anchors[0]
        # All of the other side survives against the anchor.
        for y in other_side:
            union(anchor, y)
        # Touched nodes on the anchor's side need one surviving partner.
        for x in anchor_side:
            if x == anchor or x not in removed_of:
                union(anchor, x)
                continue
            removed = removed_of[x]
            for y in other_side:
                if y not in removed:
                    union(x, y)
                    break
        return

    removed_pairs = {tuple(sorted(p)) for p in removals}
    for x in members_u:
        for y in members_v:
            if tuple(sorted((x, y))) not in removed_pairs:
                union(x, y)


def num_connected_components(representation: Representation) -> int:
    """Number of connected components."""
    return len(set(connected_components(representation)))
