"""Neighbor queries on the summary (Algorithm 6, Section 6.6).

A neighbor query for node ``q`` is answered directly from
``R = (S, C)``: expand the member sets of the super-nodes adjacent to
``q``'s super-node, then apply the corrections that mention ``q``.
The paper shows the expected cost is ``~1.12 * d_avg`` because the
negative corrections are at most 6% of ``m`` in practice.

:class:`SummaryNeighborIndex` pre-buckets the corrections per node so
repeated queries run in time proportional to the answer, which is how
a deployed summary store would serve adjacency.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.encoding import Representation

__all__ = ["neighbor_query", "SummaryNeighborIndex"]


def neighbor_query(representation: Representation, q: int) -> set[int]:
    """Answer one neighbor query by scanning the correction sets.

    This is the literal Algorithm 6, except that the super-edge
    expansion goes through the representation's cached
    :meth:`~repro.core.encoding.Representation.superedge_adjacency`
    instead of scanning every summary edge, so the expansion costs
    time proportional to the answer.  The correction scan is still
    ``O(|C|)`` per call; for repeated queries use
    :class:`SummaryNeighborIndex`, which buckets the corrections too.
    """
    if not 0 <= q < representation.n:
        raise IndexError(f"node {q} out of range")
    supernode = representation.node_to_supernode[q]
    neighbors: set[int] = set()
    for sv in representation.superedge_adjacency().get(supernode, ()):
        neighbors.update(representation.supernodes[sv])
    if (supernode, supernode) in representation.summary_edges:
        neighbors.update(representation.supernodes[supernode])
    additions = {
        y if x == q else x
        for x, y in representation.additions
        if q in (x, y)
    }
    removals = {
        y if x == q else x
        for x, y in representation.removals
        if q in (x, y)
    }
    return (neighbors | additions) - removals - {q}


class SummaryNeighborIndex:
    """Adjacency service over a representation.

    Buckets super-edges per super-node and corrections per node once,
    after which :meth:`neighbors` costs
    ``O(|answer| + |C^-_q|)`` — the expected ``1.12 * d_avg`` bound of
    Section 6.6.
    """

    def __init__(self, representation: Representation):
        self._representation = representation
        # Super-edge buckets are shared with (and cached on) the
        # representation so the one-shot query and every index/engine
        # built on the same summary expand through one structure.
        self._super_adj = representation.superedge_adjacency()
        self._self_edge: set[int] = {
            su for su, sv in representation.summary_edges if su == sv
        }
        self._add: dict[int, list[int]] = defaultdict(list)
        for x, y in representation.additions:
            self._add[x].append(y)
            self._add[y].append(x)
        self._remove: dict[int, set[int]] = defaultdict(set)
        for x, y in representation.removals:
            self._remove[x].add(y)
            self._remove[y].add(x)

    @property
    def representation(self) -> Representation:
        """The representation being served."""
        return self._representation

    def neighbors(self, q: int) -> set[int]:
        """The exact neighbor set of node ``q`` in the original graph."""
        rep = self._representation
        if not 0 <= q < rep.n:
            raise IndexError(f"node {q} out of range")
        supernode = rep.node_to_supernode[q]
        result: set[int] = set()
        for sv in self._super_adj.get(supernode, ()):
            result.update(rep.supernodes[sv])
        if supernode in self._self_edge:
            result.update(rep.supernodes[supernode])
            result.discard(q)
        result.update(self._add.get(q, ()))
        result -= self._remove.get(q, set())
        result.discard(q)
        return result

    def degree(self, q: int) -> int:
        """Degree of node ``q``."""
        return len(self.neighbors(q))

    def work_units(self, q: int) -> int:
        """Operations Algorithm 6 performs for node ``q``.

        ``|answer expanded| + 2 * |C^-_q|`` — the quantity whose
        expectation Section 6.6 bounds by ``1.12 * d_avg``.
        """
        rep = self._representation
        supernode = rep.node_to_supernode[q]
        expanded = sum(
            len(rep.supernodes[sv])
            for sv in self._super_adj.get(supernode, ())
        )
        if supernode in self._self_edge:
            expanded += len(rep.supernodes[supernode]) - 1
        expanded += len(self._add.get(q, ()))
        return expanded + 2 * len(self._remove.get(q, ()))
