"""Summarization algorithms: the paper's Mags / Mags-DM and all baselines."""

from repro.algorithms.base import (
    PhaseTimer,
    SummaryResult,
    Summarizer,
    TimeLimitExceeded,
)
from repro.algorithms.greedy import GreedySummarizer
from repro.algorithms.ldme import LDMESummarizer
from repro.algorithms.mags import MagsSummarizer
from repro.algorithms.mags_dm import MagsDMSummarizer
from repro.algorithms.randomized import RandomizedSummarizer
from repro.algorithms.slugger import SluggerSummarizer
from repro.algorithms.sweg import SWeGSummarizer

__all__ = [
    "PhaseTimer",
    "SummaryResult",
    "Summarizer",
    "TimeLimitExceeded",
    "GreedySummarizer",
    "LDMESummarizer",
    "MagsSummarizer",
    "MagsDMSummarizer",
    "RandomizedSummarizer",
    "SluggerSummarizer",
    "SWeGSummarizer",
]
