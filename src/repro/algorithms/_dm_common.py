"""Shared machinery for the divide-and-merge family (SWeG, LDME,
Slugger's merge phase, Mags-DM).

All four algorithms iterate: divide the live super-nodes into groups
by (variants of) MinHash, then merge similar pairs within each group
when the saving clears the iteration's threshold.  The group data
model and the Super-Jaccard merge loop live here so the baselines
share one tested implementation; Mags-DM overrides the similarity,
selection and threshold pieces (its Merging Strategies 1-3).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Sequence

import numpy as np

from repro.core.minhash import MinHashSignatures, super_jaccard
from repro.core.supernodes import SuperNodePartition

__all__ = [
    "divide_by_single_hash",
    "divide_recursive",
    "merge_group_superjaccard",
    "MergeRecorder",
]

# A callable invoked after every merge with (survivor, absorbed); used
# by Slugger to record its hierarchy and by signatures to fold columns.
MergeRecorder = Callable[[int, int], None]


def divide_by_single_hash(
    roots: Sequence[int], signatures: MinHashSignatures, row: int
) -> list[list[int]]:
    """SWeG's dividing: group roots by one MinHash value (Section 2.4).

    Singleton groups are dropped — nothing can merge inside them.
    """
    buckets: dict[int, list[int]] = defaultdict(list)
    sig_row = signatures.sig[row]
    for root in roots:
        buckets[int(sig_row[root])].append(root)
    return [group for group in buckets.values() if len(group) > 1]


def divide_recursive(
    roots: Sequence[int],
    signatures: MinHashSignatures,
    row_order: Sequence[int],
    max_group_size: int,
) -> list[list[int]]:
    """Mags-DM's dividing strategy (Section 4.1).

    Groups by the first hash function in ``row_order``; any group
    larger than ``max_group_size`` is recursively re-divided with the
    next function, up to ``len(row_order)`` levels (the paper limits
    the recursion depth to 10).  Returns only groups of size >= 2.
    """
    final: list[list[int]] = []

    def split(group: list[int], depth: int) -> None:
        if len(group) <= 1:
            return
        if len(group) <= max_group_size or depth >= len(row_order):
            final.append(group)
            return
        sig_row = signatures.sig[row_order[depth]]
        buckets: dict[int, list[int]] = defaultdict(list)
        for root in group:
            buckets[int(sig_row[root])].append(root)
        if len(buckets) == 1:
            # The hash cannot distinguish these roots; stop early.
            final.append(group)
            return
        for sub in buckets.values():
            split(sub, depth + 1)

    split(list(roots), 0)
    return final


def merge_group_superjaccard(
    partition: SuperNodePartition,
    signatures: MinHashSignatures,
    group: list[int],
    threshold: float,
    rng: random.Random,
    on_merge: MergeRecorder | None = None,
) -> int:
    """SWeG's merging phase on one group (Section 2.4).

    Repeatedly removes a random super-node ``u`` from the group, finds
    the member ``v`` with the highest Super-Jaccard similarity to
    ``u``, and merges when ``s(u, v) >= threshold``; the merged
    super-node stays in the group.  Returns the number of merges.
    """
    group = list(group)
    merges = 0
    while len(group) >= 2:
        pick = rng.randrange(len(group))
        u = group[pick]
        group[pick] = group[-1]
        group.pop()
        best_v = -1
        best_sim = -1.0
        for v in group:
            sim = super_jaccard(partition, u, v)
            if sim > best_sim:
                best_sim, best_v = sim, v
        if best_v < 0:
            continue
        if partition.saving(u, best_v) >= threshold:
            w = partition.merge(u, best_v)
            absorbed = best_v if w == u else u
            signatures.merge(w, absorbed)
            if on_merge is not None:
                on_merge(w, absorbed)
            merges += 1
            group[group.index(best_v)] = w
    return merges


def shuffled_rows(h: int, rng: random.Random) -> list[int]:
    """A random permutation of signature row indices (dividing phase)."""
    rows = list(range(h))
    rng.shuffle(rows)
    return rows


def group_similarities(
    signatures: MinHashSignatures, u: int, group: Sequence[int]
) -> np.ndarray:
    """``mh(u, w)`` for every ``w`` in ``group`` in one vector pass."""
    cols = signatures.sig[:, list(group)]
    return (cols == signatures.sig[:, [u]]).mean(axis=0)
