"""Navlakha et al.'s Randomized baseline.

Alongside Greedy, the original graph-summarization paper [30] proposed
a cheaper randomized variant (mentioned in Section 7 of the Mags
paper): repeatedly pick a random unfinished super-node ``u``, merge it
with its best 2-hop partner if that merge has positive saving, and
retire ``u`` otherwise.  It trades compactness for speed and sits
between Greedy and the divide-and-merge family, so it makes a useful
extra reference point in ablation benches.
"""

from __future__ import annotations

import random

from repro.algorithms.base import PhaseTimer, Summarizer
from repro.algorithms.greedy import two_hop_pairs
from repro.core.encoding import Representation, encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = ["RandomizedSummarizer"]

_EPS = 1e-12


class RandomizedSummarizer(Summarizer):
    """The randomized greedy variant of Navlakha et al. [30]."""

    name = "Randomized"

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        rng = random.Random(self.seed)
        partition = SuperNodePartition(graph)

        timer.start("merge")
        unfinished = set(graph.nodes())
        num_merges = 0
        picks = 0
        while unfinished:
            u = rng.choice(tuple(unfinished))
            candidates = two_hop_pairs(partition, u)
            best_v = -1
            best_s = _EPS
            for v in candidates:
                s = partition.saving(u, v)
                if s > best_s:
                    best_s, best_v = s, v
            if best_v < 0:
                unfinished.discard(u)
            else:
                w = partition.merge(u, best_v)
                num_merges += 1
                dead = best_v if w == u else u
                unfinished.discard(dead)
                unfinished.add(w)
            picks += 1
            if picks % 512 == 0:
                timer.progress(
                    "progress",
                    picks=picks,
                    merges=num_merges,
                    unfinished=len(unfinished),
                )
            timer.check_budget()
        timer.progress("merge_done", picks=picks, merges=num_merges)

        timer.start("output")
        return encode(partition), num_merges
