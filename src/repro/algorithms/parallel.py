"""Parallel execution paths (Section 5).

The paper parallelises both algorithms with OpenMP on 40 cores.  In
CPython, shared-memory threads cannot deliver CPU speedup for this
workload (the GIL serialises the interpreter), so this module plays
two roles, both documented as substitutions in DESIGN.md:

* It really runs the *parallel code paths*: candidate generation is
  partitioned into per-worker node chunks (`map_chunks`), and Mags-DM
  merging processes disjoint groups through a thread pool with a
  coarse merge lock (`merge_groups_parallel`) — exactly the structure
  of the paper's Section 5 implementation (dividing produces disjoint
  groups whose merges do not conflict; shared structures are
  synchronised).
* For Figure 13 it provides a deterministic *work-partition speedup
  model* (`partition_speedup`): groups are packed onto ``p`` workers
  with the LPT (longest-processing-time) heuristic, and speedup is
  total work divided by the makespan plus a per-round synchronisation
  charge.  This is the quantity a real multicore run measures, minus
  interpreter noise, and it reproduces the paper's observations: the
  group-parallel Mags-DM scales well; Mags's batch merges scale worse
  because its merge batches are serialised by connectivity conflicts.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.algorithms.base import active_tracer

__all__ = [
    "map_chunks",
    "merge_groups_parallel",
    "lpt_partition",
    "partition_speedup",
]

T = TypeVar("T")
R = TypeVar("R")


def map_chunks(
    items: list[T],
    workers: int,
    fn: Callable[[list[T], int], R],
) -> list[R]:
    """Apply ``fn(chunk, offset)`` to ``workers`` contiguous chunks.

    The chunking is deterministic, so parallel candidate generation
    produces the same pairs as serial generation modulo per-chunk RNG
    streams (which are seeded by the offset).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not items:
        return []
    workers = min(workers, len(items))
    chunk_size = (len(items) + workers - 1) // workers
    chunks = [
        (items[start:start + chunk_size], start)
        for start in range(0, len(items), chunk_size)
    ]
    tracer = active_tracer()
    if tracer is not None:
        # Worker threads have their own span stacks, so the chunk
        # spans attach to the caller's span explicitly.
        parent = tracer.current()
        inner = fn

        def fn(chunk, offset, _inner=inner):
            span = tracer.start_span(
                "parallel:chunk", parent=parent,
                offset=offset, items=len(chunk),
            )
            try:
                return _inner(chunk, offset)
            finally:
                tracer.end_span(span)

    if workers == 1:
        return [fn(chunk, offset) for chunk, offset in chunks]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, chunk, offset) for chunk, offset in chunks]
        return [future.result() for future in futures]


def merge_groups_parallel(
    summarizer,
    partition,
    signatures,
    groups: list[list[int]],
    threshold: float,
    rng,
    workers: int,
) -> int:
    """Run Mags-DM group merging through a thread pool.

    Groups are disjoint sets of super-nodes, but merges mutate the
    *shared* partition (third-party weight tables of common neighbors),
    so a coarse lock serialises the mutation section — the same
    synchronisation the paper describes for updates of ``P`` and ``W``
    (Section 5.2).  Each group gets an independent RNG stream derived
    from the shared one so results are deterministic per seed
    regardless of scheduling.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    lock = threading.Lock()
    seeds = [rng.randrange(1 << 62) for _ in groups]
    counts = [0] * len(groups)

    def run_group(index: int) -> None:
        import random as _random

        group_rng = _random.Random(seeds[index])
        with lock:
            counts[index] = summarizer._merge_group(
                partition, signatures, groups[index], threshold, group_rng
            )

    tracer = active_tracer()
    span = (
        tracer.start_span(
            "parallel:merge_groups", groups=len(groups), workers=workers
        )
        if tracer is not None
        else None
    )
    try:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(run_group, range(len(groups))))
    finally:
        if span is not None:
            span.inc("merges", sum(counts))
            tracer.end_span(span)
    return sum(counts)


def lpt_partition(
    work_items: Sequence[float], workers: int
) -> list[list[int]]:
    """Longest-processing-time-first assignment of items to workers.

    Returns, for each worker, the indices of its assigned items.  The
    classic 4/3-approximation for makespan — adequate for modelling a
    static group-parallel schedule.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    assignment: list[list[int]] = [[] for _ in range(workers)]
    loads = [0.0] * workers
    order = sorted(range(len(work_items)), key=lambda i: -work_items[i])
    for index in order:
        target = loads.index(min(loads))
        assignment[target].append(index)
        loads[target] += work_items[index]
    return assignment


def partition_speedup(
    work_items: Sequence[float],
    workers: int,
    sync_overhead: float = 0.0,
    serial_fraction: float = 0.0,
) -> float:
    """Modelled speedup of a static group-parallel round (Figure 13).

    ``T_1`` is the total work; ``T_p`` is the LPT makespan plus a
    synchronisation charge per round plus any serial fraction (Mags's
    serial updates of ``P`` and ``H``; Amdahl).  Returns ``T_1/T_p``.
    """
    total = float(sum(work_items))
    if total == 0.0:
        return 1.0
    if workers == 1:
        return 1.0
    assignment = lpt_partition(work_items, workers)
    makespan = max(
        sum(work_items[i] for i in bucket) for bucket in assignment
    )
    serial = serial_fraction * total
    parallel_time = serial + (makespan - serial_fraction * makespan) + sync_overhead
    if parallel_time <= 0:
        return float(workers)
    return total / parallel_time
