"""Mags: the paper's scalable greedy summarizer (Section 3).

Mags keeps Greedy's high-quality merge order but caps the search
space:

1. **Candidate generation** (Algorithm 2): for each node ``u``, sample
   ``b`` neighbors, union their neighborhoods into an approximate
   2-hop set, score members with the MinHash estimator ``mh(u, v)``
   (Equation 5), and keep the top ``k`` as candidate pairs — at most
   ``k * n`` pairs in total, versus Greedy's ``n * d_avg^2``.
2. **Greedy merge** (Algorithm 3): ``T`` iterations; iteration ``t``
   merges candidate pairs in decreasing saving while the saving clears
   ``omega(t)`` (Equation 6), re-verifying each popped pair's saving
   before committing (savings in the queue may be stale because
   updates are deferred), then refreshes the savings of every
   candidate pair touching the merged neighborhoods.
3. **Output** (Algorithm 4): the shared optimal encoding.

Overall ``O(T * m * (d_avg + log m))`` versus Greedy's
``O(n * d_avg^3 * (d_avg + log m))``.

The ``candidate_method='naive'`` variant implements the exhaustive
top-k-by-exact-saving generation discussed at the start of Section 3.1
and benchmarked in Figure 8 ("Mags (naive CG)").
"""

from __future__ import annotations

import heapq
import random
from typing import Literal

from repro.algorithms.base import (
    PhaseTimer,
    RecordingPartition,
    Summarizer,
    active_fault_injector,
)
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import omega
from repro.graph.graph import Graph

__all__ = ["MagsSummarizer", "CandidatePairs"]

_EPS = 1e-12


class CandidatePairs:
    """The candidate pair set ``CP`` with per-node indexing (Section 5.1).

    Stores each pair under both endpoints so that "every candidate
    pair containing u" (Algorithm 3, line 11) is a dict lookup, and
    keeps the authoritative saving per pair for stale-heap-entry
    detection.
    """

    __slots__ = ("_partners",)

    def __init__(self):
        self._partners: dict[int, dict[int, float]] = {}

    def add(self, u: int, v: int, saving: float) -> None:
        """Insert or update the pair ``(u, v)``."""
        self._partners.setdefault(u, {})[v] = saving
        self._partners.setdefault(v, {})[u] = saving

    def saving(self, u: int, v: int) -> float | None:
        """Stored saving of the pair, or None if absent."""
        return self._partners.get(u, {}).get(v)

    def partners(self, u: int) -> dict[int, float]:
        """All candidate partners of ``u`` (live view; do not mutate)."""
        return self._partners.get(u, {})

    def discard(self, u: int, v: int) -> None:
        """Remove the pair if present."""
        for a, b in ((u, v), (v, u)):
            table = self._partners.get(a)
            if table is not None:
                table.pop(b, None)
                if not table:
                    del self._partners[a]

    def replace_node(self, dead: int, survivor: int) -> list[int]:
        """Re-key every pair touching ``dead`` onto ``survivor``.

        Implements "Replace u and v by w in CP" (Algorithm 3, line 8).
        Returns the partners that were moved.  Moved pairs are seeded
        with the dead pair's old saving purely as a placeholder — that
        value describes a super-node that no longer exists, so callers
        MUST overwrite it with the freshly computed saving before any
        heap entry referencing it can be trusted (see
        :meth:`MagsSummarizer._rekey_after_merge`, which batches the
        recomputation through ``savings_many``).
        """
        table = self._partners.pop(dead, None)
        if table is None:
            return []
        moved: list[int] = []
        for partner, saving in table.items():
            partner_table = self._partners.get(partner)
            if partner_table is not None:
                partner_table.pop(dead, None)
            if partner == survivor:
                continue
            if self.saving(survivor, partner) is None:
                self.add(survivor, partner, saving)
            moved.append(partner)
        return moved

    def __len__(self) -> int:
        return sum(len(t) for t in self._partners.values()) // 2

    def pairs(self) -> list[tuple[int, int]]:
        """All pairs as ``(u, v)`` with ``u < v``."""
        return [
            (u, v)
            for u, table in self._partners.items()
            for v in table
            if u < v
        ]


class MagsSummarizer(Summarizer):
    """The paper's Mags algorithm (Algorithms 1-4).

    Parameters
    ----------
    iterations:
        ``T``, the number of greedy-merge iterations (paper: 50).
    k:
        Candidate pairs kept per node; ``None`` uses the paper's
        default ``min(5 * d_avg, 30)`` (Section 3.4).
    b:
        Neighbors sampled when approximating the 2-hop set (paper: 5).
    h:
        Number of MinHash functions; ``None`` uses the paper's default
        ``min(10 * d_avg, 50)``.
    candidate_method:
        ``'minhash'`` for Algorithm 2, ``'naive'`` for the exhaustive
        exact-saving generation (Figure 8's ablation).
    workers:
        Parallelism degree (Section 5.1).  Candidate generation is
        chunked per worker; with ``workers > 1`` the greedy merge also
        switches to the paper's batch scheme — each iteration's
        qualifying pairs are grouped by connectivity and the groups
        are processed concurrently (merges of disjoint super-node sets
        cannot conflict), with the shared partition updates behind a
        lock.  The batch scheme relaxes the strict global merge order
        *within* an iteration, exactly as the paper's parallel Mags
        does; thresholds still gate every merge.
    """

    name = "Mags"

    def __init__(
        self,
        iterations: int = 50,
        k: int | None = None,
        b: int = 5,
        h: int | None = None,
        candidate_method: Literal["minhash", "naive"] = "minhash",
        workers: int = 1,
        seed: int = 0,
        time_limit: float | None = None,
    ):
        super().__init__(seed=seed, time_limit=time_limit)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if b < 1:
            raise ValueError("b must be >= 1")
        if candidate_method not in ("minhash", "naive"):
            raise ValueError(f"unknown candidate_method {candidate_method!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.iterations = iterations
        self.k = k
        self.b = b
        self.h = h
        self.candidate_method = candidate_method
        self.workers = workers
        #: Per-iteration lists of merged (root, root) pairs from the
        #: last run; the Figure 13 speedup model derives Mags's merge
        #: batches (connectivity-conflict groups, Section 5.1) from it.
        self.last_iteration_merges: list[list[tuple[int, int]]] = []

    def params(self):
        return {
            "seed": self.seed,
            "T": self.iterations,
            "k": self.k,
            "b": self.b,
            "h": self.h,
            "candidate_method": self.candidate_method,
            "workers": self.workers,
        }

    # ------------------------------------------------------------------
    # Parameter defaults (Section 3.4)
    # ------------------------------------------------------------------
    def _resolved_k(self, graph: Graph) -> int:
        if self.k is not None:
            return self.k
        return max(1, min(int(5 * graph.avg_degree), 30))

    def _resolved_h(self, graph: Graph) -> int:
        if self.h is not None:
            return self.h
        return max(1, min(int(10 * graph.avg_degree), 50))

    # ------------------------------------------------------------------
    # Main pipeline (Algorithm 1)
    # ------------------------------------------------------------------
    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        partition = (
            RecordingPartition(graph)
            if self._ckpt_store is not None
            else SuperNodePartition(graph)
        )

        checkpoint = self._resume_checkpoint()
        if checkpoint is not None:
            timer.start("restore")
            candidates, start_t, base_merges = self._restore_state(
                checkpoint.state, partition
            )
        else:
            timer.start("candidate_generation")
            candidates = self._generate_candidates(graph, partition, timer)
            start_t, base_merges = 1, 0

        timer.start("greedy_merge")
        num_merges = base_merges + self._greedy_merge(
            partition, candidates, timer,
            start_t=start_t, base_merges=base_merges,
        )

        timer.start("output")
        return encode(partition), num_merges

    # ------------------------------------------------------------------
    # Checkpoint/resume (see docs/resilience.md)
    # ------------------------------------------------------------------
    def _checkpoint_state(
        self,
        t: int,
        partition: RecordingPartition,
        candidates: CandidatePairs,
        num_merges: int,
    ) -> dict:
        """JSON-serialisable snapshot after iteration ``t``."""
        return {
            "algorithm": self.name,
            "iteration": t,
            "merge_log": [list(pair) for pair in partition.merge_log],
            "candidates": [
                [u, v, candidates.saving(u, v)]
                for u, v in sorted(candidates.pairs())
            ],
            "num_merges": num_merges,
        }

    def _restore_state(
        self, state: dict, partition: RecordingPartition
    ) -> tuple[CandidatePairs, int, int]:
        """Rebuild partition and candidate set from a snapshot;
        returns ``(candidates, next_iteration, num_merges)``.

        The merge log is replayed argument-for-argument to reproduce
        the exact root identities (see :class:`RecordingPartition`);
        stored candidate pairs are then valid live roots again.  The
        greedy merge re-verifies every popped pair's fresh saving, so
        the restored heap never commits a stale merge.
        """
        if state.get("algorithm") != self.name:
            raise ValueError(
                f"checkpoint is for {state.get('algorithm')!r}, "
                f"not {self.name!r}"
            )
        for u, v in state["merge_log"]:
            partition.merge(u, v)
        candidates = CandidatePairs()
        for u, v, saving in state["candidates"]:
            if candidates.saving(u, v) is None:
                candidates.add(u, v, saving)
        return candidates, state["iteration"] + 1, state["num_merges"]

    # ------------------------------------------------------------------
    # Phase 1: candidate generation (Algorithm 2)
    # ------------------------------------------------------------------
    def _generate_candidates(
        self,
        graph: Graph,
        partition: SuperNodePartition,
        timer: PhaseTimer,
    ) -> CandidatePairs:
        if self.candidate_method == "naive":
            pair_lists = self._naive_candidates(graph, partition)
        else:
            pair_lists = self._minhash_candidates(graph)
        # Deduplicate, then score every candidate pair in one batched
        # kernel call (sorted so pairs sharing an endpoint group).
        seen: set[tuple[int, int]] = set()
        unique: list[tuple[int, int]] = []
        for pair in pair_lists:
            if pair not in seen:
                seen.add(pair)
                unique.append(pair)
        unique.sort()
        unique = timer.clamp_candidates(unique)
        candidates = CandidatePairs()
        for (u, v), s in zip(unique, partition.savings_many(unique)):
            candidates.add(u, v, s)
        timer.progress(
            "candidates_generated",
            pairs=len(candidates),
            method=self.candidate_method,
        )
        timer.check_budget()
        return candidates

    def _minhash_candidates(self, graph: Graph) -> list[tuple[int, int]]:
        """Algorithm 2: sampled 2-hop + MinHash top-k per node."""
        k = self._resolved_k(graph)
        h = self._resolved_h(graph)
        signatures = MinHashSignatures(graph, h, self.seed)
        adjacency = graph.adjacency()
        rng = random.Random(self.seed)
        nodes = list(graph.nodes())
        if self.workers > 1:
            from repro.algorithms.parallel import map_chunks

            chunks = map_chunks(
                nodes,
                self.workers,
                lambda chunk, offset: self._candidates_for_nodes(
                    chunk, adjacency, signatures, k,
                    random.Random(self.seed * 1_000_003 + offset),
                ),
            )
            return [pair for chunk in chunks for pair in chunk]
        return self._candidates_for_nodes(nodes, adjacency, signatures, k, rng)

    def _candidates_for_nodes(
        self,
        nodes: list[int],
        adjacency,
        signatures: MinHashSignatures,
        k: int,
        rng: random.Random,
    ) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        sig = signatures.sig
        h = signatures.h
        for u in nodes:
            neighbors = adjacency[u]
            if not neighbors:
                continue
            neighbor_list = list(neighbors)
            if len(neighbor_list) > self.b:
                sampled = rng.sample(neighbor_list, self.b)
            else:
                sampled = neighbor_list
            two_hop = set(neighbors)
            for w in sampled:
                two_hop |= adjacency[w]
            two_hop.discard(u)
            if not two_hop:
                continue
            # Score all of 2Hop with mh(u, .) in one vectorised pass.
            candidates = list(two_hop)
            sims = (sig[:, candidates] == sig[:, [u]]).sum(axis=0)
            if len(candidates) > k:
                top = heapq.nlargest(
                    k, range(len(candidates)), key=lambda i: (sims[i], -candidates[i])
                )
            else:
                top = range(len(candidates))
            for i in top:
                if sims[i] == 0 and h > 1:
                    continue  # no signature overlap: not promising
                v = candidates[i]
                pairs.append((u, v) if u < v else (v, u))
        return pairs

    def _naive_candidates(
        self, graph: Graph, partition: SuperNodePartition
    ) -> list[tuple[int, int]]:
        """The exhaustive generation of Section 3.1's opening.

        For each node, computes the exact saving against *every* 2-hop
        neighbor and keeps the top ``k`` — correct but
        ``O(n * d_avg^2 * (d_avg + log k))``.
        """
        k = self._resolved_k(graph)
        adjacency = graph.adjacency()
        pairs: list[tuple[int, int]] = []
        for u in graph.nodes():
            two_hop: set[int] = set(adjacency[u])
            for w in adjacency[u]:
                two_hop |= adjacency[w]
            two_hop.discard(u)
            vs = list(two_hop)
            scored = list(
                zip(partition.savings_many([(u, v) for v in vs]), vs)
            )
            top = heapq.nlargest(k, scored, key=lambda sv: (sv[0], -sv[1]))
            for s, v in top:
                if s > _EPS:
                    pairs.append((u, v) if u < v else (v, u))
        return pairs

    # ------------------------------------------------------------------
    # Phase 2: greedy merge (Algorithm 3)
    # ------------------------------------------------------------------
    def _greedy_merge(
        self,
        partition: SuperNodePartition,
        candidates: CandidatePairs,
        timer: PhaseTimer,
        start_t: int = 1,
        base_merges: int = 0,
    ) -> int:
        heap: list[tuple[float, int, int]] = [
            (-candidates.saving(u, v), u, v) for u, v in candidates.pairs()
        ]
        heapq.heapify(heap)
        num_merges = 0
        self.last_iteration_merges = []
        injector = active_fault_injector()

        for t in range(start_t, self.iterations + 1):
            if timer.out_of_budget:
                break  # anytime stop: the partition is valid as-is
            if injector is not None:
                injector.before("summarize:iteration")
            threshold = omega(t, self.iterations)
            merged_roots: set[int] = set()
            iteration_merges: list[tuple[int, int]] = []
            self.last_iteration_merges.append(iteration_merges)

            if self.workers > 1:
                batch_merges = self._batch_merge_iteration(
                    partition, candidates, heap, threshold,
                    merged_roots, iteration_merges,
                )
                num_merges += batch_merges
                timer.note_merges(batch_merges)
                self._refresh_affected(
                    partition, candidates, heap, merged_roots
                )
                timer.progress(
                    "iteration",
                    t=t,
                    threshold=round(threshold, 6),
                    merges=len(iteration_merges),
                    total_merges=num_merges,
                )
                timer.check_budget()
                self._maybe_checkpoint(
                    t,
                    lambda: self._checkpoint_state(
                        t, partition, candidates, base_merges + num_merges
                    ),
                )
                continue

            saving_accrued = 0.0
            # -- First part: merge pairs in decreasing stored saving --
            while heap:
                neg_s, u, v = heap[0]
                stored = candidates.saving(u, v)
                if stored is None or stored != -neg_s:
                    heapq.heappop(heap)  # stale entry
                    continue
                if stored < threshold:
                    break  # all remaining pairs are below omega(t)
                heapq.heappop(heap)
                fresh = partition.saving(u, v)
                if fresh >= threshold:
                    w = partition.merge(u, v)
                    dead = v if w == u else u
                    self._rekey_after_merge(partition, candidates, heap, w, dead)
                    merged_roots.add(w)
                    merged_roots.discard(dead)
                    iteration_merges.append((u, v))
                    num_merges += 1
                    timer.note_merges(1)
                    saving_accrued += fresh
                elif fresh > _EPS:
                    # Stale optimistic saving: record the renewed value;
                    # the pair stays for later (lower-threshold) rounds.
                    candidates.add(u, v, fresh)
                    heapq.heappush(heap, (-fresh, u, v))
                else:
                    candidates.discard(u, v)
                timer.check_budget()
                if timer.out_of_budget:
                    break  # anytime stop mid-iteration; partition valid

            # -- Second part: refresh savings around the merges --
            self._refresh_affected(partition, candidates, heap, merged_roots)
            timer.progress(
                "iteration",
                t=t,
                threshold=round(threshold, 6),
                merges=len(iteration_merges),
                total_merges=num_merges,
                saving_accrued=round(saving_accrued, 6),
            )
            timer.check_budget()
            self._maybe_checkpoint(
                t,
                lambda: self._checkpoint_state(
                    t, partition, candidates, base_merges + num_merges
                ),
            )
        return num_merges

    @staticmethod
    def _rekey_after_merge(
        partition: SuperNodePartition,
        candidates: CandidatePairs,
        heap: list[tuple[float, int, int]],
        survivor: int,
        dead: int,
    ) -> list[int]:
        """Re-key the dead root's candidate pairs and re-score them.

        The savings stored under the dead root describe a super-node
        that no longer exists, so seeding the moved pairs (or the heap)
        with them would order the queue by phantom values — the bug
        this method exists to prevent.  Every moved pair is re-scored
        against the *current* partition in one ``savings_many`` batch,
        so the heap entries pushed here match the authoritative
        candidate table exactly.
        """
        moved = candidates.replace_node(dead, survivor)
        if moved:
            fresh_savings = partition.savings_many(
                [(survivor, partner) for partner in moved]
            )
            for partner, fresh in zip(moved, fresh_savings):
                candidates.add(survivor, partner, fresh)
                heapq.heappush(heap, (-fresh, survivor, partner))
        return moved

    @staticmethod
    def _refresh_affected(
        partition: SuperNodePartition,
        candidates: CandidatePairs,
        heap: list[tuple[float, int, int]],
        merged_roots: set[int],
    ) -> None:
        """Refresh savings of every candidate pair the merges touched.

        All affected pairs are gathered first and re-scored in a
        single ``savings_many`` batch (grouped by the shared endpoint),
        then applied in the same order the scalar loop used.
        """
        affected: set[int] = set()
        for w in merged_roots:
            affected.add(w)
            affected.update(partition.weights(w))
        pair_list: list[tuple[int, int]] = []
        for x in affected:
            pair_list.extend((x, y) for y in candidates.partners(x))
        if not pair_list:
            return
        for (x, y), fresh in zip(
            pair_list, partition.savings_many(pair_list)
        ):
            if candidates.saving(x, y) != fresh:
                candidates.add(x, y, fresh)
                heapq.heappush(heap, (-fresh, x, y))

    def _batch_merge_iteration(
        self,
        partition: SuperNodePartition,
        candidates: CandidatePairs,
        heap: list[tuple[float, int, int]],
        threshold: float,
        merged_roots: set[int],
        iteration_merges: list[tuple[int, int]],
    ) -> int:
        """One iteration of the paper's parallel merge scheme (§5.1).

        Pops every pair whose stored saving clears the threshold,
        groups them by connectivity (pairs sharing a super-node
        conflict and must serialise), then processes the groups
        through a thread pool — each group replays its pairs in
        decreasing stored saving with the usual fresh-saving
        re-verification, holding the shared-partition lock across the
        verify-and-merge step.
        """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        qualifying: list[tuple[float, int, int]] = []
        while heap:
            neg_s, u, v = heap[0]
            stored = candidates.saving(u, v)
            if stored is None or stored != -neg_s:
                heapq.heappop(heap)
                continue
            if stored < threshold:
                break
            heapq.heappop(heap)
            qualifying.append((stored, u, v))
        if not qualifying:
            return 0

        # Connectivity grouping via union-find over the pair endpoints.
        parent: dict[int, int] = {}

        def find(x: int) -> int:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for __, u, v in qualifying:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        groups: dict[int, list[tuple[float, int, int]]] = {}
        for entry in qualifying:
            groups.setdefault(find(entry[1]), []).append(entry)

        lock = threading.Lock()
        merges = 0

        def process(group: list[tuple[float, int, int]]) -> int:
            local_merges = 0
            for stored, u, v in sorted(group, reverse=True):
                with lock:
                    if candidates.saving(u, v) is None:
                        continue  # re-keyed away by an earlier merge
                    fresh = partition.saving(u, v)
                    if fresh >= threshold:
                        w = partition.merge(u, v)
                        dead = v if w == u else u
                        self._rekey_after_merge(
                            partition, candidates, heap, w, dead
                        )
                        merged_roots.add(w)
                        merged_roots.discard(dead)
                        iteration_merges.append((u, v))
                        local_merges += 1
                    elif fresh > _EPS:
                        candidates.add(u, v, fresh)
                        heapq.heappush(heap, (-fresh, u, v))
                    else:
                        candidates.discard(u, v)
            return local_merges

        group_lists = list(groups.values())
        if len(group_lists) == 1:
            return process(group_lists[0])
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(group_lists))
        ) as pool:
            merges = sum(pool.map(process, group_lists))
        return merges
