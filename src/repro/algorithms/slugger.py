"""Slugger: Lee et al.'s hierarchical summarization baseline [25].

Slugger generalises the flat summary model: super-nodes may contain
other super-nodes, a representation is ``R_H = (S, P+, P-, H)``, and
its compactness measure is ``(|P+| + |P-| + |H|) / m`` (Section 6.1 of
the Mags paper).  Hierarchy pays off when a graph contains nested
dense structure — the paper's Section 6.2 highlights Hollywood-2011,
whose 2208-clique plus surrounding hierarchy lets Slugger beat even
Mags on that one dataset.

This reproduction implements the hierarchical model in two stages:

1. a SWeG-style divide-and-merge loop (``theta(t)`` threshold) that
   records the full merge *dendrogram*;
2. a bottom-up dynamic program over each super-node's dendrogram that
   decides, per subtree, whether its internal edges are cheapest as
   (a) plus-corrections, (b) one self super-edge at this level plus
   minus-corrections, or (c) split into the two children's encodings
   plus a cross encoding between the children.  Materialising an
   internal tree node as a super-edge endpoint charges 2 hierarchy
   links (its child containment edges), which is how ``|H|`` is
   counted.

The flat representation (for losslessness checks) is still produced
with the standard optimal encoding; Slugger's own hierarchical cost is
reported in ``SummaryResult.extra_metrics['hierarchical_cost']`` and
``['hierarchical_relative_size']``, matching the paper's use of a
distinct measure for Slugger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algorithms._dm_common import (
    divide_by_single_hash,
    merge_group_superjaccard,
)
from repro.algorithms.base import PhaseTimer, Summarizer
from repro.core import costs
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import theta
from repro.graph.graph import Graph

__all__ = ["SluggerSummarizer", "Dendrogram", "hierarchical_intra_cost"]

#: Hierarchy links charged when an internal dendrogram node is
#: materialised as a super-edge endpoint (its two child links).
_HIERARCHY_CHARGE = 2


@dataclass
class _TreeNode:
    """One dendrogram node; leaves carry a single original node."""

    members: list[int]
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class Dendrogram:
    """Merge forest over the original nodes.

    Starts as ``n`` leaves; :meth:`record` joins the trees of the
    survivor and absorbed roots under a new internal node.
    """

    def __init__(self, n: int):
        self._tree_of_root: dict[int, _TreeNode] = {
            u: _TreeNode(members=[u]) for u in range(n)
        }

    def record(self, survivor: int, absorbed: int) -> None:
        """Record that ``absorbed``'s super-node merged into ``survivor``."""
        left = self._tree_of_root.pop(survivor)
        right = self._tree_of_root.pop(absorbed)
        self._tree_of_root[survivor] = _TreeNode(
            members=left.members + right.members, left=left, right=right
        )

    def tree(self, root: int) -> _TreeNode:
        """The dendrogram of the super-node rooted at ``root``."""
        return self._tree_of_root[root]


def _cross_edges(graph: Graph, small: list[int], large_set: set[int]) -> int:
    """Edges between two disjoint member sets, counted from the smaller."""
    adjacency = graph.adjacency()
    return sum(
        1 for x in small for y in adjacency[x] if y in large_set
    )


def plan_intra_encoding(
    graph: Graph, tree: _TreeNode
) -> tuple[int, dict[int, tuple]]:
    """Plan the hierarchical encoding of one super-node's interior.

    Bottom-up DP over the dendrogram (iterative, to cope with deep
    skewed trees).  Returns ``(cost_estimate, choices)`` where
    ``choices[id(node)]`` is one of

    * ``("plus",)`` — every internal edge as a leaf-level positive;
    * ``("super",)`` — self super-edge at this level + leaf negatives;
    * ``("split", cross_choice)`` — recurse into the children and
      encode the cross edges, where ``cross_choice`` is ``"plus"`` or
      ``"super"``.

    The estimate charges ``_HIERARCHY_CHARGE`` per materialised
    internal node; the exact ``|H|`` of the final structure is
    computed by :class:`~repro.algorithms.hierarchy.HierarchicalRepresentation`.
    """
    # Post-order traversal without recursion.
    order: list[_TreeNode] = []
    stack = [tree]
    while stack:
        node = stack.pop()
        order.append(node)
        if not node.is_leaf:
            stack.append(node.left)
            stack.append(node.right)
    order.reverse()

    best: dict[int, int] = {}  # id(node) -> optimal cost
    intra: dict[int, int] = {}  # id(node) -> internal edge count
    choices: dict[int, tuple] = {}
    for node in order:
        if node.is_leaf:
            best[id(node)] = 0
            intra[id(node)] = 0
            continue
        left, right = node.left, node.right
        if len(left.members) <= len(right.members):
            cross = _cross_edges(graph, left.members, set(right.members))
        else:
            cross = _cross_edges(graph, right.members, set(left.members))
        edges_here = intra[id(left)] + intra[id(right)] + cross
        intra[id(node)] = edges_here

        size = len(node.members)
        pi = costs.potential_self_edges(size)
        # (a) every internal edge as a plus-correction (no hierarchy).
        flat_plus = edges_here
        # (b) self super-edge at this level + minus-corrections + charge.
        flat_super = pi - edges_here + 1 + _HIERARCHY_CHARGE
        # (c) recurse into children, encode the cross edges between them.
        pi_cross = len(left.members) * len(right.members)
        cross_plus = cross
        cross_super = pi_cross - cross + 1 + _HIERARCHY_CHARGE
        if cross == 0:
            cross_cost, cross_choice = 0, "plus"
        elif cross_super < cross_plus:
            cross_cost, cross_choice = cross_super, "super"
        else:
            cross_cost, cross_choice = cross_plus, "plus"
        split = best[id(left)] + best[id(right)] + cross_cost

        options: list[tuple[int, tuple]] = [
            (split, ("split", cross_choice)),
            (flat_plus, ("plus",)),
        ]
        if edges_here:
            options.append((flat_super, ("super",)))
        cost, choice = min(options, key=lambda pair: pair[0])
        best[id(node)] = cost
        choices[id(node)] = choice
    return best[id(tree)], choices


def hierarchical_intra_cost(graph: Graph, tree: _TreeNode) -> int:
    """Cost estimate of :func:`plan_intra_encoding` (convenience)."""
    cost, __ = plan_intra_encoding(graph, tree)
    return cost


def _emit_intra(builder, adjacency, tree: _TreeNode, choices: dict[int, tuple]) -> None:
    """Emit one super-node's interior per the encoding plan."""
    stack = [tree]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        choice = choices[id(node)]
        members = node.members
        member_set = set(members)
        if choice[0] == "plus":
            builder.add_positive_leaf_pairs(
                (x, y)
                for x in members
                for y in adjacency[x]
                if y in member_set and x < y
            )
        elif choice[0] == "super":
            a = builder.node_for(members)
            builder.add_positive(a, a)
            for i, x in enumerate(members):
                for y in members[i + 1:]:
                    if y not in adjacency[x]:
                        builder.add_negative(x, y)
        else:  # ("split", cross_choice)
            left, right = node.left, node.right
            stack.append(left)
            stack.append(right)
            cross_choice = choice[1]
            right_set = set(right.members)
            cross_pairs = [
                (x, y)
                for x in left.members
                for y in adjacency[x]
                if y in right_set
            ]
            if not cross_pairs:
                continue
            if cross_choice == "super":
                a = builder.node_for(left.members)
                b = builder.node_for(right.members)
                builder.add_positive(a, b)
                for x in left.members:
                    for y in right_set - adjacency[x]:
                        builder.add_negative(x, y)
            else:
                builder.add_positive_leaf_pairs(cross_pairs)


class SluggerSummarizer(Summarizer):
    """Lee et al.'s hierarchical summarizer [25].

    Parameters
    ----------
    iterations:
        Number of divide/merge rounds ``T`` (the paper uses 50).
    """

    name = "Slugger"

    def __init__(
        self,
        iterations: int = 50,
        seed: int = 0,
        time_limit: float | None = None,
    ):
        super().__init__(seed=seed, time_limit=time_limit)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        #: The materialised hierarchical representation of the last
        #: run (Slugger's own R_H = (S, P+, P-, H)); the flat
        #: `SummaryResult.representation` is kept for interoperability
        #: with the rest of the package.
        self.last_hierarchical = None

    def params(self):
        return {"seed": self.seed, "T": self.iterations}

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        rng = random.Random(self.seed)
        partition = SuperNodePartition(graph)
        dendrogram = Dendrogram(graph.n)
        timer.start("signatures")
        signatures = MinHashSignatures(graph, self.iterations, self.seed)

        num_merges = 0
        for t in range(1, self.iterations + 1):
            timer.start("divide")
            groups = divide_by_single_hash(
                sorted(partition.roots()), signatures, t - 1
            )
            timer.start("merge")
            threshold = theta(t)
            merges_before = num_merges
            for group in groups:
                num_merges += merge_group_superjaccard(
                    partition,
                    signatures,
                    group,
                    threshold,
                    rng,
                    on_merge=dendrogram.record,
                )
                timer.check_budget()
            timer.progress(
                "iteration",
                t=t,
                threshold=round(threshold, 6),
                groups=len(groups),
                merges=num_merges - merges_before,
                total_merges=num_merges,
            )

        timer.start("encode")
        representation = encode(partition)
        hierarchical = self._build_hierarchical(graph, partition, dendrogram)
        self.last_hierarchical = hierarchical
        self._extra_metrics = {
            "hierarchical_cost": float(hierarchical.cost),
            "hierarchical_relative_size": hierarchical.relative_size,
        }
        return representation, num_merges

    @staticmethod
    def _build_hierarchical(
        graph: Graph,
        partition: SuperNodePartition,
        dendrogram: Dendrogram,
    ):
        """Materialise ``R_H = (S, P+, P-, H)`` from the merge forest.

        Intra-super-node edges follow the dendrogram encoding plan;
        cross-super-node edges are encoded flat between final roots
        (a positive root-pair plus leaf negatives when dense, leaf
        positives when sparse).
        """
        from repro.algorithms.hierarchy import HierarchyBuilder

        builder = HierarchyBuilder(graph)
        adjacency = graph.adjacency()
        for root in partition.roots():
            tree = dendrogram.tree(root)
            __, choices = plan_intra_encoding(graph, tree)
            _emit_intra(builder, adjacency, tree, choices)
            members_u = partition.members(root)
            size_u = partition.size(root)
            for v, edges in partition.weights(root).items():
                if v < root:
                    continue
                members_v = partition.members(v)
                pi = costs.potential_edges(size_u, partition.size(v))
                if costs.use_superedge(pi, edges):
                    a = builder.node_for(members_u)
                    b = builder.node_for(members_v)
                    builder.add_positive(a, b)
                    member_set_v = set(members_v)
                    for x in members_u:
                        for y in member_set_v - adjacency[x]:
                            builder.add_negative(x, y)
                else:
                    member_set_v = set(members_v)
                    builder.add_positive_leaf_pairs(
                        (x, y)
                        for x in members_u
                        for y in adjacency[x]
                        if y in member_set_v
                    )
        return builder.build()
