"""Common interface for all summarization algorithms.

Every algorithm (Greedy, Randomized, SWeG, LDME, Slugger, Mags,
Mags-DM) is a :class:`Summarizer`: construct it with its parameters,
call :meth:`Summarizer.summarize` on a graph, get a
:class:`SummaryResult` back.  The result carries the representation,
wall-clock phase timings (the quantities plotted in Figures 6-8, 10,
12) and merge statistics.

Observability: when :mod:`repro.obs` is imported *and* a tracer is
installed, :meth:`Summarizer.summarize` wraps the run in a
``summarize:<name>`` span, :class:`PhaseTimer` mirrors every phase as
a child ``phase:<name>`` span, and algorithms report iteration-level
progress through :meth:`PhaseTimer.progress`.  The hook is resolved
through ``sys.modules`` (:func:`active_tracer`), so a process that
never imports ``repro.obs`` runs exactly the uninstrumented code —
the tracing-disabled overhead is one dict lookup per phase boundary.
"""

from __future__ import annotations

import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.encoding import Representation
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = [
    "SummaryResult",
    "Summarizer",
    "TimeLimitExceeded",
    "PhaseTimer",
    "RecordingPartition",
    "active_tracer",
    "active_fault_injector",
]


def active_tracer():
    """The enabled global tracer, or ``None``.

    Resolved through ``sys.modules`` instead of an import so that a
    process which never imports :mod:`repro.obs` pays nothing at all,
    and one with tracing disabled pays a dict lookup plus an attribute
    check.
    """
    obs = sys.modules.get("repro.obs.tracer")
    if obs is None:
        return None
    tracer = obs.get_tracer()
    return tracer if tracer.enabled else None


def active_fault_injector():
    """The configured global fault injector, or ``None``.

    Same ``sys.modules`` gate as :func:`active_tracer`: the algorithm
    layer never imports :mod:`repro.resilience`, so a process that
    does not use fault injection runs the uninstrumented code paths —
    and one with the module imported but no injector installed pays a
    dict lookup per site.
    """
    faults = sys.modules.get("repro.resilience.faults")
    if faults is None:
        return None
    return faults.active_injector()


class TimeLimitExceeded(RuntimeError):
    """The per-run time budget was exhausted (the paper's 24h cutoff)."""


class RecordingPartition(SuperNodePartition):
    """A partition that logs every ``merge(u, v)`` call.

    Checkpointing algorithms snapshot :attr:`merge_log` and restore by
    *replaying* it: :meth:`SuperNodePartition.merge` picks its survivor
    from the live weight tables, so only an argument-exact replay of
    the original call sequence reproduces the same root identities —
    rebuilding from member groups can silently re-root super-nodes and
    diverge the remaining iterations.  Instantiated only when a
    checkpoint store is configured, so the default path keeps the
    plain partition.
    """

    def __init__(self, graph: Graph):
        super().__init__(graph)
        #: ``(u, v)`` as passed to each merge call, in call order.
        self.merge_log: list[tuple[int, int]] = []

    def merge(self, u: int, v: int) -> int:
        self.merge_log.append((u, v))
        return super().merge(u, v)


@dataclass
class SummaryResult:
    """Output of one summarization run."""

    algorithm: str
    representation: Representation
    runtime_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    num_merges: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    #: Algorithm-specific metrics, e.g. Slugger's hierarchical cost
    #: (|P+| + |P-| + |H|) which uses its own compactness measure.
    extra_metrics: dict[str, float] = field(default_factory=dict)
    #: ``True`` when a resource budget stopped (or trimmed) the run
    #: early; the representation is still a valid lossless summary,
    #: just less compact than an unconstrained run's.
    truncated: bool = False
    #: Why the run was truncated (``"time_budget"``,
    #: ``"memory_budget"``, ``"merge_cap"``, ``"candidate_cap"``);
    #: ``None`` when not truncated.
    truncated_reason: str | None = None

    @property
    def relative_size(self) -> float:
        """Compactness measure ``(|E| + |C|) / m`` (Section 6.1)."""
        return self.representation.relative_size

    @property
    def cost(self) -> int:
        """Representation cost ``c(R)``."""
        return self.representation.cost

    def summary_line(self) -> str:
        """One-line human-readable summary for harness output."""
        line = (
            f"{self.algorithm}: relative_size={self.relative_size:.4f} "
            f"cost={self.cost} supernodes={self.representation.num_supernodes} "
            f"merges={self.num_merges} time={self.runtime_seconds:.3f}s"
        )
        if self.truncated:
            line += f" truncated={self.truncated_reason}"
        return line


class PhaseTimer:
    """Accumulates named phase durations and enforces a time budget.

    With a tracer attached, every :meth:`start`/:meth:`stop` pair is
    mirrored as a ``phase:<name>`` span (one span per phase
    *occurrence*, so iterative algorithms emit one divide and one
    merge span per round), and :meth:`progress` forwards
    iteration-level events onto the open phase span.
    """

    def __init__(self, time_limit: float | None = None, tracer=None, budget=None):
        self.phases: dict[str, float] = {}
        self._start = time.perf_counter()
        self._time_limit = time_limit
        self._phase_start: float | None = None
        self._phase_name: str | None = None
        self._tracer = tracer
        self._span = None
        self._budget = budget
        #: Why the soft budget stopped the run (``None`` while inside
        #: budget).  Algorithms poll :attr:`out_of_budget` at safe
        #: boundaries and break cleanly instead of raising.
        self.budget_stop: str | None = None

    def start(self, name: str) -> None:
        """Begin timing phase ``name`` (ends any running phase)."""
        self.stop()
        self._phase_name = name
        self._phase_start = time.perf_counter()
        if self._tracer is not None:
            self._span = self._tracer.start_span(f"phase:{name}", phase=name)

    def stop(self) -> None:
        """End the current phase, if any."""
        if self._phase_name is not None and self._phase_start is not None:
            elapsed = time.perf_counter() - self._phase_start
            self.phases[self._phase_name] = (
                self.phases.get(self._phase_name, 0.0) + elapsed
            )
        self._phase_name = None
        self._phase_start = None
        if self._span is not None:
            self._tracer.end_span(self._span)
            self._span = None

    def progress(self, name: str, **attrs) -> None:
        """Report an iteration-level progress event (candidate pairs
        considered, merges accepted, saving accrued, ...).

        No-op without a tracer, so algorithms call it unconditionally.
        """
        if self._span is not None:
            self._span.event(name, **attrs)

    @property
    def total(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def check_budget(self) -> None:
        """Raise :class:`TimeLimitExceeded` when over the time limit.

        Also polls the soft :class:`~repro.resilience.guard`-style
        resource budget, latching :attr:`budget_stop` when exhausted;
        unlike the hard limit this never raises — the algorithm keeps
        running until it reaches a boundary where stopping leaves a
        valid partition, then checks :attr:`out_of_budget`.
        """
        if self._time_limit is not None and self.total > self._time_limit:
            raise TimeLimitExceeded(
                f"exceeded time limit of {self._time_limit:.1f}s"
            )
        if self._budget is not None and self.budget_stop is None:
            self.budget_stop = self._budget.exhausted()

    @property
    def out_of_budget(self) -> bool:
        """``True`` once the soft resource budget is exhausted.

        Re-polls the budget so phase-boundary checks catch exhaustion
        even when no :meth:`check_budget` call happened in between.
        """
        if self.budget_stop is None and self._budget is not None:
            self.budget_stop = self._budget.exhausted()
        return self.budget_stop is not None

    def note_merges(self, k: int = 1) -> None:
        """Count ``k`` committed merges against the budget (no-op
        without one)."""
        if self._budget is not None:
            self._budget.note_merges(k)

    def clamp_candidates(self, pairs: list) -> list:
        """Trim a candidate list to the budget's cap (identity without
        one).  A trim is recorded as a ``candidate_cap`` trip on the
        budget, flagging the result truncated without stopping the run.
        """
        if self._budget is None:
            return pairs
        return self._budget.clamp_candidates(pairs)

    @property
    def candidate_cap(self) -> int | None:
        """The budget's candidate-pair cap, or ``None``.

        Exposed so algorithms whose candidate structures are not plain
        lists (e.g. Greedy's savings dict) can skip the trim work
        entirely when no cap is in force.
        """
        if self._budget is None:
            return None
        return getattr(self._budget, "max_candidates", None)

    @property
    def truncated_reason(self) -> str | None:
        """The first budget trip of the run (stop or trim), if any."""
        if self.budget_stop is not None:
            return self.budget_stop
        if self._budget is not None and self._budget.trips:
            return self._budget.trips[0]
        return None


class Summarizer(ABC):
    """Base class for summarization algorithms.

    Subclasses implement :meth:`_run`, returning the final
    representation plus bookkeeping; :meth:`summarize` adds timing.

    Parameters common to all subclasses:

    seed:
        Seed for every stochastic component (hash functions, sampling
        order); identical seeds give identical output.
    time_limit:
        Optional wall-clock budget in seconds (the paper kills runs at
        24 hours); :class:`TimeLimitExceeded` is raised when blown.
    """

    #: Human-readable algorithm name, set by subclasses.
    name: str = "abstract"

    def __init__(self, seed: int = 0, time_limit: float | None = None):
        self.seed = seed
        self.time_limit = time_limit
        #: Populated by _run implementations that report extra metrics.
        self._extra_metrics: dict[str, float] = {}
        self._ckpt_store = None
        self._ckpt_interval = 1
        self._ckpt_resume = False
        self._budget = None

    @abstractmethod
    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        """Summarize ``graph``; return (representation, num_merges)."""

    # -- checkpoint/resume ------------------------------------------------
    def configure_checkpointing(
        self, store, interval: int = 1, resume: bool = False
    ) -> "Summarizer":
        """Attach a checkpoint store for long runs.

        ``store`` is duck-typed (``save(state, step)`` / ``latest()``,
        the :class:`repro.resilience.checkpoint.CheckpointStore`
        interface) so the algorithm layer never imports
        :mod:`repro.resilience`.  With ``interval=k`` a snapshot is
        written after every ``k``-th iteration; with ``resume=True``
        the next :meth:`summarize` restores the newest valid snapshot
        and continues from the following iteration.  Returns ``self``
        for chaining.
        """
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self._ckpt_store = store
        self._ckpt_interval = interval
        self._ckpt_resume = resume
        return self

    def _maybe_checkpoint(self, step: int, state_fn) -> None:
        """Snapshot ``state_fn()`` when ``step`` hits the interval.

        Iterative algorithms call this at the end of every iteration;
        it is a no-op without a configured store.
        """
        if self._ckpt_store is None or step % self._ckpt_interval != 0:
            return
        self._ckpt_store.save(state_fn(), step)

    def _resume_checkpoint(self):
        """The newest valid checkpoint when resuming, else ``None``."""
        if self._ckpt_store is None or not self._ckpt_resume:
            return None
        return self._ckpt_store.latest()

    # -- resource budget --------------------------------------------------
    def configure_budget(self, budget) -> "Summarizer":
        """Attach a resource budget, making the run *anytime*.

        ``budget`` is duck-typed (``start()`` / ``stop()`` /
        ``exhausted()`` / ``note_merges(k)`` / ``clamp_candidates(p)``
        / ``trips``, the :class:`repro.resilience.guard.ResourceBudget`
        interface) so the algorithm layer never imports
        :mod:`repro.resilience` — same pattern as
        :meth:`configure_checkpointing`.  On exhaustion the run stops
        cleanly at the next safe boundary and the result is flagged
        ``truncated=True``; the summary is still lossless.  Pass
        ``None`` to detach.  Returns ``self`` for chaining.
        """
        self._budget = budget
        return self

    def params(self) -> dict[str, Any]:
        """Parameter dict recorded in results (subclasses extend)."""
        return {"seed": self.seed}

    def summarize(self, graph: Graph) -> SummaryResult:
        """Run the algorithm on ``graph`` and time it.

        When a tracer is active the whole run becomes a
        ``summarize:<name>`` root span whose children are the phase
        spans, and the run's totals land in the global metrics
        registry.
        """
        tracer = active_tracer()
        if tracer is None:
            return self._summarize(graph, None)
        with tracer.span(
            f"summarize:{self.name}",
            algorithm=self.name,
            n=graph.n,
            m=graph.m,
            params=self.params(),
        ) as span:
            result = self._summarize(graph, tracer)
            span.set(
                relative_size=result.relative_size,
                cost=result.cost,
                supernodes=result.representation.num_supernodes,
            )
            span.inc("merges", result.num_merges)
        self._record_run_metrics(result)
        return result

    def _summarize(self, graph: Graph, tracer) -> SummaryResult:
        timer = PhaseTimer(self.time_limit, tracer=tracer, budget=self._budget)
        self._extra_metrics = {}
        start = time.perf_counter()
        if self._budget is not None:
            self._budget.start()
        try:
            representation, num_merges = self._run(graph, timer)
        finally:
            if self._budget is not None:
                self._budget.stop()
        timer.stop()
        reason = timer.truncated_reason
        return SummaryResult(
            algorithm=self.name,
            representation=representation,
            runtime_seconds=time.perf_counter() - start,
            phase_seconds=dict(timer.phases),
            num_merges=num_merges,
            params=self.params(),
            extra_metrics=dict(self._extra_metrics),
            truncated=reason is not None,
            truncated_reason=reason,
        )

    def _record_run_metrics(self, result: SummaryResult) -> None:
        """Mirror one run's totals into the global metrics registry.

        Only reached when tracing is active, so importing the registry
        here cannot be the first ``repro.obs`` import of the process.
        """
        from repro.obs.metrics import get_registry

        registry = get_registry()
        registry.counter(
            "repro_summarize_runs_total", algorithm=self.name
        ).inc()
        registry.counter(
            "repro_merges_total", algorithm=self.name
        ).inc(result.num_merges)
        registry.histogram(
            "repro_summarize_seconds", algorithm=self.name
        ).observe(result.runtime_seconds)
        for phase, seconds in result.phase_seconds.items():
            registry.histogram(
                "repro_phase_seconds", algorithm=self.name, phase=phase
            ).observe(seconds)
