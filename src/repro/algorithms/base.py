"""Common interface for all summarization algorithms.

Every algorithm (Greedy, Randomized, SWeG, LDME, Slugger, Mags,
Mags-DM) is a :class:`Summarizer`: construct it with its parameters,
call :meth:`Summarizer.summarize` on a graph, get a
:class:`SummaryResult` back.  The result carries the representation,
wall-clock phase timings (the quantities plotted in Figures 6-8, 10,
12) and merge statistics.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = ["SummaryResult", "Summarizer", "TimeLimitExceeded", "PhaseTimer"]


class TimeLimitExceeded(RuntimeError):
    """The per-run time budget was exhausted (the paper's 24h cutoff)."""


@dataclass
class SummaryResult:
    """Output of one summarization run."""

    algorithm: str
    representation: Representation
    runtime_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    num_merges: int = 0
    params: dict[str, Any] = field(default_factory=dict)
    #: Algorithm-specific metrics, e.g. Slugger's hierarchical cost
    #: (|P+| + |P-| + |H|) which uses its own compactness measure.
    extra_metrics: dict[str, float] = field(default_factory=dict)

    @property
    def relative_size(self) -> float:
        """Compactness measure ``(|E| + |C|) / m`` (Section 6.1)."""
        return self.representation.relative_size

    @property
    def cost(self) -> int:
        """Representation cost ``c(R)``."""
        return self.representation.cost

    def summary_line(self) -> str:
        """One-line human-readable summary for harness output."""
        return (
            f"{self.algorithm}: relative_size={self.relative_size:.4f} "
            f"cost={self.cost} supernodes={self.representation.num_supernodes} "
            f"merges={self.num_merges} time={self.runtime_seconds:.3f}s"
        )


class PhaseTimer:
    """Accumulates named phase durations and enforces a time budget."""

    def __init__(self, time_limit: float | None = None):
        self.phases: dict[str, float] = {}
        self._start = time.perf_counter()
        self._time_limit = time_limit
        self._phase_start: float | None = None
        self._phase_name: str | None = None

    def start(self, name: str) -> None:
        """Begin timing phase ``name`` (ends any running phase)."""
        self.stop()
        self._phase_name = name
        self._phase_start = time.perf_counter()

    def stop(self) -> None:
        """End the current phase, if any."""
        if self._phase_name is not None and self._phase_start is not None:
            elapsed = time.perf_counter() - self._phase_start
            self.phases[self._phase_name] = (
                self.phases.get(self._phase_name, 0.0) + elapsed
            )
        self._phase_name = None
        self._phase_start = None

    @property
    def total(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start

    def check_budget(self) -> None:
        """Raise :class:`TimeLimitExceeded` when over the time limit."""
        if self._time_limit is not None and self.total > self._time_limit:
            raise TimeLimitExceeded(
                f"exceeded time limit of {self._time_limit:.1f}s"
            )


class Summarizer(ABC):
    """Base class for summarization algorithms.

    Subclasses implement :meth:`_run`, returning the final
    representation plus bookkeeping; :meth:`summarize` adds timing.

    Parameters common to all subclasses:

    seed:
        Seed for every stochastic component (hash functions, sampling
        order); identical seeds give identical output.
    time_limit:
        Optional wall-clock budget in seconds (the paper kills runs at
        24 hours); :class:`TimeLimitExceeded` is raised when blown.
    """

    #: Human-readable algorithm name, set by subclasses.
    name: str = "abstract"

    def __init__(self, seed: int = 0, time_limit: float | None = None):
        self.seed = seed
        self.time_limit = time_limit
        #: Populated by _run implementations that report extra metrics.
        self._extra_metrics: dict[str, float] = {}

    @abstractmethod
    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        """Summarize ``graph``; return (representation, num_merges)."""

    def params(self) -> dict[str, Any]:
        """Parameter dict recorded in results (subclasses extend)."""
        return {"seed": self.seed}

    def summarize(self, graph: Graph) -> SummaryResult:
        """Run the algorithm on ``graph`` and time it."""
        timer = PhaseTimer(self.time_limit)
        self._extra_metrics = {}
        start = time.perf_counter()
        representation, num_merges = self._run(graph, timer)
        timer.stop()
        return SummaryResult(
            algorithm=self.name,
            representation=representation,
            runtime_seconds=time.perf_counter() - start,
            phase_seconds=dict(timer.phases),
            num_merges=num_merges,
            params=self.params(),
            extra_metrics=dict(self._extra_metrics),
        )
