"""Navlakha et al.'s Greedy baseline (Section 2.3).

Greedy keeps a priority queue of *every* 2-hop-apart super-node pair
with positive saving, repeatedly merges the best pair, and recomputes
the saving of every affected pair after each merge.  It produces the
most compact summaries known but runs in
``O(n * d_avg^3 * (d_avg + log m))`` time with a large constant — the
paper reports it cannot finish a 3M-edge graph in two days, which is
exactly why Mags exists.

The priority queue is a lazy ``heapq``: entries carry the saving they
were pushed with and are discarded on pop when they disagree with the
authoritative per-pair table (the standard stale-entry pattern, same
asymptotics as an indexed heap).
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.algorithms.base import PhaseTimer, Summarizer
from repro.core.encoding import Representation, encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = ["GreedySummarizer", "two_hop_pairs"]

#: Savings below this are treated as non-positive; pure-float equality
#: on "0" is fragile because the saving is a ratio of integers.
_EPS = 1e-12


def two_hop_pairs(partition: SuperNodePartition, u: int) -> set[int]:
    """Roots within two hops of root ``u`` (excluding ``u`` itself).

    Only such pairs can have positive saving (Section 2.3): merging
    nodes with no common neighbor cannot reduce any pairwise cost.
    """
    out: set[int] = set()
    weights = partition.weights(u)
    out.update(weights)
    for x in weights:
        out.update(partition.weights(x))
    out.discard(u)
    return out


class GreedySummarizer(Summarizer):
    """The exhaustive greedy algorithm of Navlakha et al. [30].

    Parameters
    ----------
    seed:
        Unused (the algorithm is deterministic) but accepted for
        interface uniformity.
    time_limit:
        Abort with :class:`TimeLimitExceeded` beyond this budget.
    """

    name = "Greedy"

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        partition = SuperNodePartition(graph)
        savings: dict[tuple[int, int], float] = {}
        heap: list[tuple[float, int, int]] = []

        # -- Step 1: initialization (all positive-saving 2-hop pairs) --
        # One batched savings_many call per node: all of u's 2-hop
        # candidates share the u endpoint, the kernel's best case.
        timer.start("init")
        for u in graph.nodes():
            vs = [v for v in two_hop_pairs(partition, u) if v > u]
            if vs:
                batch = partition.savings_many([(u, v) for v in vs])
                for v, s in zip(vs, batch):
                    if s > _EPS:
                        savings[(u, v)] = s
                        heapq.heappush(heap, (-s, u, v))
            if u % 256 == 0:
                timer.check_budget()
        if timer.candidate_cap is not None and len(savings) > timer.candidate_cap:
            # Candidate cap: keep only the top pairs by saving so the
            # queue (the dominant memory term) respects the budget.
            kept = timer.clamp_candidates(
                sorted(savings.items(), key=lambda kv: (-kv[1], kv[0]))
            )
            savings = dict(kept)
            heap = [(-s, u, v) for (u, v), s in savings.items()]
            heapq.heapify(heap)
        timer.progress("candidates_generated", pairs=len(savings))

        # -- Step 2: greedy merge loop --
        timer.start("merge")
        num_merges = 0
        saving_accrued = 0.0
        while heap:
            neg_s, u, v = heapq.heappop(heap)
            key = (u, v)
            current = savings.get(key)
            if current is None or current != -neg_s:
                continue  # stale heap entry
            del savings[key]
            w = partition.merge(u, v)
            num_merges += 1
            timer.note_merges(1)
            saving_accrued += -neg_s
            self._drop_dead_pairs(savings, u if w != u else v)
            self._update_affected(partition, savings, heap, w)
            if num_merges % 1024 == 0:
                timer.progress(
                    "progress",
                    merges=num_merges,
                    saving_accrued=round(saving_accrued, 6),
                    live_pairs=len(savings),
                )
            timer.check_budget()
            if timer.out_of_budget:
                break  # anytime stop: every committed merge is valid
        timer.progress(
            "merge_done",
            merges=num_merges,
            saving_accrued=round(saving_accrued, 6),
        )

        # -- Step 3: output --
        timer.start("output")
        return encode(partition), num_merges

    @staticmethod
    def _drop_dead_pairs(
        savings: dict[tuple[int, int], float], dead: int
    ) -> None:
        """Remove every queued pair touching the absorbed root."""
        for key in [k for k in savings if dead in k]:
            del savings[key]

    def _update_affected(
        self,
        partition: SuperNodePartition,
        savings: dict[tuple[int, int], float],
        heap: list[tuple[float, int, int]],
        w: int,
    ) -> None:
        """Recompute savings for every pair the merge may have changed.

        Affected pairs (x, y) have ``x`` in ``{w} union N_w`` and ``y``
        within two hops of ``x`` — the 3-hop sweep the paper blames for
        Greedy's cost.  The whole sweep is scored in one batched
        ``savings_many`` call (grouped by ``x``) before any queue
        update is applied.
        """
        affected: Iterable[int] = [w, *partition.weights(w)]
        pair_list: list[tuple[int, int]] = []
        for x in affected:
            pair_list.extend((x, y) for y in two_hop_pairs(partition, x))
        if not pair_list:
            return
        for (x, y), s in zip(
            pair_list, partition.savings_many(pair_list)
        ):
            key = (x, y) if x < y else (y, x)
            if s > _EPS:
                if savings.get(key) != s:
                    savings[key] = s
                    heapq.heappush(heap, (-s, key[0], key[1]))
            else:
                savings.pop(key, None)
