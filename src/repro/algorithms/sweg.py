"""SWeG: Shin et al.'s divide-and-merge baseline (Section 2.4).

Each of ``T`` rounds (i) divides the live super-nodes into groups by
the MinHash of a fresh hash function, then (ii) within each group
repeatedly removes a random super-node and merges it with its most
Super-Jaccard-similar member when the saving clears
``theta(t) = 1/(t + 1)``.  Runs in ``O(T * m)``.

The paper's Section 6.4 uses SWeG as the ablation endpoint for
Mags-DM: no dividing strategy, no merging strategies.
"""

from __future__ import annotations

import random

from repro.algorithms._dm_common import (
    divide_by_single_hash,
    merge_group_superjaccard,
)
from repro.algorithms.base import PhaseTimer, Summarizer
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import theta
from repro.graph.graph import Graph

__all__ = ["SWeGSummarizer"]


class SWeGSummarizer(Summarizer):
    """Shin et al.'s SWeG [34].

    Parameters
    ----------
    iterations:
        Number of divide/merge rounds ``T`` (the paper uses 50).
    seed, time_limit:
        See :class:`repro.algorithms.base.Summarizer`.
    """

    name = "SWeG"

    def __init__(
        self,
        iterations: int = 50,
        seed: int = 0,
        time_limit: float | None = None,
    ):
        super().__init__(seed=seed, time_limit=time_limit)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations

    def params(self):
        return {"seed": self.seed, "T": self.iterations}

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        rng = random.Random(self.seed)
        partition = SuperNodePartition(graph)
        timer.start("signatures")
        # One signature row per round: SWeG draws a fresh hash function
        # for every dividing phase.
        signatures = MinHashSignatures(graph, self.iterations, self.seed)

        num_merges = 0
        for t in range(1, self.iterations + 1):
            timer.start("divide")
            groups = divide_by_single_hash(
                sorted(partition.roots()), signatures, t - 1
            )
            timer.start("merge")
            threshold = theta(t)
            merges_before = num_merges
            for group in groups:
                num_merges += merge_group_superjaccard(
                    partition, signatures, group, threshold, rng
                )
                timer.check_budget()
            timer.progress(
                "iteration",
                t=t,
                threshold=round(threshold, 6),
                groups=len(groups),
                merges=num_merges - merges_before,
                total_merges=num_merges,
            )

        timer.start("output")
        return encode(partition), num_merges
