"""Hierarchical representations (Slugger's model, materialised).

Slugger [25] generalises the flat summary: super-nodes may contain
other super-nodes, and a graph is encoded as
``R_H = (S, P+, P-, H)`` with set semantics

    G  =  (union over (A, B) in P+ of A x B)  minus
          (union over (A, B) in P- of A x B)

where ``A`` and ``B`` are hierarchy nodes (leaves are graph nodes)
and ``A x B`` expands to the leaf pairs under them (unordered, no
self-pairs).  ``H`` is the containment forest, and Slugger's
compactness measure is ``(|P+| + |P-| + |H|) / m``.

This module materialises that model:

* :class:`HierarchicalRepresentation` — the data structure, with
  exact reconstruction and cost accounting where ``|H|`` counts the
  containment links actually needed: unused hierarchy nodes are
  spliced out, and a used node pays one link per maximal used-or-leaf
  descendant beneath it;
* :func:`build_hierarchical` — converts a merge dendrogram plus the
  bottom-up encoding plan of
  :func:`repro.algorithms.slugger.hierarchical_intra_cost` into a
  concrete representation (the Slugger summarizer wires this in).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.graph import Graph

__all__ = ["HierarchicalRepresentation", "HierarchyBuilder"]


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


@dataclass
class HierarchicalRepresentation:
    """Slugger-style hierarchical encoding ``R_H = (S, P+, P-, H)``.

    Hierarchy node ids: ``0..n-1`` are graph nodes (leaves); internal
    nodes use ids ``>= n``.  ``leaves_of`` maps every *internal* node
    to its leaf set (leaves map to themselves implicitly).
    """

    n: int
    m: int
    leaves_of: dict[int, list[int]] = field(default_factory=dict)
    positive_edges: set[tuple[int, int]] = field(default_factory=set)
    negative_edges: set[tuple[int, int]] = field(default_factory=set)

    # ------------------------------------------------------------------
    def leaves(self, node: int) -> list[int]:
        """Leaf set under a hierarchy node."""
        if node < self.n:
            return [node]
        return self.leaves_of[node]

    def _expand(self, a: int, b: int) -> set[tuple[int, int]]:
        """Leaf pairs covered by the hierarchy-node pair (a, b)."""
        left = self.leaves(a)
        if a == b:
            return {
                _ordered(x, y)
                for i, x in enumerate(left)
                for y in left[i + 1:]
            }
        right = self.leaves(b)
        return {
            _ordered(x, y) for x in left for y in right if x != y
        }

    def reconstruct_edges(self) -> set[tuple[int, int]]:
        """Expand ``P+`` then subtract ``P-`` (Slugger's semantics)."""
        edges: set[tuple[int, int]] = set()
        for a, b in self.positive_edges:
            edges |= self._expand(a, b)
        for a, b in self.negative_edges:
            edges -= self._expand(a, b)
        return edges

    def reconstruct(self) -> Graph:
        """Recreate the graph."""
        return Graph(self.n, sorted(self.reconstruct_edges()))

    # ------------------------------------------------------------------
    @property
    def used_internal_nodes(self) -> set[int]:
        """Internal hierarchy nodes referenced by P+ or P-."""
        used = {
            node
            for pair in (self.positive_edges | self.negative_edges)
            for node in pair
            if node >= self.n
        }
        return used

    def hierarchy_links(self) -> int:
        """``|H|``: containment links after splicing unused nodes.

        Each used internal node pays one link per *maximal*
        used-or-leaf unit strictly beneath it; nested used nodes are
        charged once at their closest used ancestor.
        """
        used = self.used_internal_nodes
        if not used:
            return 0
        total = 0
        for node in used:
            total += len(self._exposed_children(node, used))
        return total

    def _exposed_children(self, node: int, used: set[int]) -> list[int]:
        """Maximal used-or-leaf units strictly below ``node``.

        Without an explicit tree we derive containment from leaf sets:
        a used node ``b`` is beneath ``node`` when its leaves are a
        strict subset of ``node``'s.  Maximal such nodes partition part
        of the leaf set; uncovered leaves are linked directly.
        """
        my_leaves = set(self.leaves(node))
        below = [
            b
            for b in used
            if b != node and set(self.leaves(b)) < my_leaves
        ]
        # Keep only maximal ones (not beneath another candidate).
        maximal = []
        for b in below:
            b_leaves = set(self.leaves(b))
            if not any(
                other != b and b_leaves < set(self.leaves(other))
                for other in below
            ):
                maximal.append(b)
        covered: set[int] = set()
        for b in maximal:
            covered |= set(self.leaves(b))
        direct_leaves = my_leaves - covered
        return maximal + sorted(direct_leaves)

    @property
    def cost(self) -> int:
        """``|P+| + |P-| + |H|`` — Slugger's size."""
        return (
            len(self.positive_edges)
            + len(self.negative_edges)
            + self.hierarchy_links()
        )

    @property
    def relative_size(self) -> float:
        """Slugger's compactness measure."""
        if self.m == 0:
            return 0.0
        return self.cost / self.m


class HierarchyBuilder:
    """Incrementally assembles a :class:`HierarchicalRepresentation`.

    The Slugger summarizer walks each super-node's merge dendrogram
    with the encoding plan and calls these primitives; internal node
    ids are handed out on demand, keyed by the frozen leaf set so the
    same subtree used twice is materialised once.
    """

    def __init__(self, graph: Graph):
        self._graph = graph
        self._rep = HierarchicalRepresentation(n=graph.n, m=graph.m)
        self._node_of_leafset: dict[frozenset[int], int] = {}
        self._next_id = graph.n

    def node_for(self, leaves: list[int]) -> int:
        """Hierarchy node covering ``leaves`` (creates it if needed)."""
        if len(leaves) == 1:
            return leaves[0]
        key = frozenset(leaves)
        node = self._node_of_leafset.get(key)
        if node is None:
            node = self._next_id
            self._next_id += 1
            self._node_of_leafset[key] = node
            self._rep.leaves_of[node] = sorted(leaves)
        return node

    def add_positive(self, a: int, b: int) -> None:
        """Assert all leaf pairs under (a, b)."""
        self._rep.positive_edges.add(_ordered(a, b))

    def add_negative(self, a: int, b: int) -> None:
        """Retract all leaf pairs under (a, b)."""
        self._rep.negative_edges.add(_ordered(a, b))

    def add_positive_leaf_pairs(self, pairs) -> None:
        """Assert individual leaf edges."""
        for x, y in pairs:
            self._rep.positive_edges.add(_ordered(x, y))

    def build(self) -> HierarchicalRepresentation:
        """Finish and return the representation."""
        return self._rep
