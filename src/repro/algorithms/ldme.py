"""LDME: Yong et al.'s weighted-LSH divide-and-merge baseline [45].

LDME keeps SWeG's round structure but divides super-nodes with an LSH
*signature of length k* rather than a single MinHash value, which
produces finer groups (faster merging phases) at equal ``T``; merging
within a group follows the SWeG recipe (most-similar partner,
``theta(t)`` threshold).

The dividing signature is a true *weighted* MinHash over the
super-node adjacency weights ``w(u, x)`` (the quantity Super-Jaccard
weighs by), per LDME's design: each round draws ``k`` fresh hash
functions and groups super-nodes by their full ``k``-tuple signature.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.algorithms._dm_common import merge_group_superjaccard
from repro.algorithms.base import PhaseTimer, Summarizer
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures, weighted_minhash_signature
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import theta
from repro.graph.graph import Graph

__all__ = ["LDMESummarizer"]


class LDMESummarizer(Summarizer):
    """Yong et al.'s LDME [45].

    Parameters
    ----------
    iterations:
        Number of rounds ``T`` (paper setup: 50).
    signature_length:
        ``k``, the number of hash values concatenated into the group
        key (paper setup: 5).  ``k = 1`` degenerates to SWeG dividing.
    """

    name = "LDME"

    def __init__(
        self,
        iterations: int = 50,
        signature_length: int = 5,
        seed: int = 0,
        time_limit: float | None = None,
    ):
        super().__init__(seed=seed, time_limit=time_limit)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if signature_length < 1:
            raise ValueError("signature_length must be >= 1")
        self.iterations = iterations
        self.signature_length = signature_length

    def params(self):
        return {
            "seed": self.seed,
            "T": self.iterations,
            "k": self.signature_length,
        }

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        rng = random.Random(self.seed)
        partition = SuperNodePartition(graph)
        timer.start("signatures")
        # Super-node MinHash signatures back the merging phase (they
        # are maintained under merges); the weighted LSH below backs
        # the dividing phase, recomputed per round as in LDME.
        signatures = MinHashSignatures(graph, 16, self.seed)

        num_merges = 0
        for t in range(1, self.iterations + 1):
            timer.start("divide")
            groups = self._divide(partition, round_seed=self.seed * 7919 + t)
            timer.start("merge")
            threshold = theta(t)
            merges_before = num_merges
            for group in groups:
                num_merges += merge_group_superjaccard(
                    partition, signatures, group, threshold, rng
                )
                timer.check_budget()
            timer.progress(
                "iteration",
                t=t,
                threshold=round(threshold, 6),
                groups=len(groups),
                merges=num_merges - merges_before,
                total_merges=num_merges,
            )

        timer.start("output")
        return encode(partition), num_merges

    def _divide(
        self, partition: SuperNodePartition, round_seed: int
    ) -> list[list[int]]:
        """Group live roots by their weighted-MinHash k-tuple."""
        buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
        for root in sorted(partition.roots()):
            key = weighted_minhash_signature(
                partition, root, self.signature_length, round_seed
            )
            buckets[key].append(root)
        return [group for group in buckets.values() if len(group) > 1]
