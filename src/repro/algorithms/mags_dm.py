"""Mags-DM: the paper's divide-and-merge summarizer (Section 4).

Mags-DM keeps SWeG's round structure but changes four things:

* **Dividing strategy**: groups are formed with a *set* of hash
  functions, recursively splitting any group above ``max_group_size``
  (paper: M = 500, depth <= 10) so merging never scans huge groups.
* **Merging strategy 1 (node selection)**: instead of merging with the
  single most similar node, take the top ``b`` by similarity and merge
  with the one of *largest actual saving*.
* **Merging strategy 2 (similarity measure)**: the MinHash estimator
  ``mh(u, v)`` (Equation 5) replaces Super-Jaccard, which is biased
  toward large super-nodes (Example 2) and slower to evaluate.
* **Merging strategy 3 (merge threshold)**: the geometric ``omega(t)``
  (Equation 6) replaces ``theta(t) = 1/(t+1)``.

Each strategy can be disabled individually (``dividing_strategy``,
``node_selection``, ``similarity``, ``threshold``) to reproduce the
Figure 9/10 ablations; disabling all four recovers SWeG.
Runs in ``O(T * m)`` (Theorem 5).
"""

from __future__ import annotations

import random
from typing import Literal

import numpy as np

from repro.algorithms._dm_common import (
    divide_by_single_hash,
    divide_recursive,
    shuffled_rows,
)
from repro.algorithms.base import (
    PhaseTimer,
    RecordingPartition,
    Summarizer,
    active_fault_injector,
)
from repro.core.encoding import Representation, encode
from repro.core.minhash import MinHashSignatures, super_jaccard
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import omega, theta
from repro.graph.graph import Graph

__all__ = ["MagsDMSummarizer", "agreement_matrix", "agreement_with"]


def agreement_matrix(cols: np.ndarray) -> np.ndarray:
    """Pairwise signature-agreement counts of a group (h, size) -> (size, size).

    The dtype is promoted to ``int32`` when ``h`` exceeds the
    ``int16`` range: counts go up to ``h``, and a user-supplied
    ``h > 32767`` would otherwise silently overflow the agreement
    counts (negative similarities demote perfectly similar pairs).
    The diagonal is pinned to ``-1`` so a node never shortlists
    itself.
    """
    h, size = cols.shape
    dtype = np.int16 if h <= np.iinfo(np.int16).max else np.int32
    matrix = np.zeros((size, size), dtype=dtype)
    for row in cols:
        matrix += row[:, None] == row[None, :]
    np.fill_diagonal(matrix, -1)
    return matrix


def agreement_with(cols: np.ndarray, index: int, dtype) -> np.ndarray:
    """One column's agreement counts against every group column."""
    return (cols == cols[:, [index]]).sum(axis=0).astype(dtype)


class MagsDMSummarizer(Summarizer):
    """The paper's Mags-DM algorithm (Algorithm 5).

    Parameters
    ----------
    iterations:
        ``T`` (paper: 50).
    b:
        Size of the candidate shortlist per pivot node (paper: 5).
    h:
        Number of hash functions for signatures (paper: 40).
    max_group_size:
        Dividing-strategy group cap ``M`` (paper: 500).
    max_depth:
        Recursion limit of the dividing strategy (paper: 10).
    dividing_strategy:
        ``True`` for Mags-DM's multi-hash recursive dividing, ``False``
        for SWeG's single-hash dividing (the "no DS" ablation).
    node_selection:
        ``'top_b'`` for Merging Strategy 1, ``'top_1'`` for SWeG's
        single most-similar candidate.
    similarity:
        ``'minhash'`` for Merging Strategy 2, ``'super_jaccard'`` for
        SWeG's measure.
    threshold:
        ``'omega'`` for Merging Strategy 3, ``'theta'`` for SWeG's.
    workers:
        Parallelism degree for the merging phase (Section 5.2); groups
        are disjoint so their merges are independent.
    """

    name = "Mags-DM"

    def __init__(
        self,
        iterations: int = 50,
        b: int = 5,
        h: int = 40,
        max_group_size: int = 500,
        max_depth: int = 10,
        dividing_strategy: bool = True,
        node_selection: Literal["top_b", "top_1"] = "top_b",
        similarity: Literal["minhash", "super_jaccard"] = "minhash",
        threshold: Literal["omega", "theta"] = "omega",
        workers: int = 1,
        seed: int = 0,
        time_limit: float | None = None,
    ):
        super().__init__(seed=seed, time_limit=time_limit)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if b < 1:
            raise ValueError("b must be >= 1")
        if h < 1:
            raise ValueError("h must be >= 1")
        if max_group_size < 2:
            raise ValueError("max_group_size must be >= 2")
        if node_selection not in ("top_b", "top_1"):
            raise ValueError(f"unknown node_selection {node_selection!r}")
        if similarity not in ("minhash", "super_jaccard"):
            raise ValueError(f"unknown similarity {similarity!r}")
        if threshold not in ("omega", "theta"):
            raise ValueError(f"unknown threshold {threshold!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.iterations = iterations
        self.b = b
        self.h = h
        self.max_group_size = max_group_size
        self.max_depth = max_depth
        self.dividing_strategy = dividing_strategy
        self.node_selection = node_selection
        self.similarity = similarity
        self.threshold = threshold
        self.workers = workers
        #: Per-iteration lists of group sizes from the last run; used
        #: by the Figure 13 work-partition speedup model.
        self.last_group_sizes: list[list[int]] = []

    def params(self):
        return {
            "seed": self.seed,
            "T": self.iterations,
            "b": self.b,
            "h": self.h,
            "M": self.max_group_size,
            "dividing_strategy": self.dividing_strategy,
            "node_selection": self.node_selection,
            "similarity": self.similarity,
            "threshold": self.threshold,
            "workers": self.workers,
        }

    # ------------------------------------------------------------------
    def _threshold(self, t: int) -> float:
        if self.threshold == "omega":
            return omega(t, self.iterations)
        return theta(t)

    def _run(
        self, graph: Graph, timer: PhaseTimer
    ) -> tuple[Representation, int]:
        rng = random.Random(self.seed)
        partition = (
            RecordingPartition(graph)
            if self._ckpt_store is not None
            else SuperNodePartition(graph)
        )
        timer.start("signatures")
        signatures = MinHashSignatures(graph, self.h, self.seed)

        num_merges = 0
        start_t = 1
        self.last_group_sizes = []
        checkpoint = self._resume_checkpoint()
        if checkpoint is not None:
            start_t, num_merges = self._restore_state(
                checkpoint.state, partition, signatures, rng
            )
        injector = active_fault_injector()
        for t in range(start_t, self.iterations + 1):
            if timer.out_of_budget:
                break  # anytime stop: the partition is valid as-is
            if injector is not None:
                injector.before("summarize:iteration")
            timer.start("divide")
            roots = sorted(partition.roots())
            if self.dividing_strategy:
                row_order = shuffled_rows(self.h, rng)[: self.max_depth]
                groups = divide_recursive(
                    roots, signatures, row_order, self.max_group_size
                )
            else:
                groups = divide_by_single_hash(
                    roots, signatures, (t - 1) % self.h
                )
            sizes = [len(g) for g in groups]
            self.last_group_sizes.append(sizes)
            timer.start("merge")
            threshold = self._threshold(t)
            merges_before = num_merges
            if self.workers > 1:
                from repro.algorithms.parallel import merge_groups_parallel

                parallel_merges = merge_groups_parallel(
                    self, partition, signatures, groups, threshold, rng,
                    self.workers,
                )
                num_merges += parallel_merges
                timer.note_merges(parallel_merges)
            else:
                for group in groups:
                    group_merges = self._merge_group(
                        partition, signatures, group, threshold, rng
                    )
                    num_merges += group_merges
                    timer.note_merges(group_merges)
                    timer.check_budget()
                    if timer.out_of_budget:
                        break  # groups are disjoint; stopping is safe
            timer.progress(
                "iteration",
                t=t,
                threshold=round(threshold, 6),
                groups=len(groups),
                largest_group=max(sizes, default=0),
                candidates=sum(sizes),
                merges=num_merges - merges_before,
                total_merges=num_merges,
            )
            self._maybe_checkpoint(
                t,
                lambda: self._checkpoint_state(
                    t, partition, rng, num_merges
                ),
            )

        timer.start("output")
        return encode(partition), num_merges

    # ------------------------------------------------------------------
    # Checkpoint/resume (see docs/resilience.md)
    # ------------------------------------------------------------------
    def _checkpoint_state(
        self,
        t: int,
        partition: RecordingPartition,
        rng: random.Random,
        num_merges: int,
    ) -> dict:
        """JSON-serialisable snapshot after iteration ``t``."""
        state = rng.getstate()
        return {
            "algorithm": self.name,
            "iteration": t,
            "merge_log": [list(pair) for pair in partition.merge_log],
            "rng_state": [state[0], list(state[1]), state[2]],
            "num_merges": num_merges,
        }

    def _restore_state(
        self,
        state: dict,
        partition: RecordingPartition,
        signatures: MinHashSignatures,
        rng: random.Random,
    ) -> tuple[int, int]:
        """Rebuild run state from a snapshot; returns
        ``(next_iteration, num_merges)``.

        The merge log is replayed argument-for-argument, which
        reproduces the original run's root identities and weight
        tables exactly (see :class:`RecordingPartition`); each merge
        folds the absorbed signature column just as the live run did.
        """
        if state.get("algorithm") != self.name:
            raise ValueError(
                f"checkpoint is for {state.get('algorithm')!r}, "
                f"not {self.name!r}"
            )
        for u, v in state["merge_log"]:
            w = partition.merge(u, v)
            signatures.merge(w, v if w == u else u)
        version, internal, gauss = state["rng_state"]
        rng.setstate((version, tuple(internal), gauss))
        return state["iteration"] + 1, state["num_merges"]

    # ------------------------------------------------------------------
    # Merging phase on one group (Algorithm 5, lines 7-13)
    # ------------------------------------------------------------------
    def _merge_group(
        self,
        partition: SuperNodePartition,
        signatures: MinHashSignatures,
        group: list[int],
        threshold: float,
        rng: random.Random,
    ) -> int:
        if self.similarity == "minhash":
            return self._merge_group_minhash(
                partition, signatures, group, threshold, rng
            )
        return self._merge_group_super_jaccard(
            partition, signatures, group, threshold, rng
        )

    def _merge_group_minhash(
        self,
        partition: SuperNodePartition,
        signatures: MinHashSignatures,
        group: list[int],
        threshold: float,
        rng: random.Random,
    ) -> int:
        """Merging phase with ``mh(.)`` similarity (Strategy 2).

        The pairwise signature-agreement counts for the whole group
        are computed once as a matrix (one vectorised pass per hash
        function); a merge only refreshes the merged super-node's row
        and column.  This is the batch evaluation that makes ``mh(.)``
        "faster to compute" than Super-Jaccard in the paper.
        """
        width = self.b if self.node_selection == "top_b" else 1
        roots = list(group)
        size = len(roots)
        cols = signatures.sig[:, roots].copy()  # (h, size)
        matrix = agreement_matrix(cols)
        alive = np.ones(size, dtype=bool)
        alive_count = size
        merges = 0

        while alive_count >= 2:
            candidates = np.flatnonzero(alive)
            pick = int(candidates[rng.randrange(alive_count)])
            alive[pick] = False
            alive_count -= 1

            sims = np.where(alive, matrix[pick], -1)
            if width >= alive_count:
                shortlist = np.flatnonzero(alive)
            else:
                shortlist = np.argpartition(sims, -width)[-width:]
            best_index = -1
            best_saving = -float("inf")
            u = roots[pick]
            # Score the whole shortlist in one batched kernel call
            # (every pair shares the pivot endpoint u); ties keep the
            # earliest shortlist entry, same as the scalar loop did.
            alive_shortlist = [int(i) for i in shortlist if alive[int(i)]]
            if alive_shortlist:
                batch = partition.savings_many(
                    [(u, roots[i]) for i in alive_shortlist]
                )
                for i, s in zip(alive_shortlist, batch):
                    if s > best_saving:
                        best_saving, best_index = s, i
            if best_index < 0 or best_saving < threshold:
                continue
            w = partition.merge(u, roots[best_index])
            absorbed = roots[best_index] if w == u else u
            signatures.merge(w, absorbed)
            merges += 1
            # The merged super-node takes the partner's slot; its
            # signature is the element-wise min, so refresh that slot's
            # column and similarity row.
            roots[best_index] = w
            np.minimum(cols[:, best_index], cols[:, pick],
                       out=cols[:, best_index])
            agreement = agreement_with(cols, best_index, matrix.dtype)
            matrix[best_index, :] = agreement
            matrix[:, best_index] = agreement
            matrix[best_index, best_index] = -1
        return merges

    def _merge_group_super_jaccard(
        self,
        partition: SuperNodePartition,
        signatures: MinHashSignatures,
        group: list[int],
        threshold: float,
        rng: random.Random,
    ) -> int:
        """Merging with SWeG's Super-Jaccard (the "no MS2" ablation)."""
        width = self.b if self.node_selection == "top_b" else 1
        group = list(group)
        merges = 0
        while len(group) >= 2:
            pick = rng.randrange(len(group))
            u = group[pick]
            group[pick] = group[-1]
            group.pop()
            scored = sorted(
                group,
                key=lambda v: super_jaccard(partition, u, v),
                reverse=True,
            )
            shortlist = scored[:width]
            best_v = -1
            best_saving = -float("inf")
            for v in shortlist:
                s = partition.saving(u, v)
                if s > best_saving:
                    best_saving, best_v = s, v
            if best_v < 0 or best_saving < threshold:
                continue
            w = partition.merge(u, best_v)
            absorbed = best_v if w == u else u
            signatures.merge(w, absorbed)
            merges += 1
            group[group.index(best_v)] = w
        return merges
