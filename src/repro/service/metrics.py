"""Observability for the summary-serving engine.

A serving process is only operable if it can answer "how is it
doing" without a debugger: this module provides thread-safe counters
(requests per op, errors, cache hits/misses), bounded-reservoir
latency histograms with p50/p95/p99, and a periodic one-line log
emitted by :class:`MetricsLogger`.  A snapshot of everything is what
the server returns for a ``stats`` request.

Latencies are kept in a bounded deque per op (most recent
``reservoir`` samples) so memory is constant regardless of uptime;
percentiles are computed on demand with the nearest-rank rule, which
is exact over the retained window.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import Counter, deque

__all__ = ["LatencyRecorder", "ServiceMetrics", "MetricsLogger"]

logger = logging.getLogger("repro.service")

#: Default number of latency samples retained per op.
DEFAULT_RESERVOIR = 8192

_PERCENTILES = (50.0, 95.0, 99.0)


def _nearest_rank(sorted_values: list[float], percentile: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, -(-len(sorted_values) * int(percentile * 100) // 10000))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LatencyRecorder:
    """Bounded window of per-op latencies with percentile snapshots."""

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        self._samples: deque[float] = deque(maxlen=reservoir)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds
        if seconds > self._max:
            self._max = seconds

    def snapshot(self) -> dict:
        """Count, mean, max and p50/p95/p99 in milliseconds."""
        window = sorted(self._samples)
        if not window:
            return {"count": 0}
        stats = {
            "count": self._count,
            "mean_ms": round(1000.0 * self._total / self._count, 3),
            "max_ms": round(1000.0 * self._max, 3),
        }
        for percentile in _PERCENTILES:
            key = f"p{percentile:g}_ms"
            stats[key] = round(1000.0 * _nearest_rank(window, percentile), 3)
        return stats


class ServiceMetrics:
    """Thread-safe counters + latency histograms for one engine/server.

    One instance is shared by the :class:`~repro.service.engine.QueryEngine`
    (cache accounting) and the server (request accounting); everything
    is guarded by a single lock because every update is a few
    arithmetic ops — contention is negligible next to query work.
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._started = time.monotonic()
        self._requests: Counter[str] = Counter()
        self._errors: Counter[str] = Counter()
        self._latency: dict[str, LatencyRecorder] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._batches = 0
        self._batch_queries = 0
        self._batch_unique_queries = 0
        self._connections_opened = 0
        self._connections_closed = 0

    # -- engine-side accounting -----------------------------------------
    def cache_hit(self) -> None:
        with self._lock:
            self._cache_hits += 1

    def cache_miss(self) -> None:
        with self._lock:
            self._cache_misses += 1

    def batch(self, size: int, unique: int) -> None:
        """Record one ``query_many`` call and its deduplication."""
        with self._lock:
            self._batches += 1
            self._batch_queries += size
            self._batch_unique_queries += unique

    # -- server-side accounting -----------------------------------------
    def observe(self, op: str, seconds: float, ok: bool = True) -> None:
        """Record one completed request of type ``op``."""
        with self._lock:
            self._requests[op] += 1
            if not ok:
                self._errors[op] += 1
            recorder = self._latency.get(op)
            if recorder is None:
                recorder = self._latency[op] = LatencyRecorder(
                    self._reservoir
                )
            recorder.record(seconds)

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_opened += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_closed += 1

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as one JSON-serialisable dict (the ``stats``
        response body)."""
        with self._lock:
            lookups = self._cache_hits + self._cache_misses
            return {
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests_total": sum(self._requests.values()),
                "errors_total": sum(self._errors.values()),
                "requests_by_op": dict(self._requests),
                "errors_by_op": dict(self._errors),
                "cache": {
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                    "hit_rate": (
                        round(self._cache_hits / lookups, 4) if lookups else 0.0
                    ),
                },
                "batch": {
                    "batches": self._batches,
                    "queries": self._batch_queries,
                    "unique_queries": self._batch_unique_queries,
                },
                "connections": {
                    "opened": self._connections_opened,
                    "closed": self._connections_closed,
                    "active": (
                        self._connections_opened - self._connections_closed
                    ),
                },
                "latency_ms": {
                    op: recorder.snapshot()
                    for op, recorder in self._latency.items()
                },
            }

    def log_line(self) -> str:
        """Compact ``key=value`` summary for the periodic log."""
        snap = self.snapshot()
        neighbors = snap["latency_ms"].get("neighbors", {})
        return (
            f"uptime={snap['uptime_s']:.0f}s "
            f"requests={snap['requests_total']} "
            f"errors={snap['errors_total']} "
            f"cache_hit_rate={snap['cache']['hit_rate']:.2f} "
            f"active_conns={snap['connections']['active']} "
            f"neighbors_p50={neighbors.get('p50_ms', 0)}ms "
            f"neighbors_p99={neighbors.get('p99_ms', 0)}ms"
        )


class MetricsLogger(threading.Thread):
    """Daemon thread that logs :meth:`ServiceMetrics.log_line`
    periodically until :meth:`stop` is called."""

    def __init__(self, metrics: ServiceMetrics, interval: float = 30.0):
        super().__init__(name="repro-metrics-logger", daemon=True)
        self._metrics = metrics
        self._interval = interval
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            logger.info("stats %s", self._metrics.log_line())

    def stop(self) -> None:
        self._stop_event.set()
