"""Observability for the summary-serving engine.

A serving process is only operable if it can answer "how is it
doing" without a debugger: this module provides thread-safe counters
(requests per op, errors, cache hits/misses), bounded-reservoir
latency histograms with p50/p95/p99, and a periodic one-line log
emitted by :class:`MetricsLogger`.  A snapshot of everything is what
the server returns for a ``stats`` request.

Since the introduction of :mod:`repro.obs`, this module is a façade
over a :class:`repro.obs.metrics.MetricsRegistry`: every counter and
latency histogram lives in ``ServiceMetrics.registry`` under
Prometheus-style names (``service_requests_total{op=...}``,
``service_request_seconds{op=...}``, ...), and the legacy
``snapshot()`` shape is assembled from it.  The registry itself is
exported verbatim in the ``stats`` response and by
:meth:`ServiceMetrics.to_prometheus`.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.obs.metrics import (
    DEFAULT_RESERVOIR,
    PERCENTILES,
    Histogram,
    MetricsRegistry,
)

__all__ = ["LatencyRecorder", "ServiceMetrics", "MetricsLogger"]

logger = logging.getLogger("repro.service")


class LatencyRecorder:
    """Bounded window of per-op latencies with percentile snapshots.

    A thin shim over :class:`repro.obs.metrics.Histogram` (seconds in,
    milliseconds out) kept for API stability; the histogram itself may
    be shared with a :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        reservoir: int = DEFAULT_RESERVOIR,
        histogram: Histogram | None = None,
    ):
        self._histogram = (
            histogram if histogram is not None else Histogram(reservoir)
        )

    @property
    def _samples(self):
        """The live reservoir (second units), for tests/inspection."""
        return self._histogram.samples

    def record(self, seconds: float) -> None:
        self._histogram.observe(seconds)

    def snapshot(self) -> dict:
        """Count, mean, max and p50/p95/p99 in milliseconds."""
        snap = self._histogram.snapshot()
        if not snap["count"]:
            return {"count": 0}
        stats = {
            "count": snap["count"],
            "mean_ms": round(1000.0 * snap["mean"], 3),
            "max_ms": round(1000.0 * snap["max"], 3),
        }
        for percentile in PERCENTILES:
            stats[f"p{percentile:g}_ms"] = round(
                1000.0 * snap[f"p{percentile:g}"], 3
            )
        return stats


class ServiceMetrics:
    """Thread-safe counters + latency histograms for one engine/server.

    One instance is shared by the :class:`~repro.service.engine.QueryEngine`
    (cache accounting) and the server (request accounting).  All state
    lives in :attr:`registry`; the handles below are cached because
    they sit on hot paths.
    """

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR):
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._started = time.perf_counter()
        #: Backing store for every counter/histogram; exported by the
        #: ``stats`` op and by :meth:`to_prometheus`.
        self.registry = MetricsRegistry()
        self._latency: dict[str, LatencyRecorder] = {}
        self._cache_hits = self.registry.counter("service_cache_hits_total")
        self._cache_misses = self.registry.counter(
            "service_cache_misses_total"
        )
        self._batches = self.registry.counter("service_batches_total")
        self._batch_queries = self.registry.counter(
            "service_batch_queries_total"
        )
        self._batch_unique = self.registry.counter(
            "service_batch_unique_queries_total"
        )
        self._conns_opened = self.registry.counter(
            "service_connections_opened_total"
        )
        self._conns_closed = self.registry.counter(
            "service_connections_closed_total"
        )
        self._conns_active = self.registry.gauge(
            "service_connections_active"
        )
        self._shed = self.registry.counter("service_shed_total")
        self._breaker_opened = self.registry.counter(
            "service_breaker_open_total"
        )
        self._breaker_rejected = self.registry.counter(
            "service_breaker_rejected_total"
        )

    # -- engine-side accounting -----------------------------------------
    def cache_hit(self) -> None:
        self._cache_hits.inc()

    def cache_miss(self) -> None:
        self._cache_misses.inc()

    def batch(self, size: int, unique: int) -> None:
        """Record one ``query_many`` call and its deduplication."""
        self._batches.inc()
        self._batch_queries.inc(size)
        self._batch_unique.inc(unique)

    # -- server-side accounting -----------------------------------------
    def observe(self, op: str, seconds: float, ok: bool = True) -> None:
        """Record one completed request of type ``op``."""
        self.registry.counter("service_requests_total", op=op).inc()
        if not ok:
            self.registry.counter("service_errors_total", op=op).inc()
        recorder = self._latency.get(op)
        if recorder is None:
            with self._lock:
                recorder = self._latency.get(op)
                if recorder is None:
                    recorder = self._latency[op] = LatencyRecorder(
                        histogram=self.registry.histogram(
                            "service_request_seconds",
                            reservoir=self._reservoir,
                            op=op,
                        )
                    )
        recorder.record(seconds)

    def connection_opened(self) -> None:
        self._conns_opened.inc()
        self._conns_active.inc()

    def connection_closed(self) -> None:
        self._conns_closed.inc()
        self._conns_active.dec()

    # -- resilience accounting -------------------------------------------
    def shed(self) -> None:
        """One connection rejected by the bounded accept queue."""
        self._shed.inc()

    def degraded(self, op: str) -> None:
        """One request answered in degraded mode."""
        self.registry.counter("service_degraded_total", op=op).inc()

    def breaker_opened(self) -> None:
        """The circuit breaker transitioned closed -> open."""
        self._breaker_opened.inc()

    def breaker_rejected(self) -> None:
        """One request rejected while the breaker was open."""
        self._breaker_rejected.inc()

    def protocol_rejected(self, reason: str) -> None:
        """One inbound frame rejected at the protocol boundary.

        ``reason`` is ``"frame"`` (undecodable: bad JSON, oversized,
        non-object) or ``"schema"`` (decodable but invalid: unknown
        op, unknown field, wrong types, out-of-range k, bad batch).
        """
        self.registry.counter(
            "service_protocol_rejected_total", reason=reason
        ).inc()

    # -- reporting -------------------------------------------------------
    def _by_op(self, name: str) -> dict[str, int]:
        return {
            labels["op"]: int(metric.value)
            for labels, metric in self.registry.family(name)
        }

    def snapshot(self) -> dict:
        """Everything, as one JSON-serialisable dict (the ``stats``
        response body)."""
        requests = self._by_op("service_requests_total")
        errors = self._by_op("service_errors_total")
        hits = int(self._cache_hits.value)
        misses = int(self._cache_misses.value)
        lookups = hits + misses
        return {
            "uptime_s": round(time.perf_counter() - self._started, 3),
            "requests_total": sum(requests.values()),
            "errors_total": sum(errors.values()),
            "requests_by_op": requests,
            "errors_by_op": errors,
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            },
            "batch": {
                "batches": int(self._batches.value),
                "queries": int(self._batch_queries.value),
                "unique_queries": int(self._batch_unique.value),
            },
            "connections": {
                "opened": int(self._conns_opened.value),
                "closed": int(self._conns_closed.value),
                "active": int(self._conns_active.value),
            },
            "resilience": {
                "shed": int(self._shed.value),
                "degraded_by_op": self._by_op("service_degraded_total"),
                "breaker_opened": int(self._breaker_opened.value),
                "breaker_rejected": int(self._breaker_rejected.value),
            },
            "latency_ms": {
                op: recorder.snapshot()
                for op, recorder in sorted(self._latency.items())
            },
        }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        from repro.obs.exporters import registry_to_prometheus

        return registry_to_prometheus(self.registry)

    def log_line(self) -> str:
        """Compact ``key=value`` summary for the periodic log."""
        snap = self.snapshot()
        neighbors = snap["latency_ms"].get("neighbors", {})
        return (
            f"uptime={snap['uptime_s']:.0f}s "
            f"requests={snap['requests_total']} "
            f"errors={snap['errors_total']} "
            f"cache_hit_rate={snap['cache']['hit_rate']:.2f} "
            f"active_conns={snap['connections']['active']} "
            f"neighbors_p50={neighbors.get('p50_ms', 0)}ms "
            f"neighbors_p99={neighbors.get('p99_ms', 0)}ms"
        )


class MetricsLogger(threading.Thread):
    """Daemon thread that logs :meth:`ServiceMetrics.log_line`
    periodically until :meth:`stop` is called."""

    def __init__(self, metrics: ServiceMetrics, interval: float = 30.0):
        super().__init__(name="repro-metrics-logger", daemon=True)
        self._metrics = metrics
        self._interval = interval
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            logger.info("stats %s", self._metrics.log_line())

    def stop(self) -> None:
        self._stop_event.set()
