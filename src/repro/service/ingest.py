"""Mutable query engine: the ``ingest`` op behind the query service.

Extends :class:`~repro.service.engine.QueryEngine` over a
:class:`~repro.dynamic.summary.DynamicGraphSummary` so a live server
accepts streamed edge insertions/deletions while continuing to answer
reads.  The contract, end to end:

**Durability** — an accepted batch is appended (and fsynced, policy
permitting) to the :class:`~repro.durability.wal.WriteAheadLog`
*before* it is applied; the acknowledgement therefore implies the
mutation survives ``kill -9`` (see docs/resilience.md).

**Read consistency** — every mutation batch commits atomically under
one state lock and bumps a monotonically increasing ``epoch``; every
successful response echoes the epoch it was served at, and the LRU
cache is invalidated per dirty node (an edge toggle only changes the
neighbor sets of its two endpoints), not wholesale.  While crash
recovery is still replaying the WAL tail, reads are answered from the
partially-replayed state flagged ``"degraded": true`` — the
established degraded-mode convention — instead of being refused.

**Idempotence** — each ingest names a client ``stream`` and a
per-stream ``seq``.  The server remembers the last sequence (plus the
batch content and its result) per stream: a repeat of the last ``seq``
with the *same* mutations returns the cached result marked
``"duplicate": true`` without re-applying (the client retry path
resends the *original* sequence number after a transport error), a
repeat with *different* mutations is a structured ``bad_request``
(dedup identity is sequence + content, so a reused sequence number can
never silently swallow a new batch), and a rewound sequence is a
structured ``bad_request``.

**Backpressure** — at most ``max_inflight`` ingest requests may be
past admission at once, and an optional
:class:`~repro.resilience.guard.ResourceBudget` (memory ceiling) can
park ingest entirely; both reject with a structured ``overloaded``
error rather than a dropped connection.  Note the budget's memory
trip is sticky by design: once RSS crossed the ceiling, ingest stays
parked until restart.

**Atomicity of a batch** — the batch is validated against the live
state (plus its own earlier mutations) before the WAL append, so a
logged batch always applies cleanly; a rejected batch changes
nothing.  A ``dry_run`` ingest stops after that validation — nothing
is logged, applied, or remembered — which is the prepare half of the
cluster router's two-phase fan-out: every involved shard validates
its sub-batch first, and only when all accept does the commit round
run (see :meth:`repro.cluster.router.RouterEngine._ingest`).
"""

from __future__ import annotations

import threading

from repro.dynamic.summary import DynamicGraphSummary
from repro.queries.pagerank import SummaryPageRank
from repro.service.engine import OPS, QueryEngine, QueryError
from repro.service.protocol import MAX_INGEST_MUTATIONS, MAX_STREAM_LEN

__all__ = ["MutableQueryEngine"]

_SIGNS = ("+", "-")


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class MutableQueryEngine(QueryEngine):
    """A :class:`QueryEngine` whose summary accepts live mutations.

    Parameters
    ----------
    dynamic:
        The corrections-overlay summary to serve and mutate.
    wal:
        Optional :class:`~repro.durability.wal.WriteAheadLog`; without
        one, mutations are volatile (tests, benchmarks) but the full
        ingest contract minus durability still holds.
    budget:
        Optional armed :class:`~repro.resilience.guard.ResourceBudget`
        consulted at ingest admission.
    max_inflight:
        Bound on concurrently admitted ingest requests (0 disables
        the bound).
    """

    def __init__(
        self,
        dynamic: DynamicGraphSummary,
        *,
        wal=None,
        budget=None,
        max_inflight: int = 64,
        **kwargs,
    ):
        super().__init__(dynamic.to_representation(), **kwargs)
        self.ops = OPS + ("ingest",)
        self._dynamic = dynamic
        self._wal = wal
        self._budget = budget
        self._max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Guards the dynamic overlay, epoch, LSN and dedup map; reads
        #: take it only on a cache miss, writes for the whole commit.
        self._state_lock = threading.RLock()
        #: Bumped once per committed mutation batch; echoed on every
        #: successful response.
        self.epoch = 0
        #: LSN of the newest applied WAL record.
        self.applied_lsn = wal.last_lsn if wal is not None else 0
        #: stream id -> (last seq, its mutation tuple, its result dict).
        #: The mutation tuple is the dedup fingerprint: a replay of the
        #: last seq must carry the same batch to count as a duplicate.
        self._dedup: dict[
            str, tuple[int, tuple[tuple[str, int, int], ...], dict]
        ] = {}
        #: True while crash recovery replays the WAL tail.
        self.replaying = False
        self._rep_snapshot: tuple[int, object] | None = None

    # -- read path overrides ---------------------------------------------
    @property
    def representation(self):
        """A consistent snapshot of the live state, cached per epoch
        (PageRank builds and ``verify_against`` read it; per-request
        paths use the overlay directly)."""
        with self._state_lock:
            cached = self._rep_snapshot
            if cached is not None and cached[0] == self.epoch:
                return cached[1]
            rep = self._dynamic.to_representation()
            self._rep_snapshot = (self.epoch, rep)
            return rep

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError("bad_request", "'node' must be an integer")
        if not 0 <= node < self._dynamic.n:
            raise QueryError(
                "bad_request",
                f"node {node} out of range [0, {self._dynamic.n})",
            )

    def neighbors(self, node: int) -> frozenset[int]:
        self._check_node(node)
        cached = self._cache.get(node)
        if cached is not None:
            self.metrics.cache_hit()
            return cached
        self.metrics.cache_miss()
        # Expansion and cache fill happen under the state lock so a
        # concurrent commit can never interleave between computing a
        # neighbor set and caching it (which would cache a stale set
        # right past its invalidation).
        with self._state_lock:
            result = frozenset(self._dynamic.neighbors(node))
            self._cache.put(node, result)
        return result

    def pagerank_score(
        self,
        node: int,
        deadline: float | None = None,
        degraded_sink: list | None = None,
    ) -> float:
        """Exact score from a vector built on an epoch-consistent
        snapshot.  A commit invalidates the vector; if the epoch moves
        *while* a build is running, the just-built (self-consistent
        but already stale) vector answers this request without being
        installed, so no request ever sees a torn state and a
        sustained write load cannot livelock the build loop.
        """
        self._check_node(node)
        scores = self._pagerank_scores
        if scores is None:
            import time

            if (
                degraded_sink is not None
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                degraded_sink.append("pagerank")
                with self._state_lock:
                    n, m = self._dynamic.n, self._dynamic.m
                degree = len(self.neighbors(node))
                return (1.0 - self._damping) / max(1, n) + (
                    self._damping * degree / max(1, 2 * m)
                )
            with self._pagerank_lock:
                scores = self._pagerank_scores
                if scores is None:
                    with self._state_lock:
                        built_at = self.epoch
                        rep = self.representation
                    scores = SummaryPageRank(rep).run(
                        self._damping, self._pagerank_iterations
                    )
                    with self._state_lock:
                        if self.epoch == built_at:
                            self._pagerank_scores = scores
        return float(scores[node])

    def _finalize(self, response: dict) -> dict:
        response["epoch"] = self.epoch
        if self.replaying and not response.get("degraded"):
            response["degraded"] = True
            self.metrics.degraded(response.get("op") or "unknown")
        return response

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, op, request, deadline, degraded_sink=None):
        if op == "ingest":
            return self.ingest(
                request.get("stream"),
                request.get("seq"),
                request.get("mutations"),
                dry_run=request.get("dry_run", False),
            )
        return super()._dispatch(op, request, deadline, degraded_sink)

    # -- the ingest op ---------------------------------------------------
    def ingest(self, stream, seq, mutations, *, dry_run=False) -> dict:
        """Validate, log, apply, and acknowledge one mutation batch.

        Returns ``{"applied", "lsn"}`` plus ``"duplicate": true`` for
        a deduplicated retry; the surrounding response carries the
        post-commit ``epoch``.  With ``dry_run`` the batch is only
        validated — ``{"validated": <count>}`` comes back, no WAL
        append, no state change, no dedup entry — except that a
        duplicate of the last acknowledged (seq, batch) still answers
        from the dedup cache, so a prepare round over an
        already-applied sub-batch reports acceptance rather than
        failing validation against the post-apply state.  Raises
        :class:`QueryError` with kind ``overloaded`` (backpressure,
        replay in progress) or ``bad_request`` (malformed or
        inapplicable batch, rewound sequence, or a reused sequence
        carrying different mutations).
        """
        if not isinstance(dry_run, bool):
            raise QueryError("bad_request", "'dry_run' must be a boolean")
        self._admit()
        try:
            if self.replaying:
                raise QueryError(
                    "overloaded",
                    "recovery replay in progress; retry shortly",
                )
            parsed = self._parse_batch(stream, seq, mutations)
            with self._state_lock:
                last = self._dedup.get(stream)
                if last is not None:
                    last_seq, last_batch, last_result = last
                    if seq == last_seq:
                        if tuple(parsed) != last_batch:
                            self._count("seq_reused")
                            raise QueryError(
                                "bad_request",
                                f"stream {stream!r} sequence {seq} reused "
                                "with different mutations; a retry must "
                                "resend the original batch",
                            )
                        self.metrics.registry.counter(
                            "repro_ingest_duplicates_total"
                        ).inc()
                        return {**last_result, "duplicate": True}
                    if seq < last_seq:
                        self._count("rewound")
                        raise QueryError(
                            "bad_request",
                            f"stream {stream!r} sequence rewound: got "
                            f"{seq}, last acknowledged {last_seq}",
                        )
                self._dry_run(parsed)
                if dry_run:
                    return {"validated": len(parsed)}
                if self._wal is not None:
                    lsn = self._wal.append(stream, seq, parsed)
                else:
                    lsn = self.applied_lsn + 1
                return dict(self._commit(stream, seq, parsed, lsn))
        finally:
            self._release()

    def replay_record(self, record) -> bool:
        """Re-apply one WAL record during recovery; returns whether it
        was applied (records at or below the checkpoint LSN are
        skipped).  Replay bypasses validation — a logged record was
        validated against exactly the state replay has rebuilt — but a
        corrupt-yet-checksum-valid record still surfaces as an error
        rather than silent divergence (``insert_edge``/``delete_edge``
        raise)."""
        with self._state_lock:
            if record.lsn <= self.applied_lsn:
                return False
            self._commit(
                record.stream, record.seq, list(record.mutations),
                record.lsn,
            )
            return True

    # -- internals -------------------------------------------------------
    def _admit(self) -> None:
        if self._budget is not None:
            reason = self._budget.exhausted()
            if reason is not None:
                self._count("budget")
                raise QueryError(
                    "overloaded",
                    f"ingest parked: resource budget exhausted ({reason})",
                )
        if self._max_inflight > 0:
            with self._inflight_lock:
                if self._inflight >= self._max_inflight:
                    self._count("overloaded")
                    raise QueryError(
                        "overloaded",
                        f"ingest queue full ({self._max_inflight} "
                        "in flight); back off and retry",
                    )
                self._inflight += 1

    def _release(self) -> None:
        if self._max_inflight > 0:
            with self._inflight_lock:
                self._inflight -= 1

    def _parse_batch(self, stream, seq, mutations) -> list:
        if not isinstance(stream, str) or not 1 <= len(stream) <= (
            MAX_STREAM_LEN
        ):
            raise QueryError(
                "bad_request",
                "'stream' must be a string of 1.."
                f"{MAX_STREAM_LEN} characters",
            )
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise QueryError(
                "bad_request", "'seq' must be a non-negative integer"
            )
        if not isinstance(mutations, list) or not mutations:
            raise QueryError(
                "bad_request", "'mutations' must be a non-empty list"
            )
        if len(mutations) > MAX_INGEST_MUTATIONS:
            raise QueryError(
                "bad_request",
                f"batch of {len(mutations)} mutations exceeds the cap "
                f"of {MAX_INGEST_MUTATIONS}",
            )
        parsed = []
        for index, item in enumerate(mutations):
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} must be [\"+\"|\"-\", u, v]",
                )
            sign, u, v = item
            if sign not in _SIGNS:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} has unknown sign {sign!r}",
                )
            for node in (u, v):
                if not isinstance(node, int) or isinstance(node, bool):
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index} endpoints must be integers",
                    )
                if not 0 <= node < self._dynamic.n:
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index}: node {node} out of range "
                        f"[0, {self._dynamic.n})",
                    )
            if u == v:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} is a self-loop ({u}, {v})",
                )
            parsed.append((sign, u, v))
        return parsed

    def _dry_run(self, parsed: list) -> None:
        """Check the whole batch applies cleanly against the live
        state (plus its own earlier toggles) — called under the state
        lock, *before* the WAL append, so the log never holds an
        inapplicable record and a rejected batch is a no-op."""
        overlay: dict[tuple[int, int], bool] = {}
        for sign, u, v in parsed:
            key = _ordered(u, v)
            exists = overlay.get(key)
            if exists is None:
                exists = self._dynamic.has_edge(u, v)
            if sign == "+" and exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) already exists"
                )
            if sign == "-" and not exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) does not exist"
                )
            overlay[key] = sign == "+"

    def _commit(self, stream, seq, parsed, lsn) -> dict:
        """Apply one validated batch; caller holds the state lock."""
        for sign, u, v in parsed:
            if sign == "+":
                self._dynamic.insert_edge(u, v)
            else:
                self._dynamic.delete_edge(u, v)
            self._cache.invalidate(u)
            self._cache.invalidate(v)
        self.epoch += 1
        self.applied_lsn = lsn
        self._pagerank_scores = None
        self._rep_snapshot = None
        result = {"applied": len(parsed), "lsn": lsn}
        self._dedup[stream] = (seq, tuple(parsed), result)
        self.metrics.registry.counter(
            "repro_ingest_applied_total"
        ).inc(len(parsed))
        return result

    def _count(self, reason: str) -> None:
        self.metrics.registry.counter(
            "repro_ingest_rejected_total", reason=reason
        ).inc()
