"""Mutable query engine: the ``ingest`` op behind the query service.

Extends :class:`~repro.service.engine.QueryEngine` over a
:class:`~repro.dynamic.summary.DynamicGraphSummary` so a live server
accepts streamed edge insertions/deletions while continuing to answer
reads.  The contract, end to end:

**Durability** — an accepted batch is appended (and fsynced, policy
permitting) to the :class:`~repro.durability.wal.WriteAheadLog`
*before* it is applied; the acknowledgement therefore implies the
mutation survives ``kill -9`` (see docs/resilience.md).

**Read consistency** — every mutation batch commits atomically under
one state lock and bumps a monotonically increasing ``epoch``; every
successful response echoes the epoch it was served at, and the LRU
cache is invalidated per dirty node (an edge toggle only changes the
neighbor sets of its two endpoints), not wholesale.  While crash
recovery is still replaying the WAL tail, reads are answered from the
partially-replayed state flagged ``"degraded": true`` — the
established degraded-mode convention — instead of being refused.

**Idempotence** — each ingest names a client ``stream`` and a
per-stream ``seq``.  The server remembers the last sequence (plus the
batch content and its result) per stream: a repeat of the last ``seq``
with the *same* mutations returns the cached result marked
``"duplicate": true`` without re-applying (the client retry path
resends the *original* sequence number after a transport error), a
repeat with *different* mutations is a structured ``bad_request``
(dedup identity is sequence + content, so a reused sequence number can
never silently swallow a new batch), and a rewound sequence is a
structured ``bad_request``.

**Backpressure** — at most ``max_inflight`` ingest requests may be
past admission at once, and an optional
:class:`~repro.resilience.guard.ResourceBudget` (memory ceiling) can
park ingest entirely; both reject with a structured ``overloaded``
error rather than a dropped connection.  Note the budget's memory
trip is sticky by design: once RSS crossed the ceiling, ingest stays
parked until restart.

**Atomicity of a batch** — the batch is validated against the live
state (plus its own earlier mutations) before the WAL append, so a
logged batch always applies cleanly; a rejected batch changes
nothing.  A ``dry_run`` ingest stops after that validation — nothing
is logged, applied, or remembered — which is the prepare half of the
cluster router's two-phase fan-out: every involved shard validates
its sub-batch first, and only when all accept does the commit round
run (see :meth:`repro.cluster.router.RouterEngine._ingest`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.durability.wal import ResummarizeRecord
from repro.dynamic.summary import DynamicGraphSummary
from repro.queries.pagerank import SummaryPageRank
from repro.service.engine import OPS, QueryEngine, QueryError
from repro.service.protocol import MAX_INGEST_MUTATIONS, MAX_STREAM_LEN

__all__ = ["MutableQueryEngine"]

_SIGNS = ("+", "-")


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class MutableQueryEngine(QueryEngine):
    """A :class:`QueryEngine` whose summary accepts live mutations.

    Parameters
    ----------
    dynamic:
        The corrections-overlay summary to serve and mutate.
    wal:
        Optional :class:`~repro.durability.wal.WriteAheadLog`; without
        one, mutations are volatile (tests, benchmarks) but the full
        ingest contract minus durability still holds.
    budget:
        Optional armed :class:`~repro.resilience.guard.ResourceBudget`
        consulted at ingest admission.
    max_inflight:
        Bound on concurrently admitted ingest requests (0 disables
        the bound).
    dedup_capacity:
        Bound on remembered dedup streams.  Every client instance
        mints a fresh stream id, so an unbounded map (and every
        checkpoint carrying it) would grow forever on a long-lived
        server; least-recently-*committed* streams are evicted beyond
        this cap (0 disables the bound), counted under
        ``repro_ingest_dedup_evictions_total``.  Recency advances only
        on commit — never on a duplicate-read hit — so eviction order
        is a pure function of the WAL and replay stays deterministic.
    """

    def __init__(
        self,
        dynamic: DynamicGraphSummary,
        *,
        wal=None,
        budget=None,
        max_inflight: int = 64,
        dedup_capacity: int = 4096,
        **kwargs,
    ):
        super().__init__(dynamic.to_representation(), **kwargs)
        self.ops = OPS + ("ingest",)
        self._dynamic = dynamic
        self._wal = wal
        self._budget = budget
        self._max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Guards the dynamic overlay, epoch, LSN and dedup map; reads
        #: take it only on a cache miss, writes for the whole commit.
        self._state_lock = threading.RLock()
        #: Bumped once per committed mutation batch; echoed on every
        #: successful response.
        self.epoch = 0
        #: LSN of the newest applied WAL record.
        self.applied_lsn = wal.last_lsn if wal is not None else 0
        #: stream id -> (last seq, its mutation tuple, its result dict),
        #: in commit-recency order (oldest first) for LRU eviction.
        #: The mutation tuple is the dedup fingerprint: a replay of the
        #: last seq must carry the same batch to count as a duplicate.
        self._dedup: OrderedDict[
            str, tuple[int, tuple[tuple[str, int, int], ...], dict]
        ] = OrderedDict()
        self._dedup_capacity = dedup_capacity
        #: True while crash recovery replays the WAL tail.
        self.replaying = False
        self._rep_snapshot: tuple[int, object] | None = None
        #: Background-maintenance bookkeeping (the ``stats`` section).
        self._maintenance = {
            "passes": 0,
            "abandoned": 0,
            "supernodes_processed": 0,
            "cost_reclaimed": 0,
        }

    # -- read path overrides ---------------------------------------------
    @property
    def representation(self):
        """A consistent snapshot of the live state, cached per epoch
        (PageRank builds and ``verify_against`` read it; per-request
        paths use the overlay directly)."""
        with self._state_lock:
            cached = self._rep_snapshot
            if cached is not None and cached[0] == self.epoch:
                return cached[1]
            rep = self._dynamic.to_representation()
            self._rep_snapshot = (self.epoch, rep)
            return rep

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError("bad_request", "'node' must be an integer")
        if not 0 <= node < self._dynamic.n:
            raise QueryError(
                "bad_request",
                f"node {node} out of range [0, {self._dynamic.n})",
            )

    def neighbors(self, node: int) -> frozenset[int]:
        self._check_node(node)
        cached = self._cache.get(node)
        if cached is not None:
            self.metrics.cache_hit()
            return cached
        self.metrics.cache_miss()
        # Expansion and cache fill happen under the state lock so a
        # concurrent commit can never interleave between computing a
        # neighbor set and caching it (which would cache a stale set
        # right past its invalidation).
        with self._state_lock:
            result = frozenset(self._dynamic.neighbors(node))
            self._cache.put(node, result)
        return result

    def pagerank_score(
        self,
        node: int,
        deadline: float | None = None,
        degraded_sink: list | None = None,
    ) -> float:
        """Exact score from a vector built on an epoch-consistent
        snapshot.  A commit invalidates the vector; if the epoch moves
        *while* a build is running, the just-built (self-consistent
        but already stale) vector answers this request without being
        installed, so no request ever sees a torn state and a
        sustained write load cannot livelock the build loop.
        """
        self._check_node(node)
        scores = self._pagerank_scores
        if scores is None:
            import time

            if (
                degraded_sink is not None
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                degraded_sink.append("pagerank")
                # n, m, and the degree must come from one lock
                # acquisition: a concurrent commit between them would
                # mix two epochs into one estimate (the lock is
                # reentrant, so the nested neighbors() call is fine).
                with self._state_lock:
                    n, m = self._dynamic.n, self._dynamic.m
                    degree = len(self.neighbors(node))
                return (1.0 - self._damping) / max(1, n) + (
                    self._damping * degree / max(1, 2 * m)
                )
            with self._pagerank_lock:
                scores = self._pagerank_scores
                if scores is None:
                    with self._state_lock:
                        built_at = self.epoch
                        rep = self.representation
                    scores = SummaryPageRank(rep).run(
                        self._damping, self._pagerank_iterations
                    )
                    with self._state_lock:
                        if self.epoch == built_at:
                            self._pagerank_scores = scores
        return float(scores[node])

    def _finalize(self, response: dict) -> dict:
        response["epoch"] = self.epoch
        if self.replaying and not response.get("degraded"):
            response["degraded"] = True
            self.metrics.degraded(response.get("op") or "unknown")
        return response

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, op, request, deadline, degraded_sink=None):
        if op == "ingest":
            return self.ingest(
                request.get("stream"),
                request.get("seq"),
                request.get("mutations"),
                dry_run=request.get("dry_run", False),
            )
        result = super()._dispatch(op, request, deadline, degraded_sink)
        if op == "stats" and isinstance(result, dict):
            result["maintenance"] = self.maintenance_stats()
        return result

    # -- the ingest op ---------------------------------------------------
    def ingest(self, stream, seq, mutations, *, dry_run=False) -> dict:
        """Validate, log, apply, and acknowledge one mutation batch.

        Returns ``{"applied", "lsn"}`` plus ``"duplicate": true`` for
        a deduplicated retry; the surrounding response carries the
        post-commit ``epoch``.  With ``dry_run`` the batch is only
        validated — ``{"validated": <count>}`` comes back, no WAL
        append, no state change, no dedup entry — except that a
        duplicate of the last acknowledged (seq, batch) still answers
        from the dedup cache, so a prepare round over an
        already-applied sub-batch reports acceptance rather than
        failing validation against the post-apply state.  Raises
        :class:`QueryError` with kind ``overloaded`` (backpressure,
        replay in progress) or ``bad_request`` (malformed or
        inapplicable batch, rewound sequence, or a reused sequence
        carrying different mutations).
        """
        if not isinstance(dry_run, bool):
            raise QueryError("bad_request", "'dry_run' must be a boolean")
        self._admit()
        try:
            if self.replaying:
                raise QueryError(
                    "overloaded",
                    "recovery replay in progress; retry shortly",
                )
            parsed = self._parse_batch(stream, seq, mutations)
            with self._state_lock:
                last = self._dedup.get(stream)
                if last is not None:
                    last_seq, last_batch, last_result = last
                    if seq == last_seq:
                        if tuple(parsed) != last_batch:
                            self._count("seq_reused")
                            raise QueryError(
                                "bad_request",
                                f"stream {stream!r} sequence {seq} reused "
                                "with different mutations; a retry must "
                                "resend the original batch",
                            )
                        self.metrics.registry.counter(
                            "repro_ingest_duplicates_total"
                        ).inc()
                        return {**last_result, "duplicate": True}
                    if seq < last_seq:
                        self._count("rewound")
                        raise QueryError(
                            "bad_request",
                            f"stream {stream!r} sequence rewound: got "
                            f"{seq}, last acknowledged {last_seq}",
                        )
                self._dry_run(parsed)
                if dry_run:
                    return {"validated": len(parsed)}
                if self._wal is not None:
                    lsn = self._wal.append(stream, seq, parsed)
                else:
                    lsn = self.applied_lsn + 1
                return dict(self._commit(stream, seq, parsed, lsn))
        finally:
            self._release()

    def replay_record(self, record) -> bool:
        """Re-apply one WAL record during recovery; returns whether it
        was applied (records at or below the checkpoint LSN are
        skipped).  Replay bypasses validation — a logged record was
        validated against exactly the state replay has rebuilt — but a
        corrupt-yet-checksum-valid record still surfaces as an error
        rather than silent divergence (``insert_edge``/``delete_edge``
        raise).  A :class:`~repro.durability.wal.ResummarizeRecord`
        re-runs the recorded maintenance pass: the re-encode is a pure
        function of the replayed state plus the recorded targets and
        merge cap, so the recovered structure stays bit-identical."""
        with self._state_lock:
            if record.lsn <= self.applied_lsn:
                return False
            if isinstance(record, ResummarizeRecord):
                self._apply_resummarize(
                    record.targets, record.max_merges, record.lsn
                )
            else:
                self._commit(
                    record.stream, record.seq, list(record.mutations),
                    record.lsn,
                )
            return True

    # -- background maintenance ------------------------------------------
    def maintenance_stats(self) -> dict:
        """The ``maintenance`` section of the ``stats`` op."""
        import math

        with self._state_lock:
            dirty = self._dynamic.dirty_supernodes()
            ratio = self._dynamic.relative_size
            return {
                **self._maintenance,
                "dirty_supernodes": len(dirty),
                "dirty_corrections": sum(dirty.values()),
                "cost": self._dynamic.cost,
                "base_cost": self._dynamic.base_cost,
                "relative_size": (
                    ratio if math.isfinite(ratio) else None
                ),
            }

    def maintenance_pass(
        self,
        *,
        max_supernodes: int = 64,
        max_merges: int | None = None,
        min_dirty: int = 1,
    ) -> dict:
        """One budgeted compactness-maintenance pass.

        Mirrors the ``pagerank_score`` build-then-check pattern: the
        dirtiest neighborhoods are selected and re-encoded on an
        epoch-consistent snapshot *outside* the state lock, then the
        new structure is swapped in under the lock only if the epoch
        is unchanged.  A committed pass behaves exactly like a
        mutation batch — ``resummarize`` WAL record first, then epoch
        bump, per-node LRU invalidation for every node whose
        super-node membership or correction structure changed, and
        snapshot/PageRank cache invalidation — so crash recovery
        replays it deterministically.  Returns an outcome dict
        (``outcome`` is ``idle``, ``committed``, ``abandoned``, or
        ``skipped``).
        """
        from repro.dynamic.maintenance import select_targets

        if self.replaying:
            return {"outcome": "skipped", "reason": "replaying"}
        with self._state_lock:
            built_at = self.epoch
            dirty = self._dynamic.dirty_supernodes()
            rep = self.representation
            factory = self._dynamic._make_summarizer
        targets = select_targets(
            dirty, rep,
            max_supernodes=max_supernodes, min_dirty=min_dirty,
        )
        if not targets:
            self._count_pass("idle")
            return {"outcome": "idle", "dirty_supernodes": len(dirty)}

        # The expensive re-encode runs on a scratch overlay built from
        # the snapshot; adopting its result under an unchanged epoch
        # is identical to having run the recorded pass in place.
        scratch = DynamicGraphSummary.from_representation(
            rep, summarizer_factory=factory, dirtiness=dirty
        )
        processed = scratch.resummarize_local(
            targets=targets, budget=self._merge_budget(max_merges)
        )
        new_rep = scratch.to_representation()
        new_dirty = scratch.dirty_supernodes()

        with self._state_lock:
            if self.epoch != built_at:
                self._maintenance["abandoned"] += 1
                self._count_pass("abandoned")
                return {
                    "outcome": "abandoned",
                    "targets": len(targets),
                    "epoch": self.epoch,
                }
            if self._wal is not None:
                lsn = self._wal.append_resummarize(
                    targets, max_merges=max_merges
                )
            else:
                lsn = self.applied_lsn + 1

            def install() -> int:
                dyn = self._dynamic
                dyn._install(new_rep)
                dyn._dirty = dict(new_dirty)
                dyn.num_rebuilds += 1
                return processed

            cost_before = self._dynamic.cost
            self._swap_in(install, targets, lsn)
            return {
                "outcome": "committed",
                "targets": len(targets),
                "processed": processed,
                "cost_before": cost_before,
                "cost_after": new_rep.cost,
                "lsn": lsn,
                "epoch": self.epoch,
            }

    def _apply_resummarize(self, targets, max_merges, lsn) -> int:
        """Replay one recorded maintenance pass in place; caller holds
        the state lock (recovery replay is single-threaded, so the
        out-of-lock build of the live path is unnecessary here)."""
        def install() -> int:
            return self._dynamic.resummarize_local(
                targets=targets, budget=self._merge_budget(max_merges)
            )

        return self._swap_in(install, targets, lsn)

    def _swap_in(self, install, targets, lsn) -> int:
        """Commit one maintenance re-encode like a mutation batch;
        caller holds the state lock.  ``install`` swaps the structure
        and returns the number of super-nodes processed."""
        dyn = self._dynamic
        cost_before = dyn.cost
        touched = {
            node
            for sid in targets
            if sid in dyn._supernodes
            for node in dyn._supernodes[sid]
        }
        old_corrections = dyn._additions | dyn._removals
        processed = install()
        for u, v in (dyn._additions | dyn._removals) ^ old_corrections:
            touched.add(u)
            touched.add(v)
        for node in touched:
            self._cache.invalidate(node)
        self.epoch += 1
        self.applied_lsn = lsn
        self._pagerank_scores = None
        self._rep_snapshot = None
        self._maintenance["passes"] += 1
        self._maintenance["supernodes_processed"] += processed
        self._maintenance["cost_reclaimed"] += cost_before - dyn.cost
        self._count_pass("committed")
        self.metrics.registry.counter(
            "repro_maintenance_supernodes_total"
        ).inc(processed)
        self.metrics.registry.gauge(
            "repro_maintenance_dirty_supernodes"
        ).set(len(dyn.dirty_supernodes()))
        return processed

    @staticmethod
    def _merge_budget(max_merges):
        if max_merges is None:
            return None
        from repro.resilience.guard import ResourceBudget

        return ResourceBudget(max_merges=max_merges)

    def _count_pass(self, outcome: str) -> None:
        self.metrics.registry.counter(
            "repro_maintenance_passes_total", outcome=outcome
        ).inc()

    # -- internals -------------------------------------------------------
    def _admit(self) -> None:
        if self._budget is not None:
            reason = self._budget.exhausted()
            if reason is not None:
                self._count("budget")
                raise QueryError(
                    "overloaded",
                    f"ingest parked: resource budget exhausted ({reason})",
                )
        if self._max_inflight > 0:
            with self._inflight_lock:
                if self._inflight >= self._max_inflight:
                    self._count("overloaded")
                    raise QueryError(
                        "overloaded",
                        f"ingest queue full ({self._max_inflight} "
                        "in flight); back off and retry",
                    )
                self._inflight += 1

    def _release(self) -> None:
        if self._max_inflight > 0:
            with self._inflight_lock:
                self._inflight -= 1

    def _parse_batch(self, stream, seq, mutations) -> list:
        if not isinstance(stream, str) or not 1 <= len(stream) <= (
            MAX_STREAM_LEN
        ):
            raise QueryError(
                "bad_request",
                "'stream' must be a string of 1.."
                f"{MAX_STREAM_LEN} characters",
            )
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise QueryError(
                "bad_request", "'seq' must be a non-negative integer"
            )
        if not isinstance(mutations, list) or not mutations:
            raise QueryError(
                "bad_request", "'mutations' must be a non-empty list"
            )
        if len(mutations) > MAX_INGEST_MUTATIONS:
            raise QueryError(
                "bad_request",
                f"batch of {len(mutations)} mutations exceeds the cap "
                f"of {MAX_INGEST_MUTATIONS}",
            )
        parsed = []
        for index, item in enumerate(mutations):
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} must be [\"+\"|\"-\", u, v]",
                )
            sign, u, v = item
            if sign not in _SIGNS:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} has unknown sign {sign!r}",
                )
            for node in (u, v):
                if not isinstance(node, int) or isinstance(node, bool):
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index} endpoints must be integers",
                    )
                if not 0 <= node < self._dynamic.n:
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index}: node {node} out of range "
                        f"[0, {self._dynamic.n})",
                    )
            if u == v:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} is a self-loop ({u}, {v})",
                )
            parsed.append((sign, u, v))
        return parsed

    def _dry_run(self, parsed: list) -> None:
        """Check the whole batch applies cleanly against the live
        state (plus its own earlier toggles) — called under the state
        lock, *before* the WAL append, so the log never holds an
        inapplicable record and a rejected batch is a no-op."""
        overlay: dict[tuple[int, int], bool] = {}
        for sign, u, v in parsed:
            key = _ordered(u, v)
            exists = overlay.get(key)
            if exists is None:
                exists = self._dynamic.has_edge(u, v)
            if sign == "+" and exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) already exists"
                )
            if sign == "-" and not exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) does not exist"
                )
            overlay[key] = sign == "+"

    def _commit(self, stream, seq, parsed, lsn) -> dict:
        """Apply one validated batch; caller holds the state lock."""
        for sign, u, v in parsed:
            if sign == "+":
                self._dynamic.insert_edge(u, v)
            else:
                self._dynamic.delete_edge(u, v)
            self._cache.invalidate(u)
            self._cache.invalidate(v)
        self.epoch += 1
        self.applied_lsn = lsn
        self._pagerank_scores = None
        self._rep_snapshot = None
        result = {"applied": len(parsed), "lsn": lsn}
        self._dedup[stream] = (seq, tuple(parsed), result)
        self._dedup.move_to_end(stream)
        if self._dedup_capacity > 0:
            while len(self._dedup) > self._dedup_capacity:
                self._dedup.popitem(last=False)
                self.metrics.registry.counter(
                    "repro_ingest_dedup_evictions_total"
                ).inc()
        self.metrics.registry.counter(
            "repro_ingest_applied_total"
        ).inc(len(parsed))
        return result

    def _count(self, reason: str) -> None:
        self.metrics.registry.counter(
            "repro_ingest_rejected_total", reason=reason
        ).inc()
