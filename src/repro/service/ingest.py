"""Mutable query engine: the ``ingest`` op behind the query service.

Extends :class:`~repro.service.engine.QueryEngine` over a
:class:`~repro.dynamic.summary.DynamicGraphSummary` so a live server
accepts streamed edge insertions/deletions while continuing to answer
reads.  The contract, end to end:

**Durability** — an accepted batch is appended (and fsynced, policy
permitting) to the :class:`~repro.durability.wal.WriteAheadLog`
*before* it is applied; the acknowledgement therefore implies the
mutation survives ``kill -9`` (see docs/resilience.md).

**Read consistency** — every mutation batch commits atomically under
one state lock and bumps a monotonically increasing ``epoch``; every
successful response echoes the epoch it was served at, and the LRU
cache is invalidated per dirty node (an edge toggle only changes the
neighbor sets of its two endpoints), not wholesale.  While crash
recovery is still replaying the WAL tail, reads are answered from the
partially-replayed state flagged ``"degraded": true`` — the
established degraded-mode convention — instead of being refused.

**Idempotence** — each ingest names a client ``stream`` and a
per-stream ``seq``.  The server remembers the last sequence (plus the
batch content and its result) per stream: a repeat of the last ``seq``
with the *same* mutations returns the cached result marked
``"duplicate": true`` without re-applying (the client retry path
resends the *original* sequence number after a transport error), a
repeat with *different* mutations is a structured ``bad_request``
(dedup identity is sequence + content, so a reused sequence number can
never silently swallow a new batch), and a rewound sequence is a
structured ``bad_request``.

**Backpressure** — at most ``max_inflight`` ingest requests may be
past admission at once, and an optional
:class:`~repro.resilience.guard.ResourceBudget` (memory ceiling) can
park ingest entirely; both reject with a structured ``overloaded``
error rather than a dropped connection.  Note the budget's memory
trip is sticky by design: once RSS crossed the ceiling, ingest stays
parked until restart.

**Atomicity of a batch** — the batch is validated against the live
state (plus its own earlier mutations) before the WAL append, so a
logged batch always applies cleanly; a rejected batch changes
nothing.  A ``dry_run`` ingest stops after that validation — nothing
is logged, applied, or remembered — which is the prepare half of the
cluster router's two-phase fan-out: every involved shard validates
its sub-batch first, and only when all accept does the commit round
run (see :meth:`repro.cluster.router.RouterEngine._ingest`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.durability.replication import record_from_wire
from repro.durability.wal import ResummarizeRecord, TermRecord, WalRecord
from repro.dynamic.summary import DynamicGraphSummary
from repro.queries.pagerank import SummaryPageRank
from repro.service.engine import OPS, QueryEngine, QueryError
from repro.service.protocol import MAX_INGEST_MUTATIONS, MAX_STREAM_LEN

__all__ = ["MutableQueryEngine", "REPLICATION_ROLES"]

#: A replica is exactly one of these at any time; promotion and
#: fencing move it between them (docs/resilience.md).
REPLICATION_ROLES = ("primary", "follower")

_SIGNS = ("+", "-")


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


class MutableQueryEngine(QueryEngine):
    """A :class:`QueryEngine` whose summary accepts live mutations.

    Parameters
    ----------
    dynamic:
        The corrections-overlay summary to serve and mutate.
    wal:
        Optional :class:`~repro.durability.wal.WriteAheadLog`; without
        one, mutations are volatile (tests, benchmarks) but the full
        ingest contract minus durability still holds.
    budget:
        Optional armed :class:`~repro.resilience.guard.ResourceBudget`
        consulted at ingest admission.
    max_inflight:
        Bound on concurrently admitted ingest requests (0 disables
        the bound).
    dedup_capacity:
        Bound on remembered dedup streams.  Every client instance
        mints a fresh stream id, so an unbounded map (and every
        checkpoint carrying it) would grow forever on a long-lived
        server; least-recently-*committed* streams are evicted beyond
        this cap (0 disables the bound), counted under
        ``repro_ingest_dedup_evictions_total``.  Recency advances only
        on commit — never on a duplicate-read hit — so eviction order
        is a pure function of the WAL and replay stays deterministic.
    """

    def __init__(
        self,
        dynamic: DynamicGraphSummary,
        *,
        wal=None,
        budget=None,
        max_inflight: int = 64,
        dedup_capacity: int = 4096,
        **kwargs,
    ):
        super().__init__(dynamic.to_representation(), **kwargs)
        self.ops = OPS + ("ingest", "replicate", "repl_status")
        self._dynamic = dynamic
        self._wal = wal
        self._budget = budget
        self._max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: Guards the dynamic overlay, epoch, LSN and dedup map; reads
        #: take it only on a cache miss, writes for the whole commit.
        self._state_lock = threading.RLock()
        #: Bumped once per committed mutation batch; echoed on every
        #: successful response.
        self.epoch = 0
        #: LSN of the newest applied WAL record.
        self.applied_lsn = wal.last_lsn if wal is not None else 0
        #: stream id -> (last seq, its mutation tuple, its result dict),
        #: in commit-recency order (oldest first) for LRU eviction.
        #: The mutation tuple is the dedup fingerprint: a replay of the
        #: last seq must carry the same batch to count as a duplicate.
        self._dedup: OrderedDict[
            str, tuple[int, tuple[tuple[str, int, int], ...], dict]
        ] = OrderedDict()
        self._dedup_capacity = dedup_capacity
        #: True while crash recovery replays the WAL tail.
        self.replaying = False
        self._rep_snapshot: tuple[int, object] | None = None
        #: Background-maintenance bookkeeping (the ``stats`` section).
        self._maintenance = {
            "passes": 0,
            "abandoned": 0,
            "supernodes_processed": 0,
            "cost_reclaimed": 0,
        }
        #: Replication state.  An unreplicated engine is a "primary"
        #: with term 0 and no manager — every legacy path unchanged.
        self.role = "primary"
        self.term = 0
        self._replicator = None
        self._repl_config: dict | None = None
        self._checkpoint_store = None

    # -- read path overrides ---------------------------------------------
    @property
    def representation(self):
        """A consistent snapshot of the live state, cached per epoch
        (PageRank builds and ``verify_against`` read it; per-request
        paths use the overlay directly)."""
        with self._state_lock:
            cached = self._rep_snapshot
            if cached is not None and cached[0] == self.epoch:
                return cached[1]
            rep = self._dynamic.to_representation()
            self._rep_snapshot = (self.epoch, rep)
            return rep

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError("bad_request", "'node' must be an integer")
        if not 0 <= node < self._dynamic.n:
            raise QueryError(
                "bad_request",
                f"node {node} out of range [0, {self._dynamic.n})",
            )

    def neighbors(self, node: int) -> frozenset[int]:
        self._check_node(node)
        cached = self._cache.get(node)
        if cached is not None:
            self.metrics.cache_hit()
            return cached
        self.metrics.cache_miss()
        # Expansion and cache fill happen under the state lock so a
        # concurrent commit can never interleave between computing a
        # neighbor set and caching it (which would cache a stale set
        # right past its invalidation).
        with self._state_lock:
            result = frozenset(self._dynamic.neighbors(node))
            self._cache.put(node, result)
        return result

    def pagerank_score(
        self,
        node: int,
        deadline: float | None = None,
        degraded_sink: list | None = None,
    ) -> float:
        """Exact score from a vector built on an epoch-consistent
        snapshot.  A commit invalidates the vector; if the epoch moves
        *while* a build is running, the just-built (self-consistent
        but already stale) vector answers this request without being
        installed, so no request ever sees a torn state and a
        sustained write load cannot livelock the build loop.
        """
        self._check_node(node)
        scores = self._pagerank_scores
        if scores is None:
            import time

            if (
                degraded_sink is not None
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                degraded_sink.append("pagerank")
                # n, m, and the degree must come from one lock
                # acquisition: a concurrent commit between them would
                # mix two epochs into one estimate (the lock is
                # reentrant, so the nested neighbors() call is fine).
                with self._state_lock:
                    n, m = self._dynamic.n, self._dynamic.m
                    degree = len(self.neighbors(node))
                return (1.0 - self._damping) / max(1, n) + (
                    self._damping * degree / max(1, 2 * m)
                )
            with self._pagerank_lock:
                scores = self._pagerank_scores
                if scores is None:
                    with self._state_lock:
                        built_at = self.epoch
                        rep = self.representation
                    scores = SummaryPageRank(rep).run(
                        self._damping, self._pagerank_iterations
                    )
                    with self._state_lock:
                        if self.epoch == built_at:
                            self._pagerank_scores = scores
        return float(scores[node])

    def _finalize(self, response: dict) -> dict:
        response["epoch"] = self.epoch
        if self.replaying and not response.get("degraded"):
            response["degraded"] = True
            self.metrics.degraded(response.get("op") or "unknown")
        return response

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, op, request, deadline, degraded_sink=None):
        if op == "ingest":
            return self.ingest(
                request.get("stream"),
                request.get("seq"),
                request.get("mutations"),
                dry_run=request.get("dry_run", False),
            )
        if op == "replicate":
            return self.apply_replicated(
                request.get("term"),
                after_lsn=request.get("after_lsn"),
                records=request.get("records"),
                snapshot=request.get("snapshot"),
                promote=request.get("promote", False),
                followers=request.get("followers"),
                acks=request.get("acks"),
            )
        if op == "repl_status":
            return self.repl_status()
        result = super()._dispatch(op, request, deadline, degraded_sink)
        if op == "stats" and isinstance(result, dict):
            result["maintenance"] = self.maintenance_stats()
        return result

    # -- the ingest op ---------------------------------------------------
    def ingest(self, stream, seq, mutations, *, dry_run=False) -> dict:
        """Validate, log, apply, and acknowledge one mutation batch.

        Returns ``{"applied", "lsn"}`` plus ``"duplicate": true`` for
        a deduplicated retry; the surrounding response carries the
        post-commit ``epoch``.  With ``dry_run`` the batch is only
        validated — ``{"validated": <count>}`` comes back, no WAL
        append, no state change, no dedup entry — except that a
        duplicate of the last acknowledged (seq, batch) still answers
        from the dedup cache, so a prepare round over an
        already-applied sub-batch reports acceptance rather than
        failing validation against the post-apply state.  Raises
        :class:`QueryError` with kind ``overloaded`` (backpressure,
        replay in progress) or ``bad_request`` (malformed or
        inapplicable batch, rewound sequence, or a reused sequence
        carrying different mutations).
        """
        if not isinstance(dry_run, bool):
            raise QueryError("bad_request", "'dry_run' must be a boolean")
        self._admit()
        try:
            if self.replaying:
                raise QueryError(
                    "overloaded",
                    "recovery replay in progress; retry shortly",
                )
            if self.role != "primary":
                self._count("not_primary")
                raise QueryError(
                    "not_primary",
                    f"replica is a follower (term {self.term}); "
                    "ingest goes to the shard's primary",
                )
            parsed = self._parse_batch(stream, seq, mutations)
            with self._state_lock:
                result = None
                last = self._dedup.get(stream)
                if last is not None:
                    last_seq, last_batch, last_result = last
                    if seq == last_seq:
                        if tuple(parsed) != last_batch:
                            self._count("seq_reused")
                            raise QueryError(
                                "bad_request",
                                f"stream {stream!r} sequence {seq} reused "
                                "with different mutations; a retry must "
                                "resend the original batch",
                            )
                        self.metrics.registry.counter(
                            "repro_ingest_duplicates_total"
                        ).inc()
                        result = {**last_result, "duplicate": True}
                    elif seq < last_seq:
                        self._count("rewound")
                        raise QueryError(
                            "bad_request",
                            f"stream {stream!r} sequence rewound: got "
                            f"{seq}, last acknowledged {last_seq}",
                        )
                if result is None:
                    self._dry_run(parsed)
                    if dry_run:
                        return {"validated": len(parsed)}
                    if self._wal is not None:
                        lsn = self._wal.append(stream, seq, parsed)
                    else:
                        lsn = self.applied_lsn + 1
                    result = dict(self._commit(stream, seq, parsed, lsn))
            # Outside the state lock: make the batch replication-
            # durable before acknowledging.  A duplicate re-awaits the
            # quorum too — its original ack already implied one, and a
            # retry that raced a promotion must get the same guarantee.
            if self._replicator is not None and "lsn" in result:
                self._replicator.publish(result["lsn"])
            return result
        finally:
            self._release()

    def replay_record(self, record) -> bool:
        """Re-apply one WAL record during recovery; returns whether it
        was applied (records at or below the checkpoint LSN are
        skipped).  Replay bypasses validation — a logged record was
        validated against exactly the state replay has rebuilt — but a
        corrupt-yet-checksum-valid record still surfaces as an error
        rather than silent divergence (``insert_edge``/``delete_edge``
        raise).  A :class:`~repro.durability.wal.ResummarizeRecord`
        re-runs the recorded maintenance pass: the re-encode is a pure
        function of the replayed state plus the recorded targets and
        merge cap, so the recovered structure stays bit-identical."""
        with self._state_lock:
            if record.lsn <= self.applied_lsn:
                return False
            if isinstance(record, TermRecord):
                # No epoch bump (the primary's commit didn't bump one
                # either) — just the durable leadership cursor.
                if record.term > self.term:
                    self.term = record.term
                self.applied_lsn = record.lsn
            elif isinstance(record, ResummarizeRecord):
                self._apply_resummarize(
                    record.targets, record.max_merges, record.lsn
                )
            else:
                self._commit(
                    record.stream, record.seq, list(record.mutations),
                    record.lsn,
                )
            return True

    # -- replication -----------------------------------------------------
    def configure_replication(
        self,
        *,
        role: str = "primary",
        followers=(),
        acks: str = "quorum",
        client_factory=None,
        store=None,
        quorum_timeout: float = 10.0,
    ) -> None:
        """Wire this engine into a replicated shard.

        ``role`` is the replica's *configured* starting role; the live
        role moves with promotions and fencing.  ``followers`` is the
        primary's list of ``(host, port)`` sibling replicas.  ``store``
        is the local checkpoint store — required for crash-safe
        snapshot installs on a durable follower.  ``client_factory``
        is injectable so tests replicate in-process without sockets.
        """
        if role not in REPLICATION_ROLES:
            raise ValueError(
                f"unknown replication role {role!r}; "
                f"choose from {', '.join(REPLICATION_ROLES)}"
            )
        self._checkpoint_store = store
        self._repl_config = {
            "acks": acks,
            "client_factory": client_factory,
            "quorum_timeout": quorum_timeout,
        }
        with self._state_lock:
            self.role = role
            if role == "primary":
                if followers:
                    self._start_replicator(followers)
                if self.term == 0:
                    # A fresh replicated log opens at term 1; a
                    # recovered term (checkpoint/WAL) is kept as-is.
                    self._stamp_term(1)
            self._repl_gauges()

    def _start_replicator(self, followers) -> None:
        """Caller holds the state lock (or is single-threaded setup)."""
        from repro.durability.replication import ReplicationManager

        cfg = self._repl_config or {}
        manager = ReplicationManager(
            self,
            [(host, int(port)) for host, port in followers],
            acks=cfg.get("acks", "quorum"),
            wal=self._wal,
            client_factory=cfg.get("client_factory"),
            quorum_timeout=cfg.get("quorum_timeout", 10.0),
            registry=self.metrics.registry,
        )
        self._replicator = manager.start()

    def _stamp_term(self, term: int) -> int:
        """Durably open a leadership term; caller holds the state
        lock.  The term record rides the replication stream like any
        committed record, so follower logs stay byte-identical."""
        self.term = term
        if self._wal is not None:
            lsn = self._wal.append_term(term)
        else:
            lsn = self.applied_lsn + 1
        self.applied_lsn = lsn
        if self._replicator is not None:
            self._replicator.record_committed(
                TermRecord(lsn=lsn, term=term)
            )
        self._repl_gauges()
        return lsn

    def snapshot_state(self) -> dict:
        """One consistent checkpoint cut (the replication snapshot)."""
        from repro.durability.recovery import engine_state

        with self._state_lock:
            return engine_state(self)

    def step_down(self, term: int | None = None) -> None:
        """Demote to follower — this replica observed a higher term
        (it was fenced, or a newer primary replicated to it)."""
        with self._state_lock:
            self.role = "follower"
            if term is not None and term > self.term:
                self.term = term
            replicator, self._replicator = self._replicator, None
            self._repl_gauges()
        self.metrics.registry.counter(
            "repro_replication_role_changes_total", role="follower"
        ).inc()
        if replicator is not None and not replicator.stopped:
            replicator.stop()

    def apply_replicated(
        self,
        term,
        *,
        after_lsn=None,
        records=None,
        snapshot=None,
        promote=False,
        followers=None,
        acks=None,
    ) -> dict:
        """Handle one ``replicate`` frame from a (claimed) primary.

        Fencing first: a frame from a term below ours is rejected with
        a structured ``fenced`` error — the stale sender must step
        down.  A frame from a higher term demotes *us* if we thought
        we were primary, and is otherwise adopted.  Then either a
        checkpoint ``snapshot`` is installed (wiping the local log —
        the tail across a term change or compaction gap cannot be
        trusted), or ``records`` are appended to the local WAL and
        applied in LSN order through the same commit path live ingest
        uses, which is what keeps follower summaries — epochs, dedup
        state, bytes — identical to the primary's.
        """
        if not isinstance(term, int) or isinstance(term, bool) or term < 1:
            raise QueryError(
                "bad_request", "'term' must be a positive integer"
            )
        if promote:
            return self._promote(term, followers or (), acks)
        if term > self.term and self.role == "primary":
            # A newer primary exists; stop competing before applying.
            self.step_down(term)
        with self._state_lock:
            if term < self.term:
                self.metrics.registry.counter(
                    "repro_replication_fenced_total"
                ).inc()
                raise QueryError(
                    "fenced",
                    f"replicate from term {term} rejected: "
                    f"local term is {self.term}",
                )
            prior_term = self.term
            if term > self.term:
                self.term = term
                self._repl_gauges()
            if snapshot is not None:
                self._install_snapshot_locked(snapshot)
                return self._repl_ack(applied=1)
            applied = 0
            if records:
                local_last = (
                    self._wal.last_lsn
                    if self._wal is not None
                    else self.applied_lsn
                )
                if isinstance(after_lsn, int) and after_lsn > local_last:
                    raise QueryError(
                        "bad_request",
                        f"replication gap: stream resumes after lsn "
                        f"{after_lsn} but the local log ends at "
                        f"{local_last}",
                    )
                if (
                    term > prior_term
                    and isinstance(after_lsn, int)
                    and local_last > after_lsn
                ):
                    # First frame of a new term, and our log extends
                    # past the primary's cursor.  Within one term a
                    # follower log is always a prefix of the
                    # primary's, so overlap is just a re-ship — but
                    # across a term change our suffix may be a dead
                    # primary's unreplicated tail, and appending over
                    # it would silently diverge.  Demand a snapshot.
                    raise QueryError(
                        "bad_request",
                        f"possible divergence across term change "
                        f"({prior_term} -> {term}): local log ends at "
                        f"{local_last}, past the stream cursor "
                        f"{after_lsn}; snapshot required",
                    )
                for obj in records:
                    try:
                        record = record_from_wire(obj)
                    except ValueError as exc:
                        raise QueryError("bad_request", str(exc))
                    applied += self._apply_record_locked(record)
            return self._repl_ack(applied=applied)

    def _repl_ack(self, *, applied: int) -> dict:
        """Caller holds the state lock.  ``last_lsn`` is the durable
        high-water mark the primary advances its cursor to."""
        return {
            "applied": applied,
            "last_lsn": (
                self._wal.last_lsn
                if self._wal is not None
                else self.applied_lsn
            ),
            "applied_lsn": self.applied_lsn,
            "term": self.term,
            "role": self.role,
        }

    def _apply_record_locked(self, record) -> int:
        """Durably append then apply one shipped record; idempotent
        per LSN on both the log and the state."""
        wal_last = self._wal.last_lsn if self._wal is not None else None
        if isinstance(record, TermRecord):
            if wal_last is not None and record.lsn > wal_last:
                self._wal.append_term(record.term, lsn=record.lsn)
            if record.lsn <= self.applied_lsn:
                return 0
            if record.term > self.term:
                self.term = record.term
                self._repl_gauges()
            self.applied_lsn = record.lsn
            return 1
        if wal_last is not None and record.lsn > wal_last:
            if isinstance(record, ResummarizeRecord):
                self._wal.append_resummarize(
                    record.targets,
                    max_merges=record.max_merges,
                    lsn=record.lsn,
                )
            else:
                self._wal.append(
                    record.stream, record.seq, list(record.mutations),
                    lsn=record.lsn,
                )
        if record.lsn <= self.applied_lsn:
            return 0
        if isinstance(record, ResummarizeRecord):
            self._apply_resummarize(
                record.targets, record.max_merges, record.lsn
            )
        else:
            self._commit(
                record.stream, record.seq, list(record.mutations),
                record.lsn,
            )
        return 1

    def _install_snapshot_locked(self, snapshot) -> None:
        """Replace the whole local state with the primary's checkpoint
        cut; caller holds the state lock.

        The local WAL is wiped (`reset`) — across a term change or a
        compaction gap nothing in it can be trusted — and the
        checkpoint is persisted *before* further records are accepted,
        so a crash right after the install recovers at the snapshot,
        not at a stale pre-divergence checkpoint.
        """
        try:
            from repro.durability.recovery import (
                state_to_representation,
            )

            state = dict(snapshot)
            rep = state_to_representation(state["representation"])
            base_cost = int(state["base_cost"])
            epoch = int(state["epoch"])
            applied_lsn = int(state["applied_lsn"])
            term = int(state.get("term", self.term))
            dedup: OrderedDict = OrderedDict()
            for stream, seq, batch, result in state.get("dedup", []):
                dedup[str(stream)] = (
                    int(seq),
                    tuple(
                        (str(op), int(u), int(v)) for op, u, v in batch
                    ),
                    dict(result),
                )
            dirtiness = {
                int(sid): int(count)
                for sid, count in state.get("dirty", [])
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError("bad_request", f"malformed snapshot: {exc}")
        self._dynamic = DynamicGraphSummary.from_representation(
            rep,
            summarizer_factory=self._dynamic._make_summarizer,
            base_cost=base_cost,
            dirtiness=dirtiness,
        )
        self.epoch = epoch
        self.applied_lsn = applied_lsn
        self.term = max(self.term, term)
        self._dedup = dedup
        self._pagerank_scores = None
        self._rep_snapshot = None
        self._cache = type(self._cache)(self._cache.capacity)
        if self._wal is not None:
            self._wal.reset(applied_lsn, term=self.term)
        if self._checkpoint_store is not None:
            from repro.durability.recovery import engine_state

            self._checkpoint_store.save(
                engine_state(self), step=applied_lsn
            )
        self._repl_gauges()
        self.metrics.registry.counter(
            "repro_replication_snapshots_installed_total"
        ).inc()

    def _promote(self, term, followers, acks) -> dict:
        """Take over as the shard's primary at ``term`` (the router
        picked this replica as the most caught-up survivor)."""
        with self._state_lock:
            if term <= self.term:
                raise QueryError(
                    "fenced",
                    f"stale promotion: term {term} is not past "
                    f"local term {self.term}",
                )
            old, self._replicator = self._replicator, None
            self.role = "primary"
            if acks:
                self._repl_config = {
                    **(self._repl_config or {}), "acks": acks,
                }
            if followers:
                self._start_replicator(
                    [(host, int(port)) for host, port in followers]
                )
            self._stamp_term(term)
            status = self._repl_ack(applied=0)
        self.metrics.registry.counter(
            "repro_replication_role_changes_total", role="primary"
        ).inc()
        if old is not None and not old.stopped:
            old.stop()
        return status

    def repl_status(self) -> dict:
        """The ``repl_status`` op: role, term, durable and applied
        high-water marks, plus per-follower cursors on a primary."""
        with self._state_lock:
            status = {
                "role": self.role,
                "term": self.term,
                "epoch": self.epoch,
                "applied_lsn": self.applied_lsn,
                "last_lsn": (
                    self._wal.last_lsn
                    if self._wal is not None
                    else self.applied_lsn
                ),
                "replaying": self.replaying,
            }
            replicator = self._replicator
        if replicator is not None:
            status.update(replicator.status())
        return status

    def stop_replication(self) -> None:
        """Shutdown hook: stop the shipper thread, if any."""
        replicator, self._replicator = self._replicator, None
        if replicator is not None and not replicator.stopped:
            replicator.stop()

    def _repl_gauges(self) -> None:
        self.metrics.registry.gauge("repro_replication_term").set(
            self.term
        )
        self.metrics.registry.gauge("repro_replication_role").set(
            1 if self.role == "primary" else 0
        )

    # -- background maintenance ------------------------------------------
    def maintenance_stats(self) -> dict:
        """The ``maintenance`` section of the ``stats`` op."""
        import math

        with self._state_lock:
            dirty = self._dynamic.dirty_supernodes()
            ratio = self._dynamic.relative_size
            return {
                **self._maintenance,
                "dirty_supernodes": len(dirty),
                "dirty_corrections": sum(dirty.values()),
                "cost": self._dynamic.cost,
                "base_cost": self._dynamic.base_cost,
                "relative_size": (
                    ratio if math.isfinite(ratio) else None
                ),
            }

    def maintenance_pass(
        self,
        *,
        max_supernodes: int = 64,
        max_merges: int | None = None,
        min_dirty: int = 1,
    ) -> dict:
        """One budgeted compactness-maintenance pass.

        Mirrors the ``pagerank_score`` build-then-check pattern: the
        dirtiest neighborhoods are selected and re-encoded on an
        epoch-consistent snapshot *outside* the state lock, then the
        new structure is swapped in under the lock only if the epoch
        is unchanged.  A committed pass behaves exactly like a
        mutation batch — ``resummarize`` WAL record first, then epoch
        bump, per-node LRU invalidation for every node whose
        super-node membership or correction structure changed, and
        snapshot/PageRank cache invalidation — so crash recovery
        replays it deterministically.  Returns an outcome dict
        (``outcome`` is ``idle``, ``committed``, ``abandoned``, or
        ``skipped``).
        """
        from repro.dynamic.maintenance import select_targets

        if self.replaying:
            return {"outcome": "skipped", "reason": "replaying"}
        if self.role != "primary":
            # Followers receive committed passes as resummarize
            # records in the replication stream; running their own
            # would fork the log.
            return {"outcome": "skipped", "reason": "follower"}
        with self._state_lock:
            built_at = self.epoch
            dirty = self._dynamic.dirty_supernodes()
            rep = self.representation
            factory = self._dynamic._make_summarizer
        targets = select_targets(
            dirty, rep,
            max_supernodes=max_supernodes, min_dirty=min_dirty,
        )
        if not targets:
            self._count_pass("idle")
            return {"outcome": "idle", "dirty_supernodes": len(dirty)}

        # The expensive re-encode runs on a scratch overlay built from
        # the snapshot; adopting its result under an unchanged epoch
        # is identical to having run the recorded pass in place.
        scratch = DynamicGraphSummary.from_representation(
            rep, summarizer_factory=factory, dirtiness=dirty
        )
        processed = scratch.resummarize_local(
            targets=targets, budget=self._merge_budget(max_merges)
        )
        new_rep = scratch.to_representation()
        new_dirty = scratch.dirty_supernodes()

        with self._state_lock:
            if self.epoch != built_at:
                self._maintenance["abandoned"] += 1
                self._count_pass("abandoned")
                return {
                    "outcome": "abandoned",
                    "targets": len(targets),
                    "epoch": self.epoch,
                }
            if self._wal is not None:
                lsn = self._wal.append_resummarize(
                    targets, max_merges=max_merges
                )
            else:
                lsn = self.applied_lsn + 1

            def install() -> int:
                dyn = self._dynamic
                dyn._install(new_rep)
                dyn._dirty = dict(new_dirty)
                dyn.num_rebuilds += 1
                return processed

            cost_before = self._dynamic.cost
            self._swap_in(install, targets, lsn)
            if self._replicator is not None:
                self._replicator.record_committed(
                    ResummarizeRecord(
                        lsn=lsn, targets=tuple(targets),
                        max_merges=max_merges,
                    )
                )
            outcome = {
                "outcome": "committed",
                "targets": len(targets),
                "processed": processed,
                "cost_before": cost_before,
                "cost_after": new_rep.cost,
                "lsn": lsn,
                "epoch": self.epoch,
            }
        # Maintenance commits carry no client acknowledgement, so they
        # ship in the background rather than awaiting a quorum.
        if self._replicator is not None:
            self._replicator.notify()
        return outcome

    def _apply_resummarize(self, targets, max_merges, lsn) -> int:
        """Replay one recorded maintenance pass in place; caller holds
        the state lock (recovery replay is single-threaded, so the
        out-of-lock build of the live path is unnecessary here)."""
        def install() -> int:
            return self._dynamic.resummarize_local(
                targets=targets, budget=self._merge_budget(max_merges)
            )

        return self._swap_in(install, targets, lsn)

    def _swap_in(self, install, targets, lsn) -> int:
        """Commit one maintenance re-encode like a mutation batch;
        caller holds the state lock.  ``install`` swaps the structure
        and returns the number of super-nodes processed."""
        dyn = self._dynamic
        cost_before = dyn.cost
        touched = {
            node
            for sid in targets
            if sid in dyn._supernodes
            for node in dyn._supernodes[sid]
        }
        old_corrections = dyn._additions | dyn._removals
        processed = install()
        for u, v in (dyn._additions | dyn._removals) ^ old_corrections:
            touched.add(u)
            touched.add(v)
        for node in touched:
            self._cache.invalidate(node)
        self.epoch += 1
        self.applied_lsn = lsn
        self._pagerank_scores = None
        self._rep_snapshot = None
        self._maintenance["passes"] += 1
        self._maintenance["supernodes_processed"] += processed
        self._maintenance["cost_reclaimed"] += cost_before - dyn.cost
        self._count_pass("committed")
        self.metrics.registry.counter(
            "repro_maintenance_supernodes_total"
        ).inc(processed)
        self.metrics.registry.gauge(
            "repro_maintenance_dirty_supernodes"
        ).set(len(dyn.dirty_supernodes()))
        return processed

    @staticmethod
    def _merge_budget(max_merges):
        if max_merges is None:
            return None
        from repro.resilience.guard import ResourceBudget

        return ResourceBudget(max_merges=max_merges)

    def _count_pass(self, outcome: str) -> None:
        self.metrics.registry.counter(
            "repro_maintenance_passes_total", outcome=outcome
        ).inc()

    # -- internals -------------------------------------------------------
    def _admit(self) -> None:
        if self._budget is not None:
            reason = self._budget.exhausted()
            if reason is not None:
                self._count("budget")
                raise QueryError(
                    "overloaded",
                    f"ingest parked: resource budget exhausted ({reason})",
                )
        if self._max_inflight > 0:
            with self._inflight_lock:
                if self._inflight >= self._max_inflight:
                    self._count("overloaded")
                    raise QueryError(
                        "overloaded",
                        f"ingest queue full ({self._max_inflight} "
                        "in flight); back off and retry",
                    )
                self._inflight += 1

    def _release(self) -> None:
        if self._max_inflight > 0:
            with self._inflight_lock:
                self._inflight -= 1

    def _parse_batch(self, stream, seq, mutations) -> list:
        if not isinstance(stream, str) or not 1 <= len(stream) <= (
            MAX_STREAM_LEN
        ):
            raise QueryError(
                "bad_request",
                "'stream' must be a string of 1.."
                f"{MAX_STREAM_LEN} characters",
            )
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            raise QueryError(
                "bad_request", "'seq' must be a non-negative integer"
            )
        if not isinstance(mutations, list) or not mutations:
            raise QueryError(
                "bad_request", "'mutations' must be a non-empty list"
            )
        if len(mutations) > MAX_INGEST_MUTATIONS:
            raise QueryError(
                "bad_request",
                f"batch of {len(mutations)} mutations exceeds the cap "
                f"of {MAX_INGEST_MUTATIONS}",
            )
        parsed = []
        for index, item in enumerate(mutations):
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} must be [\"+\"|\"-\", u, v]",
                )
            sign, u, v = item
            if sign not in _SIGNS:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} has unknown sign {sign!r}",
                )
            for node in (u, v):
                if not isinstance(node, int) or isinstance(node, bool):
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index} endpoints must be integers",
                    )
                if not 0 <= node < self._dynamic.n:
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index}: node {node} out of range "
                        f"[0, {self._dynamic.n})",
                    )
            if u == v:
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} is a self-loop ({u}, {v})",
                )
            parsed.append((sign, u, v))
        return parsed

    def _dry_run(self, parsed: list) -> None:
        """Check the whole batch applies cleanly against the live
        state (plus its own earlier toggles) — called under the state
        lock, *before* the WAL append, so the log never holds an
        inapplicable record and a rejected batch is a no-op."""
        overlay: dict[tuple[int, int], bool] = {}
        for sign, u, v in parsed:
            key = _ordered(u, v)
            exists = overlay.get(key)
            if exists is None:
                exists = self._dynamic.has_edge(u, v)
            if sign == "+" and exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) already exists"
                )
            if sign == "-" and not exists:
                raise QueryError(
                    "bad_request", f"edge ({u}, {v}) does not exist"
                )
            overlay[key] = sign == "+"

    def _commit(self, stream, seq, parsed, lsn) -> dict:
        """Apply one validated batch; caller holds the state lock."""
        for sign, u, v in parsed:
            if sign == "+":
                self._dynamic.insert_edge(u, v)
            else:
                self._dynamic.delete_edge(u, v)
            self._cache.invalidate(u)
            self._cache.invalidate(v)
        self.epoch += 1
        self.applied_lsn = lsn
        self._pagerank_scores = None
        self._rep_snapshot = None
        result = {"applied": len(parsed), "lsn": lsn}
        self._dedup[stream] = (seq, tuple(parsed), result)
        self._dedup.move_to_end(stream)
        if self._dedup_capacity > 0:
            while len(self._dedup) > self._dedup_capacity:
                self._dedup.popitem(last=False)
                self.metrics.registry.counter(
                    "repro_ingest_dedup_evictions_total"
                ).inc()
        self.metrics.registry.counter(
            "repro_ingest_applied_total"
        ).inc(len(parsed))
        if self._replicator is not None:
            self._replicator.record_committed(
                WalRecord(
                    lsn=lsn, stream=stream, seq=seq,
                    mutations=tuple(parsed),
                )
            )
        return result

    def _count(self, reason: str) -> None:
        self.metrics.registry.counter(
            "repro_ingest_rejected_total", reason=reason
        ).inc()
