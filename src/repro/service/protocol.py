"""Wire protocol: one JSON object per ``\\n``-terminated line.

Requests
--------
``{"id": <any>, "op": <str>, ...params}`` — ``id`` is echoed back
verbatim so clients can pipeline.  Ops and their params:

========== =========================== ==========================================
op         params                      result
========== =========================== ==========================================
neighbors  ``node``                    sorted neighbor list
degree     ``node``                    integer degree
khop       ``node``, ``k``             ``{node: hop_distance}`` (string keys)
pagerank   ``node``                    PageRank score (float)
batch      ``requests`` (list of ops)  list of per-request responses
stats      —                           metrics snapshot
telemetry  —                           ``{"instance", "pid", "registry"}``
ping       —                           ``"pong"``
ingest     ``stream``, ``seq``,        ``{"applied", "lsn"[, "duplicate"]}``
           ``mutations``,              (``{"validated"}`` under ``dry_run``)
           [``dry_run``]
replicate  ``term``, [``after_lsn``,   ``{"applied", "last_lsn",
           ``records``, ``snapshot``,  "applied_lsn", "term", "role"}``
           ``promote``, ``followers``,
           ``acks``]
repl_status —                          ``{"role", "term", "last_lsn",
                                       "applied_lsn", ...}``
shutdown   —                           ``"shutting down"`` (server then stops)
========== =========================== ==========================================

``ingest`` (mutable servers only — see :mod:`repro.service.ingest`)
streams edge mutations: ``mutations`` is a list of up to
:data:`MAX_INGEST_MUTATIONS` items ``["+"|"-", u, v]``; ``stream`` is
a client-chosen id and ``seq`` its per-stream sequence number, which
makes retries idempotent (the server dedupes on sequence *and* batch
content).  The optional boolean ``dry_run`` validates the batch
without logging or applying it — the prepare half of the cluster
router's two-phase fan-out.

``replicate``/``repl_status`` (mutable servers only) are the
primary/follower WAL-shipping pair of
:mod:`repro.durability.replication`: a shard primary streams its
committed WAL records (``records``, resuming ``after_lsn``) or a full
checkpoint ``snapshot`` to followers, every frame fenced by the
monotonic leadership ``term``; ``promote`` (with the new ``followers``
list and ``acks`` mode) turns the receiver into the shard's primary.

Every op additionally accepts an optional ``trace`` field —
``{"id": <trace id>, "span": <parent span id>}`` (``span`` optional)
— the distributed-tracing context of :mod:`repro.obs.context`.  A
tracing server adopts it so its spans join the caller's trace; a
non-tracing server validates and ignores it.

Responses
---------
``{"id", "ok": true, "op", "result"}`` on success;
``{"id", "ok": false, "op", "error": {"type", "message"}}`` on
failure.  Error types: ``bad_request``, ``timeout``, ``overloaded``,
``unavailable``, ``not_primary``, ``fenced``, ``internal``.  A degraded-mode success (truncated ``khop``,
approximate ``pagerank`` — see :mod:`repro.service.engine` — or any
answer served while crash recovery is still replaying)
additionally carries ``"degraded": true``.  A mutable server stamps
every successful response with its read-consistency ``"epoch"`` (the
count of committed mutation batches the answer reflects).  A tracing server echoes
``"trace": {"id", "span"}`` (its request-span identity) when the
request carried a trace context.

Framing is newline-delimited UTF-8 JSON, so the protocol is usable
from ``nc`` for debugging.  Lines longer than :data:`MAX_LINE_BYTES`
are rejected with ``bad_request`` to bound per-connection memory.

Both transport halves are hardened trust boundaries:
:func:`validate_request` schema-checks every inbound request field
(unknown ops, unknown fields, wrong types, out-of-range ``k``,
oversized batches) before the engine sees it, and
:func:`validate_response` lets clients reject a malformed or hostile
server reply instead of acting on it.  ``tools/proto_fuzz.py`` fires
seeded malformed frames at a live server to keep these checks honest.
"""

from __future__ import annotations

import json
import socket

from repro.obs.context import validate_trace_field

__all__ = [
    "MAX_LINE_BYTES",
    "MAX_BATCH_REQUESTS",
    "MAX_KHOP_K",
    "MAX_INGEST_MUTATIONS",
    "MAX_REPLICATE_RECORDS",
    "MAX_STREAM_LEN",
    "KNOWN_OPS",
    "encode_message",
    "decode_line",
    "validate_request",
    "validate_response",
    "LineReader",
    "ProtocolError",
]

#: Upper bound on one request/response line (1 MiB).
MAX_LINE_BYTES = 1 << 20

#: Upper bound on sub-requests in one ``batch`` frame.
MAX_BATCH_REQUESTS = 1024

#: Upper bound on the ``khop`` radius; a BFS that covers the whole
#: summary finishes long before this, so larger values only buy an
#: attacker CPU time.
MAX_KHOP_K = 64

#: Upper bound on mutations in one ``ingest`` batch.
MAX_INGEST_MUTATIONS = 1024

#: Upper bound on the ``ingest`` client stream-id length.
MAX_STREAM_LEN = 128

#: Every op the protocol defines (the engine serves a subset of these
#: directly; ``batch`` and ``shutdown`` are handled by the server).
KNOWN_OPS = (
    "neighbors",
    "degree",
    "khop",
    "pagerank",
    "batch",
    "stats",
    "telemetry",
    "ping",
    "ingest",
    "replicate",
    "repl_status",
    "shutdown",
)

#: Upper bound on records in one ``replicate`` frame.
MAX_REPLICATE_RECORDS = 1024

#: Exact field whitelist per op; an unknown field is rejected rather
#: than ignored, so typos ("nodes") fail loudly and smuggled payloads
#: never reach the engine.  Every op also accepts the optional
#: ``trace`` context field.
_ALLOWED_FIELDS: dict[str, frozenset[str]] = {
    "neighbors": frozenset({"id", "op", "node", "trace"}),
    "degree": frozenset({"id", "op", "node", "trace"}),
    "khop": frozenset({"id", "op", "node", "k", "trace"}),
    "pagerank": frozenset({"id", "op", "node", "trace"}),
    "batch": frozenset({"id", "op", "requests", "trace"}),
    "stats": frozenset({"id", "op", "format", "trace"}),
    "telemetry": frozenset({"id", "op", "trace"}),
    "ping": frozenset({"id", "op", "trace"}),
    "ingest": frozenset(
        {"id", "op", "stream", "seq", "mutations", "dry_run", "trace"}
    ),
    "replicate": frozenset(
        {
            "id", "op", "term", "after_lsn", "records", "snapshot",
            "promote", "followers", "acks", "trace",
        }
    ),
    "repl_status": frozenset({"id", "op", "trace"}),
    "shutdown": frozenset({"id", "op", "trace"}),
}

_RESPONSE_FIELDS = frozenset(
    {"id", "ok", "op", "result", "error", "degraded", "epoch", "trace"}
)


class ProtocolError(ValueError):
    """A line that cannot be decoded (bad JSON, oversized, not an
    object)."""


def encode_message(message: dict) -> bytes:
    """Serialise one message to its wire form (compact JSON + LF)."""
    return (
        json.dumps(message, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds {MAX_LINE_BYTES}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def _is_scalar(value) -> bool:
    return value is None or isinstance(value, (str, int, float, bool))


def _check_node_field(request: dict, op: str) -> None:
    node = request.get("node")
    if not isinstance(node, int) or isinstance(node, bool):
        raise ProtocolError(f"op {op!r} needs an integer 'node' field")


def validate_request(request: dict) -> dict:
    """Schema-check one inbound request; returns it unchanged.

    Raises :class:`ProtocolError` on: a non-scalar ``id`` (it must be
    echoable without interpretation), a missing/unknown ``op``, any
    field outside the op's whitelist, a non-integer ``node``, a ``k``
    outside ``[0, MAX_KHOP_K]``, a ``batch`` whose ``requests`` is not
    a list of at most :data:`MAX_BATCH_REQUESTS` objects, a
    ``stats`` ``format`` other than ``"prometheus"``, a malformed
    ``ingest`` body (bad ``stream``/``seq`` types, a mutation that is
    not ``["+"|"-", u, v]``, an oversized batch), or a malformed
    ``trace`` context (non-object, missing/over-long ids, unknown
    keys).  Range checks
    that need the served summary (``node`` against ``n``) stay in the
    engine.
    """
    if not _is_scalar(request.get("id")):
        raise ProtocolError("'id' must be a JSON scalar")
    op = request.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs a string 'op' field")
    if op not in KNOWN_OPS:
        raise ProtocolError(
            f"unknown op {op!r}; supported: {', '.join(KNOWN_OPS)}"
        )
    unknown = set(request) - _ALLOWED_FIELDS[op]
    if unknown:
        raise ProtocolError(
            f"op {op!r} does not accept field(s) "
            f"{', '.join(sorted(map(repr, unknown)))}"
        )
    if "trace" in request:
        try:
            validate_trace_field(request["trace"])
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    if op in ("neighbors", "degree", "khop", "pagerank"):
        _check_node_field(request, op)
    if op == "khop":
        k = request.get("k", 1)
        if not isinstance(k, int) or isinstance(k, bool):
            raise ProtocolError("'k' must be an integer")
        if not 0 <= k <= MAX_KHOP_K:
            raise ProtocolError(
                f"'k' must be in [0, {MAX_KHOP_K}], got {k}"
            )
    elif op == "batch":
        sub = request.get("requests")
        if not isinstance(sub, list):
            raise ProtocolError("'batch' needs a 'requests' list")
        if len(sub) > MAX_BATCH_REQUESTS:
            raise ProtocolError(
                f"batch of {len(sub)} requests exceeds the cap of "
                f"{MAX_BATCH_REQUESTS}"
            )
        for index, item in enumerate(sub):
            # Shallow shape check only; each sub-request is validated
            # by the engine, which reports errors inline per item.
            if not isinstance(item, dict):
                raise ProtocolError(
                    f"batch request #{index} is not a JSON object"
                )
    elif op == "stats":
        fmt = request.get("format")
        if fmt is not None and fmt != "prometheus":
            raise ProtocolError(
                f"unknown stats format {fmt!r}; supported: 'prometheus'"
            )
    elif op == "ingest":
        _check_ingest_fields(request)
    elif op == "replicate":
        _check_replicate_fields(request)
    return request


def _check_replicate_fields(request: dict) -> None:
    """Shape-check a ``replicate`` frame.

    Bounds list sizes and basic types; per-record validation (LSN
    ordering, mutation shapes) happens in
    :func:`repro.durability.replication.record_from_wire` under the
    engine's fencing checks.
    """
    term = request.get("term")
    if not isinstance(term, int) or isinstance(term, bool) or term < 1:
        raise ProtocolError("'term' must be a positive integer")
    after_lsn = request.get("after_lsn")
    if after_lsn is not None and (
        not isinstance(after_lsn, int)
        or isinstance(after_lsn, bool)
        or after_lsn < 0
    ):
        raise ProtocolError("'after_lsn' must be a non-negative integer")
    if not isinstance(request.get("promote", False), bool):
        raise ProtocolError("'promote' must be a boolean")
    acks = request.get("acks")
    if acks is not None and acks not in ("leader", "quorum"):
        raise ProtocolError(
            f"unknown acks mode {acks!r}; supported: 'leader', 'quorum'"
        )
    records = request.get("records")
    if records is not None:
        if not isinstance(records, list):
            raise ProtocolError("'records' must be a list")
        if len(records) > MAX_REPLICATE_RECORDS:
            raise ProtocolError(
                f"frame of {len(records)} records exceeds the cap of "
                f"{MAX_REPLICATE_RECORDS}"
            )
        for index, item in enumerate(records):
            if not isinstance(item, dict):
                raise ProtocolError(
                    f"replicated record #{index} is not a JSON object"
                )
    snapshot = request.get("snapshot")
    if snapshot is not None and not isinstance(snapshot, dict):
        raise ProtocolError("'snapshot' must be a JSON object")
    followers = request.get("followers")
    if followers is not None:
        if not isinstance(followers, list) or len(followers) > 64:
            raise ProtocolError(
                "'followers' must be a list of at most 64 addresses"
            )
        for index, item in enumerate(followers):
            if (
                not isinstance(item, list)
                or len(item) != 2
                or not isinstance(item[0], str)
                or not isinstance(item[1], int)
                or isinstance(item[1], bool)
                or not 0 < item[1] < 65536
            ):
                raise ProtocolError(
                    f"follower #{index} must be [host, port]"
                )


def _check_ingest_fields(request: dict) -> None:
    """Shape-check an ``ingest`` frame before the engine sees it.

    Everything stateful (range checks against ``n``, applicability,
    sequence ordering) stays in the mutable engine; this bounds sizes
    and types so a hostile frame cannot smuggle arbitrary payloads or
    oversized batches past the trust boundary.
    """
    stream = request.get("stream")
    if not isinstance(stream, str) or not 1 <= len(stream) <= (
        MAX_STREAM_LEN
    ):
        raise ProtocolError(
            f"'stream' must be a string of 1..{MAX_STREAM_LEN} characters"
        )
    seq = request.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ProtocolError("'seq' must be a non-negative integer")
    if not isinstance(request.get("dry_run", False), bool):
        raise ProtocolError("'dry_run' must be a boolean")
    mutations = request.get("mutations")
    if not isinstance(mutations, list) or not mutations:
        raise ProtocolError("'mutations' must be a non-empty list")
    if len(mutations) > MAX_INGEST_MUTATIONS:
        raise ProtocolError(
            f"batch of {len(mutations)} mutations exceeds the cap of "
            f"{MAX_INGEST_MUTATIONS}"
        )
    for index, item in enumerate(mutations):
        if not (isinstance(item, list) and len(item) == 3):
            raise ProtocolError(
                f"mutation #{index} must be a 3-item list "
                '["+"|"-", u, v]'
            )
        sign, u, v = item
        if sign not in ("+", "-"):
            raise ProtocolError(
                f"mutation #{index} has unknown sign {sign!r}"
            )
        for node in (u, v):
            if not isinstance(node, int) or isinstance(node, bool) or (
                node < 0
            ):
                raise ProtocolError(
                    f"mutation #{index} endpoints must be "
                    "non-negative integers"
                )


def validate_response(message: dict) -> dict:
    """Schema-check one server response; returns it unchanged.

    The client-side half of the trust boundary: a hostile or buggy
    server cannot make the client act on a response missing its
    verdict (``ok``), carrying a malformed ``error`` body, or smuggling
    unknown fields.  Raises :class:`ProtocolError` on violation.
    """
    unknown = set(message) - _RESPONSE_FIELDS
    if unknown:
        raise ProtocolError(
            f"response carries unknown field(s) "
            f"{', '.join(sorted(map(repr, unknown)))}"
        )
    ok = message.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError("response needs a boolean 'ok' field")
    if not _is_scalar(message.get("id")):
        raise ProtocolError("response 'id' must be a JSON scalar")
    if "trace" in message:
        try:
            validate_trace_field(message["trace"])
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    if "epoch" in message:
        epoch = message["epoch"]
        if not isinstance(epoch, int) or isinstance(epoch, bool) or (
            epoch < 0
        ):
            raise ProtocolError(
                "'epoch' must be a non-negative integer"
            )
    if ok:
        if "result" not in message:
            raise ProtocolError("ok response is missing 'result'")
    else:
        error = message.get("error")
        if not isinstance(error, dict):
            raise ProtocolError("error response needs an 'error' object")
        if not isinstance(error.get("type"), str) or not isinstance(
            error.get("message"), str
        ):
            raise ProtocolError(
                "'error' needs string 'type' and 'message' fields"
            )
    return message


class LineReader:
    """Incremental ``\\n``-splitter over a socket.

    ``readline`` returns the next complete line (without the
    terminator), ``None`` on EOF, and re-raises ``socket.timeout`` so
    callers can poll a shutdown flag between reads.

    An oversized *unterminated* line poisons the reader: there is no
    way to find the next message boundary in a stream whose current
    frame never ends, so after the first :class:`ProtocolError` every
    subsequent ``readline`` raises again rather than returning bytes
    from an unknowable position.  Callers must send at most one error
    response and close the connection.
    """

    def __init__(
        self,
        sock: socket.socket,
        chunk_size: int = 65536,
        max_line_bytes: int = MAX_LINE_BYTES,
    ):
        self._sock = sock
        self._chunk_size = chunk_size
        self._max_line_bytes = max_line_bytes
        self._buffer = bytearray()
        self._eof = False
        self._poisoned = False

    def readline(self) -> bytes | None:
        if self._poisoned:
            raise ProtocolError(
                "stream is beyond resynchronization after an "
                "oversized unterminated line"
            )
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            if self._eof:
                return None
            if len(self._buffer) > self._max_line_bytes:
                self._poisoned = True
                raise ProtocolError(
                    f"unterminated line exceeds {self._max_line_bytes} bytes"
                )
            chunk = self._sock.recv(self._chunk_size)
            if not chunk:
                self._eof = True
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line
                return None
            self._buffer.extend(chunk)
