"""Wire protocol: one JSON object per ``\\n``-terminated line.

Requests
--------
``{"id": <any>, "op": <str>, ...params}`` — ``id`` is echoed back
verbatim so clients can pipeline.  Ops and their params:

========== =========================== ==========================================
op         params                      result
========== =========================== ==========================================
neighbors  ``node``                    sorted neighbor list
degree     ``node``                    integer degree
khop       ``node``, ``k``             ``{node: hop_distance}`` (string keys)
pagerank   ``node``                    PageRank score (float)
batch      ``requests`` (list of ops)  list of per-request responses
stats      —                           metrics snapshot
ping       —                           ``"pong"``
shutdown   —                           ``"shutting down"`` (server then stops)
========== =========================== ==========================================

Responses
---------
``{"id", "ok": true, "op", "result"}`` on success;
``{"id", "ok": false, "op", "error": {"type", "message"}}`` on
failure.  Error types: ``bad_request``, ``timeout``, ``overloaded``,
``internal``.  A degraded-mode success (truncated ``khop``,
approximate ``pagerank`` — see :mod:`repro.service.engine`)
additionally carries ``"degraded": true``.

Framing is newline-delimited UTF-8 JSON, so the protocol is usable
from ``nc`` for debugging.  Lines longer than :data:`MAX_LINE_BYTES`
are rejected with ``bad_request`` to bound per-connection memory.
"""

from __future__ import annotations

import json
import socket

__all__ = [
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_line",
    "LineReader",
    "ProtocolError",
]

#: Upper bound on one request/response line (1 MiB).
MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A line that cannot be decoded (bad JSON, oversized, not an
    object)."""


def encode_message(message: dict) -> bytes:
    """Serialise one message to its wire form (compact JSON + LF)."""
    return (
        json.dumps(message, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds {MAX_LINE_BYTES}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


class LineReader:
    """Incremental ``\\n``-splitter over a socket.

    ``readline`` returns the next complete line (without the
    terminator), ``None`` on EOF, and re-raises ``socket.timeout`` so
    callers can poll a shutdown flag between reads.

    An oversized *unterminated* line poisons the reader: there is no
    way to find the next message boundary in a stream whose current
    frame never ends, so after the first :class:`ProtocolError` every
    subsequent ``readline`` raises again rather than returning bytes
    from an unknowable position.  Callers must send at most one error
    response and close the connection.
    """

    def __init__(self, sock: socket.socket, chunk_size: int = 65536):
        self._sock = sock
        self._chunk_size = chunk_size
        self._buffer = bytearray()
        self._eof = False
        self._poisoned = False

    def readline(self) -> bytes | None:
        if self._poisoned:
            raise ProtocolError(
                "stream is beyond resynchronization after an "
                "oversized unterminated line"
            )
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            if self._eof:
                return None
            if len(self._buffer) > MAX_LINE_BYTES:
                self._poisoned = True
                raise ProtocolError(
                    f"unterminated line exceeds {MAX_LINE_BYTES} bytes"
                )
            chunk = self._sock.recv(self._chunk_size)
            if not chunk:
                self._eof = True
                if self._buffer:
                    line = bytes(self._buffer)
                    self._buffer.clear()
                    return line
                return None
            self._buffer.extend(chunk)
