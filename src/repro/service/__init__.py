"""Summary-serving query engine (the serving layer).

The paper's claim that ``R = (S, C)`` can *replace* the graph for
queries (Section 6.6) becomes an operational one here: load a summary
once, build its indexes, and serve neighbor / degree / k-hop /
PageRank queries to concurrent clients over a line-delimited JSON TCP
protocol — with an LRU cache, batch deduplication, metrics, deadlines
and graceful shutdown.  See ``docs/serving.md`` for the protocol and
``python -m repro serve`` for the CLI entry point.
"""

from repro.service.client import ServiceError, SummaryServiceClient
from repro.service.engine import (
    OPS,
    QueryEngine,
    QueryError,
    QueryTimeout,
)
from repro.service.ingest import MutableQueryEngine
from repro.service.metrics import (
    LatencyRecorder,
    MetricsLogger,
    ServiceMetrics,
)
from repro.service.server import SummaryQueryServer

__all__ = [
    "OPS",
    "MutableQueryEngine",
    "QueryEngine",
    "QueryError",
    "QueryTimeout",
    "LatencyRecorder",
    "MetricsLogger",
    "ServiceMetrics",
    "SummaryQueryServer",
    "SummaryServiceClient",
    "ServiceError",
]
