"""Thread-safe query engine over one loaded summary.

The serving substrate of Section 6.6 taken to its conclusion: load
``R = (S, C)`` once, pre-build the super-edge and correction indexes
(:class:`~repro.queries.neighbors.SummaryNeighborIndex`), and answer
many concurrent neighbor / degree / k-hop / PageRank-score requests
without ever touching the original graph.

Two serving-specific layers sit on top of the index:

* an LRU cache of expanded neighborhoods — summary expansion writes
  the same member lists over and over for hot nodes, so repeated
  queries are a dict hit;
* a batch API (:meth:`QueryEngine.query_many`) that deduplicates the
  nodes mentioned in a batch and expands each exactly once per batch,
  which is how a frontend fanning out one timeline request into many
  adjacency lookups would call it.

Graceful degradation (:mod:`repro.resilience`): constructed with
``degraded=True``, the engine answers ``khop`` and ``pagerank``
requests whose deadline budget is spent with a **cheaper approximate
answer flagged** ``"degraded": true`` instead of a ``timeout`` error —
a truncated BFS for ``khop``, a one-expansion degree-proportional
estimate for ``pagerank`` while the exact vector is still unbuilt.
SsAG-style approximate summaries (PAPERS.md) motivate exactly this
trade: a bounded-quality answer on time beats an exact answer late.
Degraded answers are counted under
``service_degraded_total{op=...}``.

All public methods are safe to call from any number of threads: the
cache has its own lock, the underlying index is immutable after
construction, and the PageRank vector is built at most once behind a
dedicated lock.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from pathlib import Path

from repro.core.encoding import Representation
from repro.core.serialization import load_representation
from repro.queries.neighbors import SummaryNeighborIndex, neighbor_query
from repro.queries.pagerank import SummaryPageRank
from repro.service.metrics import ServiceMetrics

__all__ = [
    "QueryEngine",
    "QueryError",
    "QueryTimeout",
    "LRUCache",
    "OPS",
    "TELEMETRY_SAMPLES",
]

#: Request types the engine understands (the protocol's ``op`` field).
OPS = (
    "neighbors", "degree", "khop", "pagerank", "stats", "telemetry", "ping",
)

#: Reservoir samples per histogram carried in a ``telemetry`` reply —
#: mirrors :data:`repro.obs.collect.TELEMETRY_SAMPLES`; keeps a full
#: registry snapshot well under the 1 MiB wire line cap.
TELEMETRY_SAMPLES = 1024


class QueryError(ValueError):
    """A request the engine rejects; ``kind`` becomes the structured
    error type on the wire."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class QueryTimeout(QueryError):
    """Raised at an engine checkpoint once a request's deadline has
    passed."""

    def __init__(self, message: str = "request deadline exceeded"):
        super().__init__("timeout", message)


class _LRUCache:
    """Minimal thread-safe LRU keyed by node id.

    ``functools.lru_cache`` is not used because the hit/miss stream
    must feed :class:`ServiceMetrics` and the capacity must be a
    runtime knob.
    """

    def __init__(self, capacity: int):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[int, frozenset[int]] = OrderedDict()

    def get(self, key: int) -> frozenset[int] | None:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key: int, value: frozenset[int]) -> None:
        if self._capacity <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)

    def invalidate(self, key: int) -> None:
        """Drop one entry (mutation path: only the dirty nodes lose
        their cached expansion, the rest of the cache stays hot)."""
        with self._lock:
            self._data.pop(key, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def capacity(self) -> int:
        return self._capacity


#: Public name for the serving LRU; the cluster router reuses it for
#: its cross-shard neighborhood cache.
LRUCache = _LRUCache


class QueryEngine:
    """Serve adjacency and analytics queries from one representation.

    Parameters
    ----------
    representation:
        The loaded summary.  Its indexes are built eagerly here so the
        first request does not pay the construction cost.
    cache_size:
        LRU capacity in nodes (0 disables caching).
    metrics:
        Shared :class:`ServiceMetrics`; a private one is created when
        not given.
    damping / pagerank_iterations:
        Parameters for the lazily-built PageRank vector (Algorithm 7).
    degraded:
        Enable degraded-mode answers: ``khop``/``pagerank`` requests
        whose deadline has expired return a flagged approximation
        instead of raising :class:`QueryTimeout`.
    """

    def __init__(
        self,
        representation: Representation,
        *,
        cache_size: int = 4096,
        metrics: ServiceMetrics | None = None,
        damping: float = 0.85,
        pagerank_iterations: int = 20,
        degraded: bool = False,
    ):
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        #: Ops this engine instance answers; a mutable engine
        #: (:class:`repro.service.ingest.MutableQueryEngine`) extends
        #: this with ``ingest``.
        self.ops: tuple[str, ...] = OPS
        self._index = SummaryNeighborIndex(representation)
        self._cache = _LRUCache(cache_size)
        self._damping = damping
        self._pagerank_iterations = pagerank_iterations
        self._pagerank_lock = threading.Lock()
        self._pagerank_scores = None
        self.degraded_enabled = degraded

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "QueryEngine":
        """Load a summary file (via :mod:`repro.core.serialization`)
        and build an engine over it."""
        return cls(load_representation(path), **kwargs)

    @property
    def representation(self) -> Representation:
        return self._index.representation

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # -- primitive queries ----------------------------------------------
    def neighbors(self, node: int) -> frozenset[int]:
        """Exact neighbor set of ``node``, cached.

        The result is a ``frozenset`` so concurrent consumers (and the
        cache) can share one object safely.
        """
        self._check_node(node)
        cached = self._cache.get(node)
        if cached is not None:
            self.metrics.cache_hit()
            return cached
        self.metrics.cache_miss()
        result = frozenset(self._index.neighbors(node))
        self._cache.put(node, result)
        return result

    def degree(self, node: int) -> int:
        """Degree of ``node`` (cardinality of the cached expansion)."""
        return len(self.neighbors(node))

    def khop(
        self,
        node: int,
        k: int,
        deadline: float | None = None,
        degraded_sink: list | None = None,
    ) -> dict[int, int]:
        """Hop distance for every node within ``k`` hops of ``node``.

        BFS over the cached neighbor expansions (so a k-hop query
        warms the cache for the adjacency queries that typically
        follow it).  The deadline is checked once per BFS level; with
        a ``degraded_sink`` the BFS is *truncated* at the expired
        level (the sink records the degradation) instead of raising
        :class:`QueryTimeout`, so the caller gets every hop computed
        inside the budget.
        """
        self._check_node(node)
        if k < 0:
            raise QueryError("bad_request", f"k must be >= 0, got {k}")
        distances = {node: 0}
        frontier = [node]
        for depth in range(1, k + 1):
            if deadline is not None and time.monotonic() >= deadline:
                if degraded_sink is None:
                    raise QueryTimeout()
                degraded_sink.append("khop")
                break
            next_frontier: list[int] = []
            for u in frontier:
                for v in self.neighbors(u):
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            if not next_frontier:
                break
            frontier = next_frontier
        return distances

    def pagerank_score(
        self,
        node: int,
        deadline: float | None = None,
        degraded_sink: list | None = None,
    ) -> float:
        """PageRank score of ``node`` from the Algorithm 7 vector.

        The full vector is computed on the summary once (first
        request) and then served as array lookups.  With a
        ``degraded_sink``, a request whose deadline is already spent
        while the vector is *still unbuilt* gets the cheap
        degree-proportional estimate
        ``(1 - d)/n + d * deg(node) / 2m`` (one cached neighborhood
        expansion) instead of blocking on the full build — the sink
        records the degradation.  Once the vector exists every answer
        is exact.
        """
        self._check_node(node)
        scores = self._pagerank_scores
        if scores is None:
            if (
                degraded_sink is not None
                and deadline is not None
                and time.monotonic() >= deadline
            ):
                degraded_sink.append("pagerank")
                rep = self.representation
                degree = len(self.neighbors(node))
                return (1.0 - self._damping) / max(1, rep.n) + (
                    self._damping * degree / max(1, 2 * rep.m)
                )
            with self._pagerank_lock:
                if self._pagerank_scores is None:
                    engine = SummaryPageRank(self.representation)
                    self._pagerank_scores = engine.run(
                        self._damping, self._pagerank_iterations
                    )
                scores = self._pagerank_scores
        return float(scores[node])

    # -- request-dict interface (what the server speaks) -----------------
    def query(self, request: dict, deadline: float | None = None) -> dict:
        """Answer one protocol request dict.

        Returns a response dict ``{"id", "ok", "op", "result"}``; engine
        rejections raise :class:`QueryError` (the server turns them into
        structured error responses).  Latency and outcome are recorded
        per op.
        """
        if not isinstance(request, dict):
            raise QueryError("bad_request", "request must be a JSON object")
        op = request.get("op")
        if op not in self.ops:
            if op == "ingest":
                raise QueryError(
                    "bad_request",
                    "ingest is not enabled on this server "
                    "(read-only engine; start with a mutable engine / "
                    "--wal-dir)",
                )
            raise QueryError(
                "bad_request",
                f"unknown op {op!r}; supported: {', '.join(self.ops)}",
            )
        degraded_sink: list | None = (
            [] if self.degraded_enabled and op in ("khop", "pagerank")
            else None
        )
        if degraded_sink is None:
            _check_deadline(deadline)
        started = time.perf_counter()
        try:
            result = self._dispatch(op, request, deadline, degraded_sink)
        except QueryError:
            self.metrics.observe(op, time.perf_counter() - started, ok=False)
            raise
        self.metrics.observe(op, time.perf_counter() - started)
        response = {
            "id": request.get("id"),
            "ok": True,
            "op": op,
            "result": result,
        }
        if degraded_sink:
            response["degraded"] = True
            self.metrics.degraded(op)
        return self._finalize(response)

    def query_many(
        self, requests: list[dict], deadline: float | None = None
    ) -> list[dict]:
        """Answer a batch, deduplicating shared work.

        The nodes mentioned by the batch's ``neighbors``/``degree``
        requests are collected first and each distinct node is
        expanded exactly once (one index pass over the unique nodes);
        every response is then assembled from that shared expansion.
        Responses come back in request order, errors inline as
        structured error dicts — one bad request does not fail its
        batch.
        """
        unique_nodes: dict[int, None] = {}
        for request in requests:
            if (
                isinstance(request, dict)
                and request.get("op") in ("neighbors", "degree")
                and isinstance(request.get("node"), int)
            ):
                unique_nodes.setdefault(request["node"])
        expanded: dict[int, frozenset[int]] = {}
        for node in unique_nodes:
            _check_deadline(deadline)
            try:
                expanded[node] = self.neighbors(node)
            except QueryError:
                pass  # reported per-request below
        self.metrics.batch(len(requests), len(unique_nodes))

        responses = []
        for request in requests:
            try:
                node = request.get("node") if isinstance(request, dict) else None
                if node in expanded and request.get("op") == "neighbors":
                    self.metrics.observe("neighbors", 0.0)
                    responses.append(self._finalize({
                        "id": request.get("id"),
                        "ok": True,
                        "op": "neighbors",
                        "result": sorted(expanded[node]),
                    }))
                elif node in expanded and request.get("op") == "degree":
                    self.metrics.observe("degree", 0.0)
                    responses.append(self._finalize({
                        "id": request.get("id"),
                        "ok": True,
                        "op": "degree",
                        "result": len(expanded[node]),
                    }))
                else:
                    responses.append(self.query(request, deadline))
            except QueryError as exc:
                responses.append(error_response(request, exc))
        return responses

    # -- internals -------------------------------------------------------
    def _finalize(self, response: dict) -> dict:
        """Last touch on every successful response.  The base engine
        is a no-op; a mutable engine stamps the read-consistency
        ``epoch`` and the mid-replay ``degraded`` flag here."""
        return response

    def _dispatch(
        self,
        op: str,
        request: dict,
        deadline: float | None,
        degraded_sink: list | None = None,
    ):
        if op == "ping":
            return "pong"
        if op == "stats":
            if request.get("format") == "prometheus":
                return self.metrics.to_prometheus()
            snapshot = self.metrics.snapshot()
            snapshot["cache"]["size"] = len(self._cache)
            snapshot["cache"]["capacity"] = self._cache.capacity
            snapshot["registry"] = self.metrics.registry.snapshot()
            return snapshot
        if op == "telemetry":
            from repro.obs.tracer import get_instance_label

            return {
                "instance": get_instance_label(),
                "pid": os.getpid(),
                "registry": self.metrics.registry.snapshot(
                    samples=TELEMETRY_SAMPLES
                ),
            }
        node = request.get("node")
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError(
                "bad_request", f"op {op!r} needs an integer 'node' field"
            )
        if op == "neighbors":
            return sorted(self.neighbors(node))
        if op == "degree":
            return self.degree(node)
        if op == "khop":
            k = request.get("k", 1)
            if not isinstance(k, int) or isinstance(k, bool):
                raise QueryError("bad_request", "'k' must be an integer")
            distances = self.khop(node, k, deadline, degraded_sink)
            return {str(v): d for v, d in sorted(distances.items())}
        if op == "pagerank":
            return self.pagerank_score(node, deadline, degraded_sink)
        raise QueryError("bad_request", f"unhandled op {op!r}")

    def _check_node(self, node: int) -> None:
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError("bad_request", "'node' must be an integer")
        if not 0 <= node < self.representation.n:
            raise QueryError(
                "bad_request",
                f"node {node} out of range [0, {self.representation.n})",
            )

    def verify_against(self, node: int) -> bool:
        """Cross-check the engine answer against the one-shot
        Algorithm 6 (:func:`repro.queries.neighbors.neighbor_query`);
        used by tests and the smoke harness."""
        return set(self.neighbors(node)) == neighbor_query(
            self.representation, node
        )


def error_response(request, exc: QueryError) -> dict:
    """The structured error body for a rejected request."""
    request_id = request.get("id") if isinstance(request, dict) else None
    op = request.get("op") if isinstance(request, dict) else None
    return {
        "id": request_id,
        "ok": False,
        "op": op,
        "error": {"type": exc.kind, "message": str(exc)},
    }


def _check_deadline(deadline: float | None) -> None:
    if deadline is not None and time.monotonic() >= deadline:
        raise QueryTimeout()
