"""Blocking client for the summary query service.

Small by design: one socket, sequential request/response, used by the
test-suite, the smoke harness and the load generator.  Each client
instance is *not* thread-safe — give every load-generator thread its
own client, which also matches the server's connection-per-worker
model.
"""

from __future__ import annotations

import socket

from repro.service.protocol import LineReader, decode_line, encode_message

__all__ = ["SummaryServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok: false`` response; carries the structured error."""

    def __init__(self, error: dict):
        super().__init__(
            f"{error.get('type', 'unknown')}: {error.get('message', '')}"
        )
        self.type = error.get("type", "unknown")
        self.message = error.get("message", "")


class SummaryServiceClient:
    """Connect to a :class:`~repro.service.server.SummaryQueryServer`.

    Usable as a context manager::

        with SummaryServiceClient(host, port) as client:
            client.neighbors(42)
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = LineReader(self._sock)
        self._next_id = 0

    # -- transport -------------------------------------------------------
    def request_raw(self, request: dict) -> dict:
        """Send one request dict, return the raw response dict."""
        self._sock.sendall(encode_message(request))
        line = self._reader.readline()
        if line is None:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def request(self, op: str, **params):
        """Send one ``op`` request; return its ``result`` or raise
        :class:`ServiceError`.  Verifies the response id matches."""
        self._next_id += 1
        request_id = self._next_id
        response = self.request_raw({"id": request_id, "op": op, **params})
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if not response.get("ok"):
            raise ServiceError(response.get("error", {}))
        return response.get("result")

    # -- ops -------------------------------------------------------------
    def ping(self) -> str:
        return self.request("ping")

    def neighbors(self, node: int) -> list[int]:
        return self.request("neighbors", node=node)

    def degree(self, node: int) -> int:
        return self.request("degree", node=node)

    def khop(self, node: int, k: int) -> dict[int, int]:
        raw = self.request("khop", node=node, k=k)
        return {int(v): d for v, d in raw.items()}

    def pagerank_score(self, node: int) -> float:
        return self.request("pagerank", node=node)

    def stats(self) -> dict:
        return self.request("stats")

    def batch(self, requests: list[dict]) -> list[dict]:
        """Send a batch; returns the per-request response dicts in
        request order (errors inline, not raised)."""
        return self.request("batch", requests=requests)

    def shutdown_server(self) -> str:
        """Ask the server to stop gracefully."""
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SummaryServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
