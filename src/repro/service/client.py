"""Blocking client for the summary query service.

Small by design: one socket, sequential request/response, used by the
test-suite, the smoke harness and the load generator.  Each client
instance is *not* thread-safe — give every load-generator thread its
own client, which also matches the server's connection-per-worker
model.

Fault tolerance (:mod:`repro.resilience`): constructed with a
:class:`~repro.resilience.retry.RetryPolicy`, the client transparently
**reconnects and retries** idempotent requests on connection failures,
with exponential backoff + seeded jitter under an optional per-request
deadline budget.  Which requests are idempotent: every read, and
``ingest`` *because* it carries a per-stream sequence number — the
request dict is built once, so every retry resends the **original**
``seq`` and the server dedupes a batch that was applied but whose
acknowledgement was lost in transit (at-most-once application over
at-least-once delivery).  ``shutdown``, and an ``ingest`` missing its
``stream``/``seq`` identity, are never blindly retried.  ``ingest``
additionally retries the structured errors ``not_primary`` and
``unavailable`` — the transient faces of a replica-set failover —
so a write that straddles a primary promotion lands exactly once
(the new primary answers the replayed ``seq`` with
``duplicate: true`` if it already replicated the batch).
A **desynchronized** stream — a response whose ``id`` does not match
the request, or an undecodable line — can never be reused: the socket
is closed immediately, and without a retry policy the client is marked
unusable so subsequent calls fail fast instead of mis-pairing
responses.

Fault-injection sites (when a
:class:`~repro.resilience.faults.FaultInjector` is active):
``client:send`` and ``client:recv`` around the two transport halves.
"""

from __future__ import annotations

import random
import socket

from repro.resilience.faults import active_injector
from repro.resilience.retry import Deadline, RetriesExhausted, RetryPolicy, call_with_retry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    LineReader,
    ProtocolError,
    decode_line,
    encode_message,
    validate_response,
)

__all__ = ["SummaryServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An ``ok: false`` response; carries the structured error."""

    def __init__(self, error: dict):
        super().__init__(
            f"{error.get('type', 'unknown')}: {error.get('message', '')}"
        )
        self.type = error.get("type", "unknown")
        self.message = error.get("message", "")
        self.error = dict(error)


#: ``ingest`` error types that a retry may outlive: ``not_primary``
#: (the replica stepped down / we hit a follower — the router or a
#: restarted server may route to the new primary on the next attempt)
#: and ``unavailable`` (a replication quorum or a whole shard was
#: momentarily unreachable).  Retrying reuses the *same* request dict,
#: so the batch keeps its ``(stream, seq)`` identity and a new primary
#: that already replicated the batch answers ``duplicate: true``
#: instead of double-applying.
_TRANSIENT_ERROR_TYPES = frozenset({"unavailable", "not_primary"})


class _TransientServiceError(ServiceError):
    """Internal marker so ``call_with_retry`` can distinguish a
    retryable structured error from a terminal one."""


def _retry_safe(op: str, params: dict) -> bool:
    """Whether a transport-failed request may be replayed verbatim.

    Reads are always safe.  ``shutdown`` never is (a second delivery
    stops a freshly restarted server).  ``ingest`` is safe only when
    it carries its dedup identity — without ``stream`` + ``seq`` the
    server cannot tell a retry from a new batch, and a blind replay
    could double-apply.
    """
    if op == "shutdown":
        return False
    if op == "ingest":
        return (
            isinstance(params.get("stream"), str)
            and isinstance(params.get("seq"), int)
        )
    return True


class SummaryServiceClient:
    """Connect to a :class:`~repro.service.server.SummaryQueryServer`.

    Usable as a context manager::

        with SummaryServiceClient(host, port) as client:
            client.neighbors(42)

    Parameters
    ----------
    host / port / timeout:
        Connection target and per-socket-operation timeout.
    retry_policy:
        When given, idempotent requests that hit a transport failure
        reconnect and retry under this policy; ``None`` (the default)
        keeps the historical fail-fast behaviour.
    retry_budget:
        Optional wall-clock budget in seconds for one logical request
        *including* all retries and backoff sleeps.
    seed:
        Seeds the backoff jitter so retry schedules replay exactly.
    max_line_bytes:
        Frame cap applied to *inbound* responses, mirroring the
        server's limit: a hostile or broken server streaming an
        unterminated line gets its connection dropped with a
        structured :class:`~repro.service.protocol.ProtocolError`
        after this many buffered bytes instead of growing the
        client's memory without bound.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        retry_policy: RetryPolicy | None = None,
        retry_budget: float | None = None,
        seed: int = 0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._max_line_bytes = max_line_bytes
        self._retry_policy = retry_policy
        self._retry_budget = retry_budget
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._reader: LineReader | None = None
        self._next_id = 0
        self._ingest_stream: str | None = None
        self._ingest_seq = 0
        self._broken = False
        self._closed = False
        self._connect()

    # -- connection lifecycle --------------------------------------------
    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._reader = LineReader(
            self._sock, max_line_bytes=self._max_line_bytes
        )

    def _teardown(self) -> None:
        """Drop the current socket (a later attempt reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None

    def _mark_unusable(self) -> None:
        """The stream can no longer be trusted: close it and make
        every subsequent call fail immediately."""
        self._teardown()
        self._broken = True

    @property
    def usable(self) -> bool:
        """False once the client is closed or desynchronized."""
        return not (self._closed or self._broken)

    # -- transport -------------------------------------------------------
    def request_raw(self, request: dict) -> dict:
        """Send one request dict, return the raw response dict.

        No id verification and no retries — the low-level escape
        hatch.  Transport failures drop the connection so the next
        high-level request can reconnect.
        """
        if self._sock is None:
            self._connect()
        injector = active_injector()
        try:
            if injector is not None:
                injector.before("client:send")
            self._sock.sendall(encode_message(request))
            if injector is not None:
                injector.before("client:recv")
            line = self._reader.readline()
        except ProtocolError:
            # Oversized/unframeable response: beyond resynchronization.
            self._mark_unusable()
            raise
        except OSError:
            self._teardown()
            raise
        if line is None:
            self._teardown()
            raise ConnectionError("server closed the connection")
        try:
            return validate_response(decode_line(line))
        except ProtocolError:
            # Undecodable or schema-invalid response: the server (or
            # whatever is impersonating it) cannot be trusted further.
            self._mark_unusable()
            raise

    def request(self, op: str, **params):
        """Send one ``op`` request; return its ``result`` or raise
        :class:`ServiceError`.

        Verifies the response id matches the request id.  On a
        mismatch the socket is closed immediately — with a retry
        policy the request is replayed on a fresh connection,
        otherwise the client is marked unusable and every subsequent
        call raises :class:`ConnectionError` without touching the
        network.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        if self._broken:
            raise ConnectionError(
                "client is unusable after a desynchronized or "
                "undecodable response; create a new client"
            )
        self._next_id += 1
        request_id = self._next_id
        # Built exactly once: every retry below resends this same dict,
        # so a mutating request keeps its original sequence number and
        # the server's dedup map can absorb the replay.
        request = {"id": request_id, "op": op, **params}

        if self._retry_policy is None or not _retry_safe(op, params):
            response = self._attempt(request)
        else:
            deadline = (
                Deadline.after(self._retry_budget)
                if self._retry_budget is not None
                else Deadline.never()
            )
            # Ingest also retries across a primary failover: the same
            # request dict is resent, so the batch's (stream, seq)
            # dedups on whichever replica ends up primary.
            retry_transient = op == "ingest"

            def attempt() -> dict:
                response = self._attempt(request)
                if retry_transient and not response.get("ok"):
                    error = response.get("error", {})
                    if error.get("type") in _TRANSIENT_ERROR_TYPES:
                        raise _TransientServiceError(error)
                return response

            try:
                response = call_with_retry(
                    attempt,
                    policy=self._retry_policy,
                    retry_on=(OSError, _TransientServiceError),
                    deadline=deadline,
                    rng=self._rng,
                    label="service_client",
                )
            except RetriesExhausted as exc:
                if isinstance(exc.last, _TransientServiceError):
                    # Out of retries with the shard still unavailable
                    # or still pointing us elsewhere: surface the
                    # structured error, not a transport failure.
                    raise ServiceError(exc.last.error) from exc.last
                raise ConnectionError(str(exc)) from exc.last
        if not response.get("ok"):
            raise ServiceError(response.get("error", {}))
        return response.get("result")

    def _attempt(self, request: dict) -> dict:
        response = self.request_raw(request)
        if response.get("id") != request["id"]:
            self._teardown()
            if self._retry_policy is None:
                self._broken = True
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request['id']!r}; connection closed"
            )
        return response

    # -- ops -------------------------------------------------------------
    def ping(self) -> str:
        return self.request("ping")

    def neighbors(self, node: int) -> list[int]:
        return self.request("neighbors", node=node)

    def degree(self, node: int) -> int:
        return self.request("degree", node=node)

    def khop(self, node: int, k: int) -> dict[int, int]:
        raw = self.request("khop", node=node, k=k)
        return {int(v): d for v, d in raw.items()}

    def pagerank_score(self, node: int) -> float:
        return self.request("pagerank", node=node)

    def stats(self) -> dict:
        return self.request("stats")

    def telemetry(self) -> dict:
        """The server's identity + full registry snapshot
        (``{"instance", "pid", "registry"}``) — what the cluster
        collector merges across instances."""
        return self.request("telemetry")

    def repl_status(self) -> dict:
        """This instance's replication state: role, term, applied/last
        LSN, and (on a primary) per-follower ack cursors and lag."""
        return self.request("repl_status")

    def batch(self, requests: list[dict]) -> list[dict]:
        """Send a batch; returns the per-request response dicts in
        request order (errors inline, not raised)."""
        return self.request("batch", requests=requests)

    def ingest(
        self,
        mutations: list,
        *,
        stream: str | None = None,
        seq: int | None = None,
    ) -> dict:
        """Stream one edge-mutation batch to a mutable server.

        ``mutations`` is a list of ``["+"|"-", u, v]`` items.  The
        client manages its own stream identity: a random stream id is
        minted on first use and each call consumes one ``seq`` —
        *including* calls that fail.  A failed request may still have
        been recorded under its sequence number somewhere (a cluster
        shard that applied its sub-batch before a sibling failed, an
        ack lost in transit), so reusing the number for a *different*
        batch would let that server dedup — i.e. silently drop — the
        new mutations; burning the number instead is always safe
        because servers accept sequence gaps.  Retries *within* one
        call (transport failures under a retry policy) resend the
        original ``seq`` and are deduplicated server-side.  Pass
        explicit ``stream``/``seq`` to drive the sequencing yourself
        (e.g. to resume a stream after a client restart).

        Returns the result dict ``{"applied", "lsn"[, "duplicate"]}``.
        """
        if stream is None:
            if self._ingest_stream is None:
                import uuid

                self._ingest_stream = f"c-{uuid.uuid4().hex[:16]}"
            stream = self._ingest_stream
        if seq is None:
            seq = self._ingest_seq
            self._ingest_seq += 1
        return self.request(
            "ingest", stream=stream, seq=seq, mutations=mutations
        )

    def shutdown_server(self) -> str:
        """Ask the server to stop gracefully."""
        return self.request("shutdown")

    def close(self) -> None:
        self._closed = True
        self._teardown()

    def __enter__(self) -> "SummaryServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
