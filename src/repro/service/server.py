"""TCP front-end for :class:`~repro.service.engine.QueryEngine`.

Plain stdlib networking: one listening socket, an acceptor thread,
and a fixed pool of worker threads each serving one connection at a
time from a shared queue (the pool size therefore bounds concurrent
connections — queued connections wait, they are not dropped).  The
protocol is newline-delimited JSON (:mod:`repro.service.protocol`).

Operational behaviour:

* **per-request deadline** — each request gets
  ``now + request_timeout``; the engine checks it at its iteration
  checkpoints and the request fails with a structured ``timeout``
  error instead of wedging a worker;
* **structured errors** — malformed JSON, unknown ops, bad arguments
  and internal faults all produce ``{"ok": false, "error": ...}``
  responses; a connection is only closed on EOF, idle timeout, or
  transport failure;
* **graceful shutdown** — SIGINT (or a ``shutdown`` request, or
  :meth:`SummaryQueryServer.shutdown`) stops accepting, lets every
  worker finish its in-flight request, flushes responses, closes
  connections, and logs a final stats line;
* **load shedding** — with ``max_pending`` set, a connection arriving
  while that many accepted connections already wait unserved gets one
  structured ``overloaded`` error and an immediate close instead of
  an unbounded queue (counted in ``service_shed_total``);
* **circuit breaker** — with a
  :class:`~repro.resilience.breaker.CircuitBreaker` attached,
  consecutive *internal* engine faults open the breaker and requests
  are rejected cheaply with ``overloaded`` errors until the reset
  window lets a probe through;
* **mutable engines** — serving a
  :class:`~repro.service.ingest.MutableQueryEngine` additionally
  enables the ``ingest`` op; the server itself needs no special
  handling (ingest rides the normal ``query`` path), but error
  responses, like successes, are stamped with the engine's
  read-consistency ``epoch`` so a client can always tell which state
  a verdict was issued against.

Fault-injection site: ``server:accept`` (a scheduled ``drop`` fault
closes the freshly-accepted connection, the client sees a peer
reset).
"""

from __future__ import annotations

import logging
import queue
import signal
import socket
import threading
import time

from repro.service.engine import (
    QueryEngine,
    QueryError,
    error_response,
)
from repro.obs.tracer import get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import active_injector
from repro.service.metrics import MetricsLogger
from repro.service.protocol import (
    LineReader,
    ProtocolError,
    decode_line,
    encode_message,
    validate_request,
)

__all__ = ["SummaryQueryServer"]

logger = logging.getLogger("repro.service")

#: How often (seconds) a blocked worker wakes to poll the stop flag.
_POLL_INTERVAL = 0.2


class SummaryQueryServer:
    """Serve one :class:`QueryEngine` over TCP.

    Parameters
    ----------
    engine:
        The engine to serve; its metrics object also receives the
        server-side counters.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port — read it
        back from :attr:`address` after :meth:`start`.
    workers:
        Worker-thread pool size == maximum concurrent connections.
    request_timeout:
        Per-request deadline in seconds.
    idle_timeout:
        Close a connection after this long without a request.
    log_interval:
        When set, a daemon thread logs a stats line this often.
    max_pending:
        Bound on accepted-but-unserved connections; arrivals beyond it
        are shed with an ``overloaded`` error.  ``None`` keeps the
        historical unbounded queue.
    breaker:
        Optional circuit breaker around the engine; ``None`` disables
        it.
    """

    def __init__(
        self,
        engine: QueryEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 8,
        request_timeout: float = 10.0,
        idle_timeout: float = 300.0,
        log_interval: float | None = None,
        max_pending: int | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        self.engine = engine
        self.metrics = engine.metrics
        self._host = host
        self._port = port
        self._workers = workers
        self._request_timeout = request_timeout
        self._idle_timeout = idle_timeout
        self._log_interval = log_interval
        self._max_pending = max_pending
        self._breaker = breaker
        self._socket: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: queue.Queue = queue.Queue()
        self._stop_event = threading.Event()
        self._started = False
        self._metrics_logger: MetricsLogger | None = None

    # -- lifecycle -------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._socket is None:
            raise RuntimeError("server is not started")
        return self._socket.getsockname()[:2]

    def start(self) -> "SummaryQueryServer":
        """Bind, listen, and spin up the acceptor + worker pool."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(128)
        listener.settimeout(_POLL_INTERVAL)
        self._socket = listener
        self._started = True
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-acceptor", daemon=True
        )
        acceptor.start()
        self._threads.append(acceptor)
        for i in range(self._workers):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{i}",
                daemon=True,
            )
            worker.start()
            self._threads.append(worker)
        if self._log_interval:
            self._metrics_logger = MetricsLogger(
                self.metrics, self._log_interval
            )
            self._metrics_logger.start()
        host, port = self.address
        describe = getattr(self.engine, "describe", None)
        if callable(describe):
            # Router-style engines serve no representation of their own.
            what = describe()
        else:
            rep = self.engine.representation
            what = f"summary (n={rep.n}, |P|={rep.num_supernodes})"
        logger.info(
            "serving %s on %s:%d with %d workers",
            what, host, port, self._workers,
        )
        return self

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Block until shutdown; optionally wire SIGINT/SIGTERM to a
        graceful stop (only possible from the main thread).

        Handler installation happens *inside* the ``try`` whose
        ``finally`` restores the previous handlers, so no exception —
        during installation, serving, or shutdown — can leave the
        process with the server's handlers still installed.
        """
        self.start()
        previous: dict[int, object] = {}
        in_main = threading.current_thread() is threading.main_thread()
        try:
            if install_signal_handlers and in_main:
                def _handle(signum, frame):
                    logger.info(
                        "signal %s received, shutting down gracefully",
                        signal.Signals(signum).name,
                    )
                    self.shutdown()

                for signum in (signal.SIGINT, signal.SIGTERM):
                    previous[signum] = signal.signal(signum, _handle)
            self._stop_event.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
            self.close()

    def shutdown(self) -> None:
        """Signal a graceful stop (idempotent, callable from any
        thread, including a worker serving the ``shutdown`` op)."""
        self._stop_event.set()

    def close(self, timeout: float = 10.0) -> None:
        """Wait for workers to drain in-flight requests and release
        everything; implies :meth:`shutdown`."""
        self.shutdown()
        if self._metrics_logger is not None:
            self._metrics_logger.stop()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        # Connections still queued (accepted, never served) are closed
        # now that no worker will pick them up.
        while True:
            try:
                pending = self._connections.get_nowait()
            except queue.Empty:
                break
            if pending is not None:
                self._close_connection(pending[0])
        if self._socket is not None:
            self._socket.close()
        if self._started:
            logger.info("final %s", self.metrics.log_line())
            self._started = False

    def __enter__(self) -> "SummaryQueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- acceptor ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                conn, peer = self._socket.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us during shutdown
            injector = active_injector()
            if injector is not None:
                try:
                    injector.before("server:accept")
                except ConnectionError:
                    conn.close()  # injected drop: vanish like a peer reset
                    continue
            if (
                self._max_pending is not None
                and self._connections.qsize() >= self._max_pending
            ):
                self._shed_connection(conn, peer)
                continue
            self.metrics.connection_opened()
            self._connections.put((conn, peer))

    def _shed_connection(self, conn: socket.socket, peer) -> None:
        """Load shedding: one structured error, then close."""
        self.metrics.shed()
        logger.warning(
            "shedding connection from %s (%d pending >= max_pending=%d)",
            peer, self._connections.qsize(), self._max_pending,
        )
        self._send(conn, {
            "id": None,
            "ok": False,
            "op": None,
            "error": {
                "type": "overloaded",
                "message": "server accept queue is full; retry later",
            },
        })
        try:
            conn.close()
        except OSError:
            pass

    # -- workers ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            try:
                item = self._connections.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                continue
            conn, peer = item
            try:
                self._serve_connection(conn, peer)
            except Exception:
                logger.exception("connection handler crashed for %s", peer)
            finally:
                self._close_connection(conn)

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        conn.settimeout(_POLL_INTERVAL)
        reader = LineReader(conn)
        last_activity = time.monotonic()
        while not self._stop_event.is_set():
            try:
                line = reader.readline()
            except socket.timeout:
                if time.monotonic() - last_activity > self._idle_timeout:
                    logger.info("closing idle connection from %s", peer)
                    return
                continue
            except ProtocolError as exc:
                # Unterminated oversized line: the stream is beyond
                # recovery; report once and drop the connection.
                self._send(conn, _protocol_error(exc))
                return
            except OSError:
                return
            if line is None:
                return  # client closed
            if not line.strip():
                continue
            last_activity = time.monotonic()
            response, stop_after = self._handle_line(line)
            if not self._send(conn, response):
                return
            if stop_after:
                self.shutdown()
                return

    def _handle_line(self, line: bytes) -> tuple[dict, bool]:
        """One request line -> (response dict, stop-server flag)."""
        try:
            request = decode_line(line)
        except ProtocolError as exc:
            self.metrics.protocol_rejected("frame")
            return _protocol_error(exc), False
        try:
            validate_request(request)
        except ProtocolError as exc:
            # Schema violations echo the id (when it is echoable) so
            # pipelining clients can pair the rejection to its request.
            self.metrics.protocol_rejected("schema")
            return _schema_error(request, exc), False
        tracer = get_tracer()
        if not tracer.enabled:
            return self._handle_request(request)
        # Adopt the caller's trace context (already validated above)
        # so this span — and every span nested under it, including
        # fan-outs to further shards — joins the caller's trace.  The
        # span closes (and hits the tracer's sink) before the response
        # is sent, so a collector reading after the client saw the
        # reply never races the span file.
        context = None
        wire_trace = request.get("trace")
        if wire_trace is not None:
            from repro.obs.context import TraceContext

            context = TraceContext.from_wire(wire_trace)
        with tracer.span(
            "service:request", context=context, op=request.get("op")
        ) as span:
            response, stop_after = self._handle_request(request)
            span.set(ok=bool(response.get("ok")))
            if wire_trace is not None and isinstance(response, dict):
                response["trace"] = {
                    "id": span.trace_id, "span": span.span_id,
                }
            return response, stop_after

    def _handle_request(self, request: dict) -> tuple[dict, bool]:
        deadline = time.monotonic() + self._request_timeout
        op = request.get("op")
        breaker = self._breaker
        if breaker is not None and op != "shutdown" and not breaker.allow():
            self.metrics.breaker_rejected()
            return {
                "id": request.get("id"),
                "ok": False,
                "op": op,
                "error": {
                    "type": "overloaded",
                    "message": "circuit breaker open; retry later",
                },
            }, False
        try:
            if op == "shutdown":
                self.metrics.observe("shutdown", 0.0)
                return {
                    "id": request.get("id"),
                    "ok": True,
                    "op": "shutdown",
                    "result": "shutting down",
                }, True
            if op == "batch":
                response = self._handle_batch(request, deadline), False
            else:
                response = self.engine.query(request, deadline), False
            if breaker is not None:
                breaker.record_success()
            return response
        except QueryError as exc:
            # Client errors and per-request timeouts are not evidence
            # the engine is sick; they do not trip the breaker.
            if breaker is not None:
                breaker.record_success()
            response = error_response(request, exc)
            epoch = getattr(self.engine, "epoch", None)
            if isinstance(epoch, int):
                response["epoch"] = epoch
            return response, False
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            if breaker is not None:
                opened_before = breaker.times_opened
                breaker.record_failure()
                if breaker.times_opened > opened_before:
                    self.metrics.breaker_opened()
                    logger.error(
                        "circuit breaker opened after %d consecutive "
                        "internal failures", breaker.failure_threshold,
                    )
            logger.exception("internal error answering %r", op)
            return {
                "id": request.get("id"),
                "ok": False,
                "op": op,
                "error": {
                    "type": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                },
            }, False

    def _handle_batch(self, request: dict, deadline: float) -> dict:
        started = time.perf_counter()
        sub_requests = request.get("requests")
        if not isinstance(sub_requests, list):
            raise QueryError(
                "bad_request", "'batch' needs a 'requests' list"
            )
        responses = self.engine.query_many(sub_requests, deadline)
        self.metrics.observe("batch", time.perf_counter() - started)
        return {
            "id": request.get("id"),
            "ok": True,
            "op": "batch",
            "result": responses,
        }

    # -- plumbing ----------------------------------------------------------
    def _send(self, conn: socket.socket, message: dict) -> bool:
        try:
            conn.sendall(encode_message(message))
            return True
        except OSError:
            return False

    def _close_connection(self, conn: socket.socket) -> None:
        try:
            conn.close()
        finally:
            self.metrics.connection_closed()


def _protocol_error(exc: ProtocolError) -> dict:
    return {
        "id": None,
        "ok": False,
        "op": None,
        "error": {"type": "bad_request", "message": str(exc)},
    }


def _schema_error(request: dict, exc: ProtocolError) -> dict:
    """A ``bad_request`` for a decodable frame that failed validation."""
    request_id = request.get("id")
    if not isinstance(request_id, (str, int, float, bool, type(None))):
        request_id = None  # unechoable id: do not reflect it back
    op = request.get("op")
    return {
        "id": request_id,
        "ok": False,
        "op": op if isinstance(op, str) else None,
        "error": {"type": "bad_request", "message": str(exc)},
    }
