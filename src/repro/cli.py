"""Command-line interface.

Exposes the library's pipeline as a tool::

    python -m repro summarize graph.txt -a mags -T 50 -o summary.txt
    python -m repro reconstruct summary.txt -o restored.txt
    python -m repro verify summary.txt --graph graph.txt --deep
    python -m repro stats graph.txt
    python -m repro compare graph.txt -a mags,mags-dm,ldme
    python -m repro dataset CN -o cn_analog.txt
    python -m repro serve summary.txt --port 7077
    python -m repro cluster plan graph.txt -o cluster/ --shards 2
    python -m repro cluster start cluster/topology.json
    python -m repro profile -a mags-dm -d CA --trace-out trace.jsonl
    python -m repro trace trace.jsonl --validate --phases

Edge lists are whitespace-separated ``u v`` lines (SNAP style, ``#``
comments allowed); summaries use the v1 text format of
:mod:`repro.core.serialization`.  Both transparently gzip when the
path ends in ``.gz``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.algorithms import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    RandomizedSummarizer,
    SluggerSummarizer,
    Summarizer,
    SWeGSummarizer,
)
from repro.core.lossy import make_lossy
from repro.core.serialization import (
    load_representation,
    load_representation_checked,
    save_representation,
)
from repro.core.verify import deep_audit, verify_lossless
from repro.durability.wal import FSYNC_POLICIES
from repro.graph.datasets import dataset_codes, load_dataset
from repro.graph.graph import GraphError
from repro.graph.io import INGEST_POLICIES, load_graph_checked, save_graph
from repro.graph.stats import graph_stats

__all__ = ["main", "build_parser", "ALGORITHMS"]

#: CLI name -> summarizer factory (iterations, seed) -> Summarizer.
ALGORITHMS: dict[str, Callable[[int, int], Summarizer]] = {
    "mags": lambda T, seed: MagsSummarizer(iterations=T, seed=seed),
    "mags-dm": lambda T, seed: MagsDMSummarizer(iterations=T, seed=seed),
    "greedy": lambda T, seed: GreedySummarizer(seed=seed),
    "randomized": lambda T, seed: RandomizedSummarizer(seed=seed),
    "sweg": lambda T, seed: SWeGSummarizer(iterations=T, seed=seed),
    "ldme": lambda T, seed: LDMESummarizer(
        iterations=T, signature_length=2, seed=seed
    ),
    "slugger": lambda T, seed: SluggerSummarizer(iterations=T, seed=seed),
}


def _add_ingest_options(subparser: argparse.ArgumentParser) -> None:
    """Validated-ingestion flags shared by every graph-loading command."""
    group = subparser.add_argument_group("ingestion hardening")
    group.add_argument(
        "--ingest-policy", choices=INGEST_POLICIES, default="strict",
        help=(
            "what to do with malformed lines: strict=fail (default), "
            "skip=drop and count, quarantine=drop into a sidecar file"
        ),
    )
    group.add_argument(
        "--max-nodes", type=int, default=None,
        help="reject inputs with more than this many nodes",
    )
    group.add_argument(
        "--max-edges", type=int, default=None,
        help="reject inputs with more than this many edge records",
    )
    group.add_argument(
        "--quarantine-path", default=None,
        help=(
            "sidecar for rejected lines under --ingest-policy "
            "quarantine (default: INPUT.quarantine)"
        ),
    )


def _load_graph_from_args(args: argparse.Namespace, path: str):
    """Load ``path`` honouring the ingestion flags; print rejections.

    Rejected inputs (strict-policy violations, cap overruns, corrupt
    files) exit with a one-line diagnostic instead of a traceback.
    """
    try:
        graph, report = load_graph_checked(
            path,
            policy=getattr(args, "ingest_policy", "strict"),
            max_nodes=getattr(args, "max_nodes", None),
            max_edges=getattr(args, "max_edges", None),
            quarantine_path=getattr(args, "quarantine_path", None),
        )
    except (GraphError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(1) from exc
    if report.rejected:
        by_reason = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(report.rejected_by_reason.items())
        )
        print(
            f"ingestion rejected {report.rejected} line(s) ({by_reason})",
            file=sys.stderr,
        )
        if report.quarantine_path is not None:
            print(
                f"quarantined lines written to {report.quarantine_path}",
                file=sys.stderr,
            )
    return graph


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Lossless graph summarization (SIGMOD 2024 'Compactness "
            "Meets Efficiency' reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="summarize an edge-list file"
    )
    summarize.add_argument("input", help="edge-list file (u v per line)")
    summarize.add_argument(
        "-a", "--algorithm", choices=sorted(ALGORITHMS), default="mags-dm"
    )
    summarize.add_argument(
        "-T", "--iterations", type=int, default=50,
        help="iteration count T (default 50, the paper's setting)",
    )
    summarize.add_argument("-s", "--seed", type=int, default=0)
    summarize.add_argument(
        "-o", "--output", help="write the summary here (v1 text format)"
    )
    summarize.add_argument(
        "--epsilon", type=float, default=0.0,
        help="bounded-error lossy pruning (0 = lossless, the default)",
    )
    summarize.add_argument(
        "--no-verify", action="store_true",
        help="skip the lossless reconstruction check",
    )
    summarize.add_argument(
        "--checkpoint-dir",
        help=(
            "snapshot iteration state to this directory "
            "(mags/mags-dm only; see docs/resilience.md)"
        ),
    )
    summarize.add_argument(
        "--checkpoint-interval", type=int, default=5,
        help="iterations between snapshots (default 5)",
    )
    summarize.add_argument(
        "--resume", action="store_true",
        help="resume from the newest valid checkpoint in --checkpoint-dir",
    )
    budgets = summarize.add_argument_group(
        "resource budgets (anytime mode)",
        description=(
            "when a budget runs out the algorithm stops merging and "
            "returns the best summary found so far — still lossless, "
            "flagged truncated"
        ),
    )
    budgets.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="soft wall-clock budget for the summarization run",
    )
    budgets.add_argument(
        "--memory-budget", type=float, default=None, metavar="MB",
        help="soft RSS watermark; a watchdog thread samples /proc",
    )
    budgets.add_argument(
        "--max-candidates", type=int, default=None,
        help="cap the candidate-pair pool per iteration",
    )
    budgets.add_argument(
        "--max-merges", type=int, default=None,
        help="stop after this many committed merges",
    )
    _add_ingest_options(summarize)

    reconstruct = sub.add_parser(
        "reconstruct", help="restore the edge list from a summary"
    )
    reconstruct.add_argument("input", help="summary file")
    reconstruct.add_argument("-o", "--output", required=True)

    verify = sub.add_parser(
        "verify",
        help="check a summary artifact's integrity (checksum + invariants)",
    )
    verify.add_argument("input", help="summary file (v1 text format)")
    verify.add_argument(
        "--graph",
        help=(
            "original edge-list file; when given, exact lossless "
            "reconstruction is also checked"
        ),
    )
    verify.add_argument(
        "--deep", action="store_true",
        help=(
            "full invariant audit: correction consistency and "
            "re-encoding optimality (Algorithm 4), not just parseability"
        ),
    )

    stats = sub.add_parser("stats", help="print edge-list statistics")
    stats.add_argument("input")
    _add_ingest_options(stats)

    compare = sub.add_parser(
        "compare", help="run several algorithms and print a comparison"
    )
    compare.add_argument("input")
    compare.add_argument(
        "-a", "--algorithms",
        default="mags,mags-dm,sweg,ldme",
        help="comma-separated list (default: mags,mags-dm,sweg,ldme)",
    )
    compare.add_argument("-T", "--iterations", type=int, default=25)
    compare.add_argument("-s", "--seed", type=int, default=0)
    _add_ingest_options(compare)

    dataset = sub.add_parser(
        "dataset", help="export a Table 2 synthetic analog as an edge list"
    )
    dataset.add_argument("code", help=f"one of: {', '.join(dataset_codes())}")
    dataset.add_argument("-o", "--output", required=True)

    serve = sub.add_parser(
        "serve",
        help="serve summary queries over TCP (line-delimited JSON)",
    )
    serve.add_argument("input", help="summary file (v1 text format)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--workers", type=int, default=8,
        help="worker threads == max concurrent connections (default 8)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096,
        help="LRU neighborhood cache capacity in nodes (default 4096)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-request deadline in seconds (default 10)",
    )
    serve.add_argument(
        "--log-interval", type=float, default=30.0,
        help="seconds between periodic stats log lines (0 disables)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None,
        help=(
            "bound on queued connections before new ones are shed "
            "with an 'overloaded' error (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--degraded", action="store_true",
        help=(
            "answer khop/pagerank past their deadline with flagged "
            "partial/approximate results instead of timeout errors"
        ),
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=0,
        help=(
            "consecutive internal errors before the circuit breaker "
            "opens (0 disables the breaker)"
        ),
    )
    serve.add_argument(
        "--trace-dir", default=None,
        help=(
            "enable tracing and stream span records to a size-capped "
            "JSONL file in this directory (cluster collector input)"
        ),
    )
    serve.add_argument(
        "--instance-label", default=None,
        help=(
            "label stamped into span records and the telemetry op "
            "(e.g. shard0/r1); default: pid-<pid> when tracing"
        ),
    )
    serve.add_argument(
        "--wal-dir", default=None,
        help=(
            "enable the durable 'ingest' op: append mutations to a "
            "write-ahead log in this directory, recover checkpoint + "
            "WAL tail on startup (see docs/resilience.md)"
        ),
    )
    serve.add_argument(
        "--fsync", choices=FSYNC_POLICIES, default="always",
        help=(
            "WAL fsync policy: 'always' (fsync every append — the "
            "durability default), 'interval' (every --fsync-interval "
            "appends), 'never' (leave it to the OS)"
        ),
    )
    serve.add_argument(
        "--fsync-interval", type=int, default=8,
        help="appends between fsyncs under --fsync interval (default 8)",
    )
    serve.add_argument(
        "--wal-segment-bytes", type=int, default=4 << 20,
        help="rotate WAL segments at this size (default 4 MiB)",
    )
    serve.add_argument(
        "--compact-interval", type=float, default=30.0,
        help=(
            "seconds between background WAL-to-checkpoint compactions "
            "(0 disables the compactor; default 30)"
        ),
    )
    serve.add_argument(
        "--max-inflight-mutations", type=int, default=64,
        help=(
            "ingest admission cap: concurrent mutation batches beyond "
            "this are shed with an 'overloaded' error (default 64)"
        ),
    )
    serve.add_argument(
        "--ingest-memory-budget", type=float, default=None,
        help=(
            "park ingest (structured 'overloaded') once process RSS "
            "exceeds this many MiB; reads stay up (default: off)"
        ),
    )
    serve.add_argument(
        "--dedup-capacity", type=int, default=4096,
        help=(
            "ingest streams remembered for retry dedup, evicted in "
            "commit order past this (0 = unbounded; default 4096)"
        ),
    )
    serve.add_argument(
        "--maintenance-interval", type=float, default=0.0,
        help=(
            "seconds between background compactness-maintenance ticks "
            "re-summarizing the dirtiest regions (requires --wal-dir; "
            "0 disables; default 0)"
        ),
    )
    serve.add_argument(
        "--maintenance-budget-seconds", type=float, default=1.0,
        help=(
            "wall-clock budget per maintenance tick, checked between "
            "passes (default 1.0; 0 = unlimited)"
        ),
    )
    serve.add_argument(
        "--maintenance-budget-merges", type=int, default=None,
        help=(
            "deterministic merge cap per maintenance pass, recorded "
            "in the WAL for bit-identical replay (default: uncapped)"
        ),
    )
    serve.add_argument(
        "--maintenance-max-supernodes", type=int, default=64,
        help=(
            "super-nodes dissolved per maintenance pass — the chunk "
            "size each epoch swap pays for (default 64)"
        ),
    )
    serve.add_argument(
        "--repl-role", choices=("primary", "follower"), default=None,
        help=(
            "join a per-shard replication group as this role "
            "(requires --wal-dir): a primary WAL-ships every commit "
            "to its --repl-follower peers; a follower applies the "
            "shipped stream and rejects direct ingest"
        ),
    )
    serve.add_argument(
        "--repl-follower", action="append", default=None,
        metavar="HOST:PORT",
        help=(
            "follower address to replicate to (repeatable; primary "
            "role only)"
        ),
    )
    serve.add_argument(
        "--repl-acks", choices=("leader", "quorum"), default="quorum",
        help=(
            "when to acknowledge a write: 'quorum' — once a majority "
            "of the replica set holds it; 'leader' — once the local "
            "WAL holds it (default quorum)"
        ),
    )

    cluster = sub.add_parser(
        "cluster",
        help="sharded serving: plan/start/stop/status a summary cluster",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cplan = cluster_sub.add_parser(
        "plan",
        help=(
            "slice a graph into per-shard summary artifacts and write "
            "topology.json"
        ),
    )
    cplan.add_argument("input", help="edge-list file (u v per line)")
    cplan.add_argument("-o", "--out", required=True, help="cluster directory")
    cplan.add_argument("--shards", type=int, default=2)
    cplan.add_argument("--replicas", type=int, default=1)
    cplan.add_argument(
        "-a", "--algorithm", choices=sorted(ALGORITHMS), default="mags-dm"
    )
    cplan.add_argument("-T", "--iterations", type=int, default=25)
    cplan.add_argument("-s", "--seed", type=int, default=0)
    cplan.add_argument("--host", default="127.0.0.1")
    cplan.add_argument(
        "--base-port", type=int, default=7400,
        help="router port; instances get consecutive ports above it",
    )
    cplan.add_argument(
        "--acks", choices=("leader", "quorum"), default="quorum",
        help=(
            "replication ack mode recorded in the topology for "
            "replicated durable ingest (default quorum)"
        ),
    )
    cplan.add_argument(
        "--topology", default=None,
        help="merge ports/failover settings from an existing topology file",
    )
    _add_ingest_options(cplan)

    cstart = cluster_sub.add_parser(
        "start",
        help=(
            "launch every instance subprocess plus the router and serve "
            "until SIGINT"
        ),
    )
    cstart.add_argument("topology", help="topology.json from 'cluster plan'")
    cstart.add_argument(
        "--workers", type=int, default=4,
        help="worker threads per instance (default 4)",
    )
    cstart.add_argument(
        "--router-workers", type=int, default=8,
        help="router worker threads (default 8)",
    )
    cstart.add_argument(
        "--cache-size", type=int, default=4096,
        help="per-instance LRU cache capacity (default 4096)",
    )
    cstart.add_argument(
        "--trace-dir", default=None,
        help=(
            "enable cluster-wide tracing: every instance (and the "
            "router) streams its spans into this directory"
        ),
    )
    cstart.add_argument(
        "--wal-dir", default=None,
        help=(
            "enable durable ingest: every instance gets a private WAL "
            "+ checkpoint directory under this path; with a "
            "replicas>1 topology each shard's replica 0 starts as "
            "primary and WAL-ships to its siblings (acks per the "
            "topology's 'acks' field)"
        ),
    )
    cstart.add_argument(
        "--maintenance-interval", type=float, default=0.0,
        help=(
            "forward background compactness maintenance to every "
            "instance (requires --wal-dir; 0 disables; default 0)"
        ),
    )
    cstart.add_argument(
        "--maintenance-budget-seconds", type=float, default=1.0,
        help="per-instance maintenance tick budget (default 1.0)",
    )
    cstart.add_argument(
        "--maintenance-budget-merges", type=int, default=None,
        help="per-instance deterministic merge cap per pass",
    )
    cstart.add_argument(
        "--maintenance-max-supernodes", type=int, default=64,
        help="per-instance super-nodes dissolved per pass (default 64)",
    )

    ctrace = cluster_sub.add_parser(
        "trace",
        help=(
            "reassemble one request's cross-process span tree from a "
            "cluster --trace-dir"
        ),
    )
    ctrace.add_argument("trace_id", help="the request's trace id")
    ctrace.add_argument(
        "--trace-dir", required=True,
        help="directory the cluster instances exported spans into",
    )
    ctrace.add_argument(
        "--out", default=None,
        help="also write the merged single-trace JSONL here",
    )

    ctelemetry = cluster_sub.add_parser(
        "telemetry",
        help=(
            "pull every instance's registry snapshot and print the "
            "merged cluster Prometheus dump"
        ),
    )
    ctelemetry.add_argument("topology", help="topology.json")
    ctelemetry.add_argument("--timeout", type=float, default=5.0)
    ctelemetry.add_argument(
        "--json-out", default=None,
        help=(
            "write the raw per-instance snapshots as a "
            "cluster_telemetry JSON file ('repro slo' input)"
        ),
    )
    ctelemetry.add_argument(
        "--prom-out", default=None,
        help="write the merged Prometheus dump here instead of stdout",
    )

    cstatus = cluster_sub.add_parser(
        "status", help="probe the router and every instance of a topology"
    )
    cstatus.add_argument("topology", help="topology.json")
    cstatus.add_argument("--timeout", type=float, default=3.0)

    cstop = cluster_sub.add_parser(
        "stop",
        help=(
            "send a shutdown request to the router and every reachable "
            "instance"
        ),
    )
    cstop.add_argument("topology", help="topology.json")
    cstop.add_argument("--timeout", type=float, default=5.0)

    bench = sub.add_parser(
        "bench", help="run one of the paper's experiments and print it"
    )
    bench.add_argument(
        "experiment",
        help="experiment name (see --list), e.g. fig4, table3",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="list available experiment names and exit",
    )

    profile = sub.add_parser(
        "profile",
        help="run one algorithm under the tracer; print its phase profile",
    )
    profile.add_argument(
        "-a", "--algorithm", choices=sorted(ALGORITHMS), default="mags-dm"
    )
    profile.add_argument(
        "-d", "--dataset",
        help=f"Table 2 analog code ({', '.join(dataset_codes())})",
    )
    profile.add_argument(
        "-i", "--input", help="edge-list file (alternative to --dataset)"
    )
    profile.add_argument("-T", "--iterations", type=int, default=20)
    profile.add_argument("-s", "--seed", type=int, default=0)
    profile.add_argument(
        "--trace-out",
        help="write the span records as JSONL here (.gz supported)",
    )
    profile.add_argument(
        "--prom-out",
        help="write the metrics registry in Prometheus text format here",
    )

    trace = sub.add_parser(
        "trace", help="inspect a trace JSONL file written by 'profile'"
    )
    trace.add_argument("input", help="trace JSONL file (.gz supported)")
    trace.add_argument(
        "--validate", action="store_true",
        help="check the file against the span schema; nonzero exit on error",
    )
    trace.add_argument(
        "--phases", action="store_true",
        help="print total wall seconds per phase",
    )
    trace.add_argument(
        "--diff", metavar="OTHER",
        help="compare phase totals against another trace file",
    )

    slo = sub.add_parser(
        "slo",
        help=(
            "evaluate availability/latency SLOs against cluster "
            "telemetry; nonzero exit on violation"
        ),
    )
    slo.add_argument(
        "source",
        help=(
            "cluster_telemetry JSON ('repro cluster telemetry "
            "--json-out') or a topology.json to pull live telemetry "
            "from"
        ),
    )
    slo.add_argument(
        "--config", default=None,
        help=(
            "SLO definitions JSON ({\"slos\": [...]}); default: "
            "99%% availability + 1s p99 latency"
        ),
    )
    slo.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-instance pull timeout when source is a topology",
    )

    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args, args.input)
    print(f"loaded {graph}")
    summarizer = ALGORITHMS[args.algorithm](args.iterations, args.seed)
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if any(
        value is not None
        for value in (
            args.time_budget, args.memory_budget,
            args.max_candidates, args.max_merges,
        )
    ):
        from repro.resilience import ResourceBudget

        try:
            budget = ResourceBudget(
                time_budget=args.time_budget,
                memory_budget_mb=args.memory_budget,
                max_merges=args.max_merges,
                max_candidates=args.max_candidates,
            )
        except ValueError as exc:
            print(f"invalid budget: {exc}", file=sys.stderr)
            return 2
        summarizer.configure_budget(budget)
    if args.checkpoint_dir:
        from repro.resilience import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        summarizer.configure_checkpointing(
            store,
            interval=args.checkpoint_interval,
            resume=args.resume,
        )
        if args.resume:
            latest = store.latest()
            if latest is None:
                print("no valid checkpoint found; starting fresh")
            else:
                print(f"resuming from checkpoint step {latest.step}")
    result = summarizer.summarize(graph)
    if not args.no_verify:
        verify_lossless(graph, result.representation)
    print(result.summary_line())
    if result.truncated:
        print(
            f"budget exhausted ({result.truncated_reason}): the summary "
            "is a valid lossless anytime result, not the full run"
        )

    representation = result.representation
    if args.epsilon > 0.0:
        lossy = make_lossy(representation, args.epsilon)
        representation = lossy.representation
        print(
            f"lossy (epsilon={args.epsilon}): dropped "
            f"{lossy.corrections_dropped} corrections -> "
            f"relative_size={lossy.relative_size:.4f}"
        )
    if args.output:
        save_representation(args.output, representation)
        print(f"summary written to {args.output}")
    return 0


def _cmd_reconstruct(args: argparse.Namespace) -> int:
    representation = load_representation(args.input)
    graph = representation.reconstruct()
    save_graph(args.output, graph)
    print(f"reconstructed {graph} -> {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.serialization import FormatError

    try:
        representation, checksum = load_representation_checked(args.input)
    except FormatError as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        return 1
    print(f"checksum: {checksum}")
    if checksum == "absent":
        print(
            "note: no sha256 footer (pre-checksum or hand-written file); "
            "re-save to add one"
        )

    graph = None
    if args.graph:
        graph = _load_graph_from_args(args, args.graph)

    findings: list[str] = []
    if args.deep:
        findings = deep_audit(representation, graph)
    elif graph is not None:
        try:
            verify_lossless(graph, representation)
        except Exception as exc:  # LosslessnessError carries the detail
            findings = [str(exc)]

    if findings:
        for finding in findings:
            print(f"FAIL {finding}", file=sys.stderr)
        return 1
    checked = "deep audit" if args.deep else (
        "lossless reconstruction" if graph is not None else "parse + checksum"
    )
    print(f"OK {args.input} ({checked})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args, args.input)
    for key, value in graph_stats(graph).as_row().items():
        print(f"{key:10s} {value}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph_from_args(args, args.input)
    print(f"loaded {graph}")
    names = [name.strip() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALGORITHMS]
    if unknown:
        print(f"unknown algorithm(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    header = f"{'algorithm':12s} {'rel_size':>9s} {'cost':>8s} {'time_s':>8s}"
    print(header)
    print("-" * len(header))
    for name in names:
        result = ALGORITHMS[name](args.iterations, args.seed).summarize(graph)
        verify_lossless(graph, result.representation)
        print(
            f"{name:12s} {result.relative_size:9.4f} "
            f"{result.cost:8d} {result.runtime_seconds:8.3f}"
        )
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    graph = load_dataset(args.code)
    save_graph(args.output, graph)
    print(f"{args.code}: {graph} -> {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.service import QueryEngine, SummaryQueryServer

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    wal = None
    compactor = None
    maintenance = None
    pending = ()
    recovery_report = None
    tail_lsns = 0
    if args.wal_dir:
        from pathlib import Path as _Path

        from repro.core.serialization import load_representation
        from repro.durability import (
            WalCompactor,
            WriteAheadLog,
            recover_engine,
            replay_tail,
        )
        from repro.resilience import CheckpointStore, ResourceBudget
        from repro.service import MutableQueryEngine
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        wal_dir = _Path(args.wal_dir)
        wal = WriteAheadLog(
            wal_dir,
            fsync=args.fsync,
            fsync_interval=args.fsync_interval,
            segment_bytes=args.wal_segment_bytes,
            registry=metrics.registry,
        )
        store = CheckpointStore(wal_dir / "checkpoints")
        budget = None
        if args.ingest_memory_budget is not None:
            budget = ResourceBudget(
                memory_budget_mb=args.ingest_memory_budget
            ).start()
        engine, pending, recovery_report = recover_engine(
            load_representation(args.input),
            wal,
            store,
            engine_factory=lambda dynamic: MutableQueryEngine(
                dynamic,
                wal=wal,
                budget=budget,
                max_inflight=args.max_inflight_mutations,
                dedup_capacity=args.dedup_capacity,
                cache_size=args.cache_size,
                metrics=metrics,
                degraded=args.degraded,
            ),
        )
        if args.compact_interval > 0:
            # Seed with the recovered checkpoint's LSN so the first
            # pass doesn't re-cut a checkpoint the load already covers.
            compactor = WalCompactor(
                engine, wal, store,
                interval=args.compact_interval,
                last_lsn=recovery_report.checkpoint_lsn,
            )
        if args.maintenance_interval > 0:
            from repro.dynamic import MaintenanceTask

            maint_budget = None
            if (
                args.maintenance_budget_seconds > 0
                or args.maintenance_budget_merges is not None
            ):
                maint_budget = ResourceBudget(
                    time_budget=args.maintenance_budget_seconds or None,
                    max_merges=args.maintenance_budget_merges,
                )
            maintenance = MaintenanceTask(
                engine,
                interval=args.maintenance_interval,
                budget=maint_budget,
                max_supernodes=args.maintenance_max_supernodes,
            )
    else:
        if args.maintenance_interval > 0:
            print(
                "--maintenance-interval requires --wal-dir (maintenance "
                "commits are WAL records); ignoring",
                flush=True,
            )
        engine = QueryEngine.from_file(
            args.input,
            cache_size=args.cache_size,
            degraded=args.degraded,
        )
    rep = engine.representation
    print(
        f"loaded summary: n={rep.n}, supernodes={rep.num_supernodes}, "
        f"superedges={len(rep.summary_edges)}, "
        f"corrections={rep.num_corrections}"
    )
    if args.wal_dir:
        # ``pending`` streams lazily (a multi-GB tail must not
        # materialize), so report the LSN span instead of a count.
        tail_lsns = max(
            0, wal.last_lsn - recovery_report.checkpoint_lsn
        )
        print(
            f"durable ingest on: wal-dir={args.wal_dir} "
            f"fsync={args.fsync} "
            f"checkpoint_lsn={recovery_report.checkpoint_lsn} "
            f"wal_tail={tail_lsns} lsn(s)"
        )
    wire_replication = None
    if args.repl_role is not None:
        if not args.wal_dir:
            print(
                "error: --repl-role requires --wal-dir (replication "
                "ships WAL records)",
                file=sys.stderr,
            )
            return 2
        repl_followers: list[tuple[str, int]] = []
        for raw in args.repl_follower or []:
            host_part, sep, port_part = raw.rpartition(":")
            if not sep or not host_part or not port_part.isdigit():
                print(
                    f"error: --repl-follower {raw!r} is not HOST:PORT",
                    file=sys.stderr,
                )
                return 2
            repl_followers.append((host_part, int(port_part)))
        if repl_followers and args.repl_role != "primary":
            print(
                "error: --repl-follower only applies to "
                "--repl-role primary",
                file=sys.stderr,
            )
            return 2

        def wire_replication() -> None:
            # Deferred until the WAL tail (if any) has replayed: a
            # primary's configure stamps its term at the log head,
            # which must come *after* every recovered record.
            engine.configure_replication(
                role=args.repl_role,
                followers=repl_followers,
                acks=args.repl_acks,
                store=store,
            )
            print(
                f"replication on: role={args.repl_role} "
                f"acks={args.repl_acks} "
                f"followers={len(repl_followers)} term={engine.term}",
                flush=True,
            )

    sink = None
    if args.trace_dir or args.instance_label:
        import os as _os

        from repro.obs.tracer import Tracer, set_instance_label, set_tracer

        label = args.instance_label or f"pid-{_os.getpid()}"
        set_instance_label(label)
        if args.trace_dir:
            from repro.obs.exporters import SpanSink

            sink = SpanSink(args.trace_dir, label)
            set_tracer(Tracer(sink=sink.write))
            print(f"tracing to {sink.path} as {label!r}")
    breaker = None
    if args.breaker_threshold > 0:
        from repro.resilience import CircuitBreaker

        breaker = CircuitBreaker(failure_threshold=args.breaker_threshold)
    server = SummaryQueryServer(
        engine,
        host=args.host,
        port=args.port,
        workers=args.workers,
        request_timeout=args.request_timeout,
        log_interval=args.log_interval or None,
        max_pending=args.max_pending,
        breaker=breaker,
    )
    server.start()
    replay_thread = None
    if tail_lsns > 0:
        # The flag goes up *before* readiness is announced so the very
        # first query already answers ``degraded: true``; the tail then
        # drains on a background thread while the server serves.
        engine.replaying = True
        import threading as _threading

        from repro.durability import replay_tail as _replay_tail

        def _drain_tail() -> None:
            _replay_tail(engine, pending, recovery_report)
            print(recovery_report.describe(), flush=True)
            if wire_replication is not None:
                wire_replication()

        replay_thread = _threading.Thread(
            target=_drain_tail, name="repro-wal-replay", daemon=True
        )
        replay_thread.start()
    else:
        if recovery_report is not None:
            print(recovery_report.describe(), flush=True)
        if wire_replication is not None:
            wire_replication()
    if compactor is not None:
        compactor.start()
    if maintenance is not None:
        maintenance.start()
        print(
            f"background maintenance on: "
            f"interval={args.maintenance_interval}s "
            f"max_supernodes={args.maintenance_max_supernodes}",
            flush=True,
        )
    # Graceful-stop handlers must be live before readiness is
    # announced: a supervisor that signals the moment it sees the
    # line must never hit the default (process-killing) handler.
    import signal as _signal

    for signum in (_signal.SIGINT, _signal.SIGTERM):
        _signal.signal(signum, lambda *_: server.shutdown())
    host, port = server.address
    print(f"serving on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    finally:
        if replay_thread is not None:
            replay_thread.join(timeout=30.0)
        stop_replication = getattr(engine, "stop_replication", None)
        if stop_replication is not None:
            stop_replication()
        if maintenance is not None:
            maintenance.stop()
        if compactor is not None:
            compactor.stop(final_compact=True)
        if wal is not None:
            wal.close()
        if sink is not None:
            sink.close()
    print("shutdown complete")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import logging

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    from repro.cluster import (
        ClusterManager,
        TopologyError,
        default_spec,
        load_topology,
        plan_cluster,
        probe_topology,
    )

    if args.cluster_command == "plan":
        graph = _load_graph_from_args(args, args.input)
        print(f"loaded {graph}")
        if args.topology:
            spec = load_topology(args.topology)
            if spec.shards != args.shards or spec.replicas != args.replicas:
                print(
                    f"error: --topology declares "
                    f"{spec.shards}x{spec.replicas} but the command asked "
                    f"for {args.shards}x{args.replicas}",
                    file=sys.stderr,
                )
                return 2
            spec.seed = args.seed
        else:
            spec = default_spec(
                args.shards,
                args.replicas,
                seed=args.seed,
                host=args.host,
                base_port=args.base_port,
                acks=args.acks,
            )
        factory = lambda: ALGORITHMS[args.algorithm](  # noqa: E731
            args.iterations, args.seed
        )
        report = plan_cluster(graph, spec, args.out, factory)
        for line in report.summary_lines():
            print(line)
        print(f"topology written to {args.out}/topology.json")
        return 0

    if args.cluster_command == "trace":
        from repro.obs import collect, schema
        from repro.obs.exporters import write_trace_jsonl

        records = collect.read_trace_dir(args.trace_dir)
        merged = collect.assemble_trace(records, args.trace_id)
        if not merged.records:
            known = collect.trace_ids(records)
            print(
                f"no spans for trace {args.trace_id!r} under "
                f"{args.trace_dir} ({len(known)} trace id(s) present)",
                file=sys.stderr,
            )
            return 1
        print(collect.render_merged_trace(merged))
        if args.out:
            write_trace_jsonl(merged.records, args.out)
            print(
                f"merged trace written to {args.out} "
                f"({len(merged.records)} span(s))"
            )
        errors = schema.validate_trace(merged.records)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            return 1
        return 0

    try:
        spec = load_topology(args.topology)
    except (TopologyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.cluster_command == "telemetry":
        from pathlib import Path

        from repro.obs import collect, registry_to_prometheus

        telemetry = collect.pull_cluster_telemetry(
            spec, timeout=args.timeout
        )
        snapshots = collect.registry_snapshots(telemetry)
        for label, entry in sorted(telemetry.items()):
            if label not in snapshots:
                print(
                    f"{label}: unreachable ({entry.get('error')})",
                    file=sys.stderr,
                )
        if not snapshots:
            print("error: no instance reachable", file=sys.stderr)
            return 1
        if args.json_out:
            collect.write_cluster_telemetry(telemetry, args.json_out)
            print(f"telemetry written to {args.json_out}", file=sys.stderr)
        text = registry_to_prometheus(
            collect.merge_registry_snapshots(snapshots)
        )
        if args.prom_out:
            Path(args.prom_out).write_text(text, encoding="utf-8")
            print(f"merged dump written to {args.prom_out}", file=sys.stderr)
        else:
            print(text, end="")
        return 0

    if args.cluster_command == "start":
        instance_args: list[str] = []
        if args.maintenance_interval > 0:
            instance_args += [
                "--maintenance-interval",
                str(args.maintenance_interval),
                "--maintenance-budget-seconds",
                str(args.maintenance_budget_seconds),
                "--maintenance-max-supernodes",
                str(args.maintenance_max_supernodes),
            ]
            if args.maintenance_budget_merges is not None:
                instance_args += [
                    "--maintenance-budget-merges",
                    str(args.maintenance_budget_merges),
                ]
        try:
            manager = ClusterManager(
                spec,
                workers=args.workers,
                cache_size=args.cache_size,
                trace_dir=args.trace_dir,
                wal_dir=args.wal_dir,
                instance_args=instance_args or None,
            )
            manager.start_instances()
        except TopologyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        manager.start_router(workers=args.router_workers)
        host, port = manager.router_server.address
        print(
            f"cluster up: {spec.shards} shard(s) x {spec.replicas} "
            f"replica(s); router serving on {host}:{port}",
            flush=True,
        )
        try:
            manager.router_server.serve_forever()
        finally:
            manager.stop()
        print("cluster shutdown complete")
        return 0

    if args.cluster_command == "status":
        rows = probe_topology(spec, timeout=args.timeout)
        all_up = True
        for row in rows:
            if row["up"]:
                p99 = row.get("p99_ms")
                p99_text = (
                    f"{p99:.1f}" if isinstance(p99, (int, float)) else "-"
                )
                repl_text = ""
                if row.get("role") is not None:
                    repl_text = (
                        f" role={row['role']} term={row.get('term')}"
                    )
                    if row.get("max_follower_lag") is not None:
                        repl_text += (
                            f" lag={row['max_follower_lag']} lsn(s)"
                        )
                print(
                    f"{row['target']:12s} {row['address']:22s} up  "
                    f"requests={row['requests_total']} "
                    f"errors={row['errors_total']} "
                    f"p99_ms={p99_text}"
                    f"{repl_text}"
                )
            else:
                all_up = False
                print(
                    f"{row['target']:12s} {row['address']:22s} DOWN "
                    f"({row['error']})"
                )
        return 0 if all_up else 1

    if args.cluster_command == "stop":
        from repro.service.client import ServiceError, SummaryServiceClient

        # Router first so it stops fanning out to dying instances.
        targets = [("router", spec.router_host, spec.router_port)]
        targets += [(i.label, i.host, i.port) for i in spec.instances]
        failures = 0
        for label, host, port in targets:
            try:
                with SummaryServiceClient(
                    host, port, timeout=args.timeout
                ) as client:
                    client.shutdown_server()
                print(f"{label}: shutdown acknowledged")
            except (OSError, ServiceError, ValueError) as exc:
                failures += 1
                print(f"{label}: unreachable ({exc})")
        return 0 if failures == 0 else 1

    raise AssertionError(f"unhandled cluster command {args.cluster_command}")


#: CLI experiment name -> repro.bench.experiments function name.
_EXPERIMENTS = {
    "table2": "table2_dataset_statistics",
    "fig4": "fig4_fig6_small_graphs",
    "fig6": "fig4_fig6_small_graphs",
    "fig5": "fig5_fig7_large_graphs",
    "fig7": "fig5_fig7_large_graphs",
    "fig8": "fig8_mags_ablation",
    "fig9": "fig9_fig10_magsdm_ablation",
    "fig10": "fig9_fig10_magsdm_ablation",
    "fig11": "fig11_fig12_iterations_sweep",
    "fig12": "fig11_fig12_iterations_sweep",
    "fig13": "fig13_parallel_speedup",
    "fig14": "fig14_b_sweep",
    "fig15": "fig15_h_sweep",
    "fig16": "fig16_k_sweep",
    "table3": "table3_pagerank",
    "neighbor": "neighbor_query_cost",
    "service": "service_throughput",
    "cluster": "cluster_throughput",
}


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import experiments, format_table

    if args.list_experiments or args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0
    key = args.experiment.lower()
    if key not in _EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; known: "
            f"{', '.join(sorted(_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    title, rows = getattr(experiments, _EXPERIMENTS[key])()
    print(format_table(rows, title=title))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro import obs

    if bool(args.dataset) == bool(args.input):
        print(
            "profile needs exactly one of --dataset or --input",
            file=sys.stderr,
        )
        return 2
    if args.dataset:
        graph = load_dataset(args.dataset)
        source = f"dataset {args.dataset}"
    else:
        graph = _load_graph_from_args(args, args.input)
        source = args.input
    print(f"profiling {args.algorithm} on {source}: {graph}")

    summarizer = ALGORITHMS[args.algorithm](args.iterations, args.seed)
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        result = summarizer.summarize(graph)
    records = tracer.records()
    print(result.summary_line())

    print("\nphase totals (wall seconds):")
    for phase, seconds in sorted(
        obs.phase_totals(records).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {phase:24s} {seconds:10.4f}")
    print("\ntrace:")
    print(obs.render_trace_tree(records))

    if args.trace_out:
        obs.write_trace_jsonl(records, args.trace_out)
        print(f"\ntrace written to {args.trace_out} ({len(records)} spans)")
    if args.prom_out:
        from pathlib import Path

        Path(args.prom_out).write_text(
            obs.registry_to_prometheus(obs.get_registry())
        )
        print(f"metrics written to {args.prom_out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    try:
        records = obs.read_trace_jsonl(args.input)
    except (OSError, ValueError) as exc:
        print(f"unreadable trace file {args.input}: {exc}", file=sys.stderr)
        return 1
    status = 0
    acted = False
    if args.validate:
        acted = True
        errors = obs.validate_trace(records)
        if errors:
            for error in errors:
                print(error, file=sys.stderr)
            status = 1
        else:
            print(f"{args.input}: {len(records)} spans, schema OK")
    if args.phases:
        acted = True
        for phase, seconds in sorted(
            obs.phase_totals(records).items(), key=lambda kv: -kv[1]
        ):
            print(f"{phase:24s} {seconds:10.4f}")
    if args.diff:
        acted = True
        other = obs.read_trace_jsonl(args.diff)
        header = (
            f"{'phase':<24} {'a_s':>10} {'b_s':>10} "
            f"{'delta_s':>10} {'ratio':>8}"
        )
        print(header)
        for row in obs.diff_phase_totals(records, other):
            def fmt(value, spec):
                return "-" if value is None else format(value, spec)

            print(
                f"{row['phase']:<24} {fmt(row['a_s'], '.4f'):>10} "
                f"{fmt(row['b_s'], '.4f'):>10} "
                f"{fmt(row['delta_s'], '+.4f'):>10} "
                f"{fmt(row['ratio'], '.3f'):>8}"
            )
    if not acted:
        print(obs.render_trace_tree(records))
    return status


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs import collect
    from repro.obs.slo import (
        DEFAULT_SLOS,
        evaluate_slos,
        format_slo_report,
        load_slo_config,
    )

    if args.config:
        try:
            slos = load_slo_config(args.config)
        except (OSError, ValueError) as exc:
            print(f"error: bad SLO config: {exc}", file=sys.stderr)
            return 2
    else:
        slos = DEFAULT_SLOS

    # The source is either a saved cluster_telemetry dump or a
    # topology file to pull live telemetry from — try the dump format
    # first, it is self-identifying via its "kind" field.
    try:
        snapshots = collect.load_cluster_telemetry(args.source)
    except ValueError:
        from repro.cluster.topology import TopologyError, load_topology

        try:
            spec = load_topology(args.source)
        except (TopologyError, OSError, ValueError) as exc:
            print(
                f"error: {args.source!r} is neither a cluster telemetry "
                f"dump nor a topology file ({exc})",
                file=sys.stderr,
            )
            return 2
        telemetry = collect.pull_cluster_telemetry(
            spec, timeout=args.timeout
        )
        snapshots = collect.registry_snapshots(telemetry)
        for label, entry in sorted(telemetry.items()):
            if label not in snapshots:
                print(
                    f"{label}: unreachable ({entry.get('error')})",
                    file=sys.stderr,
                )
        if not snapshots:
            print("error: no instance reachable", file=sys.stderr)
            return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    results = evaluate_slos(snapshots, slos)
    print(format_slo_report(results))
    return 0 if all(result.ok for result in results) else 1


_COMMANDS = {
    "summarize": _cmd_summarize,
    "reconstruct": _cmd_reconstruct,
    "verify": _cmd_verify,
    "stats": _cmd_stats,
    "compare": _cmd_compare,
    "dataset": _cmd_dataset,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "slo": _cmd_slo,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)
