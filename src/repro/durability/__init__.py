"""Durable online ingest: WAL, crash recovery, compaction.

The systems half of dynamic summarization (ROADMAP "Online ingest"):
:mod:`repro.dynamic.summary` gives the O(1) corrections-overlay
update; this package makes an update stream *survive* — every
acknowledged mutation is in the write-ahead log before it is applied,
a background compactor folds the log into atomic checkpoints, and
startup recovery replays the tail to reproduce the uninterrupted
run's state exactly.  ``repro serve --wal-dir`` wires it behind the
query service; see docs/resilience.md ("Durability & recovery").
"""

from repro.durability.compactor import WalCompactor
from repro.durability.recovery import (
    RecoveryReport,
    engine_state,
    recover_engine,
    replay_tail,
    representation_to_state,
    state_to_representation,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    MUTATION_OPS,
    ResummarizeRecord,
    WalError,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "FSYNC_POLICIES",
    "MUTATION_OPS",
    "RecoveryReport",
    "ResummarizeRecord",
    "WalCompactor",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "engine_state",
    "recover_engine",
    "replay_tail",
    "representation_to_state",
    "state_to_representation",
]
