"""Durable online ingest: WAL, crash recovery, compaction.

The systems half of dynamic summarization (ROADMAP "Online ingest"):
:mod:`repro.dynamic.summary` gives the O(1) corrections-overlay
update; this package makes an update stream *survive* — every
acknowledged mutation is in the write-ahead log before it is applied,
a background compactor folds the log into atomic checkpoints, and
startup recovery replays the tail to reproduce the uninterrupted
run's state exactly.  ``repro serve --wal-dir`` wires it behind the
query service; see docs/resilience.md ("Durability & recovery").
"""

from repro.durability.compactor import WalCompactor
from repro.durability.replication import (
    ACKS_MODES,
    ReplicaLink,
    ReplicationError,
    ReplicationManager,
    quorum_size,
    record_from_wire,
    record_to_wire,
)
from repro.durability.recovery import (
    RecoveryReport,
    engine_state,
    recover_engine,
    replay_tail,
    representation_to_state,
    state_to_representation,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    MUTATION_OPS,
    ResummarizeRecord,
    TermRecord,
    WalError,
    WalRecord,
    WriteAheadLog,
)

__all__ = [
    "ACKS_MODES",
    "FSYNC_POLICIES",
    "MUTATION_OPS",
    "RecoveryReport",
    "ReplicaLink",
    "ReplicationError",
    "ReplicationManager",
    "ResummarizeRecord",
    "TermRecord",
    "WalCompactor",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "engine_state",
    "quorum_size",
    "record_from_wire",
    "record_to_wire",
    "recover_engine",
    "replay_tail",
    "representation_to_state",
    "state_to_representation",
]
