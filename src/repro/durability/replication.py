"""Primary/follower WAL shipping: the write path's redundancy.

PR 9's determinism contract — replaying the log from the same
artifact is bit-identical (``Representation`` equality) — is exactly
the property that makes shipped-log replication exact: a shard's
primary streams its WAL records (ingest batches, resummarize
decisions, term changes) to follower replicas over the ``replicate``
wire op, each follower appends them to its *own* WAL and applies them
in LSN order through the same commit path, and primary and follower
summaries are byte-equal at every epoch.  See docs/resilience.md,
"Replication & failover".

Terms and fencing
-----------------
Leadership is fenced by a monotonic *term* stamped into the WAL
(:class:`~repro.durability.wal.TermRecord`).  Every ``replicate``
frame carries the sender's term; a receiver whose term is higher
rejects the frame with a structured ``fenced`` error, so a revived
stale primary cannot overwrite a promoted follower — it steps down
instead, and catches up like any other rejoiner.

Catch-up
--------
Within one term a follower's log is always a prefix of its primary's,
so catch-up is incremental: ship ``wal.iter_records(after_lsn)`` from
the follower's cursor.  Across a term change (or a compaction gap —
the cursor fell below :attr:`WriteAheadLog.truncated_lsn`) the tail
cannot be trusted, so the primary ships a full checkpoint snapshot;
the follower installs it, wipes its log (:meth:`WriteAheadLog.reset`),
persists the checkpoint, and resumes incremental shipping.

Acks modes
----------
``quorum`` (the durable default): an ingest acknowledgement waits
until a majority of the replica set — leader included — has the batch
in its WAL, so ``kill -9`` of the primary loses zero acknowledged
mutations.  ``leader``: acknowledge after the local fsync and ship in
the background — lower latency, and a failover can lose the unshipped
tail (the rejoining stale primary is snapshot-reset, so the cluster
still converges).
"""

from __future__ import annotations

import threading
import time

from repro.durability.wal import (
    MUTATION_OPS,
    ResummarizeRecord,
    TermRecord,
    WalRecord,
)
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "ACKS_MODES",
    "REPL_MAX_RECORDS",
    "REPL_MAX_MUTATIONS",
    "ReplicationError",
    "ReplicaLink",
    "ReplicationManager",
    "quorum_size",
    "record_to_wire",
    "record_from_wire",
]

ACKS_MODES = ("leader", "quorum")

#: Caps per ``replicate`` frame, keeping it far below the protocol's
#: MAX_LINE_BYTES even at worst-case mutation density.
REPL_MAX_RECORDS = 256
REPL_MAX_MUTATIONS = 4096


class ReplicationError(RuntimeError):
    """Replication cannot make progress (misconfiguration, oversized
    snapshot, ...)."""


def quorum_size(replicas: int) -> int:
    """Majority of a replica set (leader included): ``floor(n/2)+1``."""
    return replicas // 2 + 1


# ----------------------------------------------------------------------
# Record <-> wire (JSON-safe) codec
# ----------------------------------------------------------------------
def record_to_wire(record) -> dict:
    """One WAL record as a JSON-safe ``replicate`` frame entry."""
    if isinstance(record, ResummarizeRecord):
        return {
            "lsn": record.lsn,
            "resummarize": {
                "targets": list(record.targets),
                "max_merges": record.max_merges,
            },
        }
    if isinstance(record, TermRecord):
        return {"lsn": record.lsn, "term": record.term}
    return {
        "lsn": record.lsn,
        "stream": record.stream,
        "seq": record.seq,
        "mutations": [list(m) for m in record.mutations],
    }


def record_from_wire(obj):
    """Decode and validate one frame entry; raises ``ValueError``."""
    if not isinstance(obj, dict):
        raise ValueError("replicated record must be an object")
    lsn = obj.get("lsn")
    if not isinstance(lsn, int) or isinstance(lsn, bool) or lsn < 1:
        raise ValueError("replicated record needs a positive integer lsn")
    if "term" in obj:
        term = obj["term"]
        if not isinstance(term, int) or isinstance(term, bool) or term < 1:
            raise ValueError("term record needs a positive integer term")
        return TermRecord(lsn=lsn, term=term)
    if "resummarize" in obj:
        body = obj["resummarize"]
        if not isinstance(body, dict):
            raise ValueError("resummarize record body must be an object")
        targets = body.get("targets")
        if not isinstance(targets, list) or not all(
            isinstance(t, int) and not isinstance(t, bool) and t >= 0
            for t in targets
        ):
            raise ValueError("resummarize targets must be node ids")
        max_merges = body.get("max_merges")
        if max_merges is not None and (
            not isinstance(max_merges, int)
            or isinstance(max_merges, bool)
            or max_merges < 0
        ):
            raise ValueError("max_merges must be a non-negative integer")
        return ResummarizeRecord(
            lsn=lsn, targets=tuple(targets), max_merges=max_merges
        )
    stream = obj.get("stream")
    seq = obj.get("seq")
    mutations = obj.get("mutations")
    if not isinstance(stream, str) or not stream:
        raise ValueError("ingest record needs a stream id")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ValueError("ingest record needs a non-negative seq")
    if not isinstance(mutations, list) or not mutations:
        raise ValueError("ingest record needs a mutation list")
    parsed = []
    for item in mutations:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 3
            or item[0] not in MUTATION_OPS
            or not all(
                isinstance(x, int) and not isinstance(x, bool) and x >= 0
                for x in item[1:]
            )
        ):
            raise ValueError(f"malformed replicated mutation: {item!r}")
        parsed.append((item[0], item[1], item[2]))
    return WalRecord(
        lsn=lsn, stream=stream, seq=seq, mutations=tuple(parsed)
    )


# ----------------------------------------------------------------------
# Shipping
# ----------------------------------------------------------------------
class ReplicaLink:
    """A primary's view of one follower: address, replication cursor
    (``acked_lsn``: the follower's durable high-water mark), health."""

    def __init__(self, host: str, port: int, label: str | None = None):
        self.host = host
        self.port = int(port)
        self.label = label or f"{host}:{port}"
        self.acked_lsn = 0
        self.healthy = False
        self.needs_snapshot = False
        self.last_error: str | None = None
        self.client = None


class ReplicationManager:
    """The primary half of log shipping for one shard.

    Owns a :class:`ReplicaLink` per follower and ships committed WAL
    records to each in LSN order.  ``publish(lsn)`` is called by the
    engine after every local commit: under ``acks="quorum"`` it ships
    inline and blocks until a majority of the replica set holds the
    record (raising a structured ``unavailable`` otherwise — the
    client may retry; the batch dedups); under ``acks="leader"`` it
    just wakes the background shipper.  The background thread also
    retries down followers and drives rejoin catch-up (incremental
    from the WAL, or a checkpoint snapshot across a term change /
    compaction gap).

    ``client_factory(host, port)`` is injectable so in-process tests
    replicate deterministically without sockets.
    """

    def __init__(
        self,
        engine,
        followers,
        *,
        acks: str = "quorum",
        wal=None,
        client_factory=None,
        timeout: float = 5.0,
        quorum_timeout: float = 10.0,
        poll_interval: float = 0.5,
        buffer_records: int = 1024,
        registry: MetricsRegistry | None = None,
    ):
        if acks not in ACKS_MODES:
            raise ReplicationError(
                f"unknown acks mode {acks!r}; "
                f"choose from {', '.join(ACKS_MODES)}"
            )
        self._engine = engine
        self._wal = wal
        self.acks = acks
        self._timeout = timeout
        self._quorum_timeout = quorum_timeout
        self._poll_interval = poll_interval
        self._client_factory = client_factory or self._connect
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self.links = [
            ReplicaLink(host, port) for host, port in followers
        ]
        # Hot-path record buffer: committed records the shipper can
        # read without touching disk (and the only source when the
        # engine runs without a WAL, e.g. in-process local clusters).
        self._buffer: list = []
        self._buffer_cap = buffer_records
        self._buffer_floor = getattr(engine, "applied_lsn", 0)
        self._buffer_lock = threading.Lock()
        # Serializes shipping so records leave in LSN order even when
        # several ingest threads publish concurrently.
        self._ship_lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "ReplicationManager":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="repro-replication", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)
        for link in self.links:
            self._drop_client(link)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def _connect(self, host: str, port: int):
        from repro.service.client import SummaryServiceClient

        return SummaryServiceClient(host, port, timeout=self._timeout)

    def _drop_client(self, link: ReplicaLink) -> None:
        client, link.client = link.client, None
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    # -- record sources --------------------------------------------------
    def record_committed(self, record) -> None:
        """Called by the engine, under its state lock, for every
        locally committed record — keeps the hot buffer in LSN order."""
        with self._buffer_lock:
            self._buffer.append(record)
            while len(self._buffer) > self._buffer_cap:
                evicted = self._buffer.pop(0)
                self._buffer_floor = evicted.lsn

    def _records_after(self, cursor: int):
        """Next chunk of records past ``cursor``, or ``None`` when
        only a snapshot can bridge the gap."""
        with self._buffer_lock:
            if cursor >= self._buffer_floor:
                chunk = []
                mutation_load = 0
                for record in self._buffer:
                    if record.lsn <= cursor:
                        continue
                    chunk.append(record)
                    mutation_load += len(getattr(record, "mutations", ()))
                    if (
                        len(chunk) >= REPL_MAX_RECORDS
                        or mutation_load >= REPL_MAX_MUTATIONS
                    ):
                        break
                return chunk
        if self._wal is None or cursor < self._wal.truncated_lsn:
            return None
        chunk = []
        mutation_load = 0
        for record in self._wal.iter_records(after_lsn=cursor):
            chunk.append(record)
            mutation_load += len(getattr(record, "mutations", ()))
            if (
                len(chunk) >= REPL_MAX_RECORDS
                or mutation_load >= REPL_MAX_MUTATIONS
            ):
                break
        return chunk

    # -- shipping --------------------------------------------------------
    def notify(self) -> None:
        """Nudge the background shipper: new records are buffered but
        nothing is quorum-blocking on them (maintenance commits)."""
        self._wake.set()

    def publish(self, lsn: int) -> None:
        """Make the record at ``lsn`` replication-durable.

        Quorum mode ships inline and raises a structured
        ``unavailable`` :class:`~repro.service.engine.QueryError` when
        a majority of the replica set cannot acknowledge within the
        quorum timeout — the caller must *not* acknowledge the batch.
        (It stays committed locally and in the WAL; a client retry of
        the same ``(stream, seq)`` dedups and re-awaits the quorum.)
        """
        if self._stop.is_set():
            return
        if self.acks == "leader":
            self._wake.set()
            return
        needed = quorum_size(len(self.links) + 1) - 1
        if needed <= 0:
            return
        deadline = time.monotonic() + self._quorum_timeout
        while not self._stop.is_set():
            with self._ship_lock:
                acked = 0
                for link in self.links:
                    if link.acked_lsn >= lsn or self._ship(link, lsn):
                        acked += 1
                    if acked >= needed:
                        return
            if time.monotonic() >= deadline:
                break
            time.sleep(min(0.05, self._poll_interval))
        from repro.service.engine import QueryError

        self._count("quorum_timeouts")
        raise QueryError(
            "unavailable",
            f"replication quorum not reached for lsn {lsn}: "
            f"{needed} follower ack(s) required "
            f"({len(self.links)} follower(s) configured)",
        )

    def _ship(self, link: ReplicaLink, target_lsn: int) -> bool:
        """Push records to one follower until its cursor reaches
        ``target_lsn``; returns whether it did.  Caller holds the
        ship lock."""
        while link.acked_lsn < target_lsn and not self._stop.is_set():
            if link.needs_snapshot:
                if not self._ship_snapshot(link):
                    return False
                continue
            chunk = self._records_after(link.acked_lsn)
            if chunk is None:
                link.needs_snapshot = True
                continue
            if not chunk:
                # Nothing durable past the cursor — the target LSN is
                # not shippable (should not happen in practice).
                return link.acked_lsn >= target_lsn
            if not self._send(
                link,
                records=[record_to_wire(r) for r in chunk],
                after_lsn=link.acked_lsn,
            ):
                return False
        return link.acked_lsn >= target_lsn

    def _ship_snapshot(self, link: ReplicaLink) -> bool:
        snapshot = self._engine.snapshot_state()
        ok = self._send(link, snapshot=snapshot)
        if ok:
            link.needs_snapshot = False
            self._count("snapshots")
        return ok

    def _send(self, link: ReplicaLink, **payload) -> bool:
        """One ``replicate`` round trip; updates the link's cursor
        from the follower's durable high-water mark."""
        from repro.service.client import ServiceError

        try:
            if link.client is None:
                link.client = self._client_factory(link.host, link.port)
            response = link.client.request(
                "replicate", term=self._engine.term, **payload
            )
        except ServiceError as exc:
            link.last_error = f"{exc.type}: {exc}"
            if exc.type == "fenced":
                # A higher term exists: this primary is stale.  Step
                # down; the new primary will catch us up.
                self._count("fenced")
                self._engine.step_down()
                self._stop.set()
            elif exc.type == "bad_request":
                # Replication gap reported by the follower.
                link.needs_snapshot = True
            return False
        except Exception as exc:  # transport errors
            link.healthy = False
            link.last_error = str(exc)
            self._drop_client(link)
            self._count("transport_errors")
            return False
        link.healthy = True
        link.last_error = None
        acked = response.get("last_lsn")
        if isinstance(acked, int) and acked > link.acked_lsn:
            if "records" in payload:
                self._count("records_shipped", len(payload["records"]))
            link.acked_lsn = acked
        self._gauge_lag(link)
        return True

    # -- background catch-up ---------------------------------------------
    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                self._wake.wait(timeout=self._poll_interval)
                self._wake.clear()
                if self._stop.is_set():
                    return
                target = self._high_water()
                with self._ship_lock:
                    for link in self.links:
                        if self._stop.is_set():
                            return
                        if link.acked_lsn < target or link.needs_snapshot:
                            self._ship(link, target)
        finally:
            # Self-initiated stops (fencing) exit through here without
            # anyone calling stop(); don't leak follower sockets.
            if self._stop.is_set():
                for link in self.links:
                    self._drop_client(link)

    def _high_water(self) -> int:
        if self._wal is not None:
            return self._wal.last_lsn
        return getattr(self._engine, "applied_lsn", 0)

    # -- introspection ---------------------------------------------------
    def status(self) -> dict:
        high = self._high_water()
        return {
            "acks": self.acks,
            "quorum": quorum_size(len(self.links) + 1),
            "followers": [
                {
                    "label": link.label,
                    "host": link.host,
                    "port": link.port,
                    "acked_lsn": link.acked_lsn,
                    "lag": max(0, high - link.acked_lsn),
                    "healthy": link.healthy,
                    "needs_snapshot": link.needs_snapshot,
                    "last_error": link.last_error,
                }
                for link in self.links
            ],
        }

    # -- metrics ---------------------------------------------------------
    def _count(self, event: str, n: int = 1) -> None:
        self._registry.counter(
            "repro_replication_ship_total", event=event
        ).inc(n)

    def _gauge_lag(self, link: ReplicaLink) -> None:
        self._registry.gauge(
            "repro_replication_lag_lsns", follower=link.label
        ).set(max(0, self._high_water() - link.acked_lsn))
