"""Write-ahead log for streamed edge mutations.

The durability half of online ingest (docs/resilience.md, "Durability
& recovery"): every accepted mutation batch is appended — and, under
the default policy, fsynced — here *before* it is applied to the live
:class:`~repro.dynamic.summary.DynamicGraphSummary`, so an
acknowledged write survives ``kill -9``.

On-disk format
--------------
A WAL directory holds numbered segment files ``wal-<8 digits>.log``.
Each segment is a sequence of records framed as::

    varint(len(payload)) . payload . varint(crc32(payload))

reusing the LEB128 varints of :mod:`repro.compression.varint`.  The
payload is itself varint-packed::

    lsn . seq . len(stream) . stream-utf8 . n_ops . (op u v)*

where ``op`` is 0 for insert and 1 for delete.  LSNs (log sequence
numbers) are assigned densely by :meth:`WriteAheadLog.append` and are
the recovery cursor: a checkpoint records the LSN it folded through,
and replay skips records at or below it.

Since LSNs start at 1, a leading varint of ``0`` can never open an
ingest payload; it marks an *extended* record instead::

    0 . kind . <kind payload>

Kind 1 is ``resummarize`` (a committed background-maintenance pass)::

    0 . 1 . lsn . n_targets . (target)* . max_merges+1

where ``max_merges+1`` is 0 when the pass ran without a merge cap.
The record carries the *decision* — which super-nodes were dissolved
and under what deterministic cap — so crash recovery replays the pass
bit-identically (the re-encode is a pure function of the replayed
state and these parameters).  Ingest records keep their exact
original byte encoding.

Kind 2 is ``term`` (a replication leadership change)::

    0 . 2 . lsn . term

Terms are the monotonic fencing counter of primary/follower
replication (docs/resilience.md, "Replication & failover"): a newly
promoted primary stamps its term into the log before accepting
writes, the record ships to followers like any other, and a revived
stale primary — whose log lacks the newer term — is fenced when it
tries to replicate.  Because the term is an ordinary WAL record, a
follower's log is byte-identical to its primary's, terms included.

Torn tails
----------
A crash mid-append leaves a truncated or checksum-broken record at
the end of a segment.  The scan run on open (and by :meth:`records`)
stops at the first record that fails to frame or checksum, truncates
the segment back to the last intact record, drops any later segments
(nothing after a broken record can be trusted to be contiguous), and
counts the event under ``repro_wal_records_total{event="torn_dropped"}``.
Only *unacknowledged* data can be lost this way: acknowledgement
happens strictly after the record is durable.

Fsync policies
--------------
``always``  fsync after every append (the durability default);
``interval``  fsync every ``fsync_interval`` appends — bounded loss
window, much higher throughput;
``never``  leave flushing to the OS (benchmarks only).
Fsync latency feeds the ``repro_wal_fsync_seconds`` histogram.
"""

from __future__ import annotations

import os
import re
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.compression.varint import decode_varint, encode_varint
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = [
    "WalRecord",
    "ResummarizeRecord",
    "TermRecord",
    "WriteAheadLog",
    "WalError",
    "FSYNC_POLICIES",
    "MUTATION_OPS",
]

FSYNC_POLICIES = ("always", "interval", "never")

#: Wire spelling of the two mutation kinds; index == on-disk opcode.
MUTATION_OPS = ("+", "-")

_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")


class WalError(RuntimeError):
    """The log cannot be opened, appended to, or decoded."""


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation batch."""

    lsn: int
    stream: str
    seq: int
    mutations: tuple[tuple[str, int, int], ...]


@dataclass(frozen=True)
class ResummarizeRecord:
    """One committed background-maintenance pass: the super-nodes it
    dissolved and the deterministic merge cap (``None`` = uncapped)
    its local summarizer ran under."""

    lsn: int
    targets: tuple[int, ...]
    max_merges: int | None


@dataclass(frozen=True)
class TermRecord:
    """One replication leadership change: the monotonic term a newly
    promoted primary stamped into the log before accepting writes."""

    lsn: int
    term: int


#: Discriminator of the :class:`ResummarizeRecord` extended payload.
_KIND_RESUMMARIZE = 1

#: Discriminator of the :class:`TermRecord` extended payload.
_KIND_TERM = 2


def encode_record(record) -> bytes:
    """Frame one record (length prefix + payload + crc32 varint)."""
    payload = bytearray()
    if isinstance(record, ResummarizeRecord):
        payload += encode_varint(0)
        payload += encode_varint(_KIND_RESUMMARIZE)
        payload += encode_varint(record.lsn)
        payload += encode_varint(len(record.targets))
        for target in record.targets:
            payload += encode_varint(target)
        payload += encode_varint(
            0 if record.max_merges is None else record.max_merges + 1
        )
    elif isinstance(record, TermRecord):
        payload += encode_varint(0)
        payload += encode_varint(_KIND_TERM)
        payload += encode_varint(record.lsn)
        payload += encode_varint(record.term)
    else:
        stream_bytes = record.stream.encode("utf-8")
        payload += encode_varint(record.lsn)
        payload += encode_varint(record.seq)
        payload += encode_varint(len(stream_bytes))
        payload += stream_bytes
        payload += encode_varint(len(record.mutations))
        for op, u, v in record.mutations:
            payload += encode_varint(MUTATION_OPS.index(op))
            payload += encode_varint(u)
            payload += encode_varint(v)
    body = bytes(payload)
    return (
        encode_varint(len(body)) + body + encode_varint(zlib.crc32(body))
    )


def _decode_extended(body: bytes, offset: int):
    kind, offset = decode_varint(body, offset)
    if kind == _KIND_TERM:
        lsn, offset = decode_varint(body, offset)
        term, offset = decode_varint(body, offset)
        if offset != len(body):
            raise ValueError("trailing bytes in record payload")
        return TermRecord(lsn=lsn, term=term)
    if kind != _KIND_RESUMMARIZE:
        raise ValueError(f"unknown extended record kind {kind}")
    lsn, offset = decode_varint(body, offset)
    count, offset = decode_varint(body, offset)
    targets = []
    for _ in range(count):
        target, offset = decode_varint(body, offset)
        targets.append(target)
    merges_plus_1, offset = decode_varint(body, offset)
    if offset != len(body):
        raise ValueError("trailing bytes in record payload")
    return ResummarizeRecord(
        lsn=lsn,
        targets=tuple(targets),
        max_merges=None if merges_plus_1 == 0 else merges_plus_1 - 1,
    )


def _decode_payload(body: bytes):
    offset = 0
    lsn, offset = decode_varint(body, offset)
    if lsn == 0:
        # LSNs are 1-based; a leading 0 marks an extended record.
        return _decode_extended(body, offset)
    seq, offset = decode_varint(body, offset)
    stream_len, offset = decode_varint(body, offset)
    if offset + stream_len > len(body):
        raise ValueError("truncated stream id")
    stream = body[offset:offset + stream_len].decode("utf-8")
    offset += stream_len
    count, offset = decode_varint(body, offset)
    mutations = []
    for _ in range(count):
        code, offset = decode_varint(body, offset)
        u, offset = decode_varint(body, offset)
        v, offset = decode_varint(body, offset)
        if code >= len(MUTATION_OPS):
            raise ValueError(f"unknown mutation opcode {code}")
        mutations.append((MUTATION_OPS[code], u, v))
    if offset != len(body):
        raise ValueError("trailing bytes in record payload")
    return WalRecord(
        lsn=lsn, stream=stream, seq=seq, mutations=tuple(mutations)
    )


def _scan_segment(data: bytes) -> tuple[list[WalRecord], int, bool]:
    """Parse one segment's bytes.

    Returns ``(records, clean_end_offset, torn)`` where
    ``clean_end_offset`` is the byte offset just past the last intact
    record and ``torn`` reports whether anything after it had to be
    dropped.
    """
    records: list[WalRecord] = []
    offset = 0
    while offset < len(data):
        try:
            length, body_start = decode_varint(data, offset)
            body_end = body_start + length
            if body_end > len(data):
                raise ValueError("truncated record body")
            body = data[body_start:body_end]
            crc, next_offset = decode_varint(data, body_end)
            if crc != zlib.crc32(body):
                raise ValueError("record checksum mismatch")
            record = _decode_payload(body)
        except ValueError:
            return records, offset, True
        records.append(record)
        offset = next_offset
    return records, offset, False


class WriteAheadLog:
    """Append-only, segment-rotated, checksummed mutation log.

    Parameters
    ----------
    directory:
        Created if missing.  Existing segments are scanned on open:
        the torn tail (if any) is truncated away so new appends start
        at a clean boundary, and the next LSN continues from the last
        durable record.
    fsync:
        One of :data:`FSYNC_POLICIES`.
    fsync_interval:
        Appends between fsyncs under the ``interval`` policy.
    segment_bytes:
        Rotate to a fresh segment once the active one reaches this
        size (checked before each append, so records never split
        across segments).
    registry:
        Metrics registry; defaults to the process-global one.  Pass
        the serving :class:`~repro.service.metrics.ServiceMetrics`
        registry so WAL counters ride the ``stats``/``telemetry`` ops.

    All methods are thread-safe; appends are serialized by one lock,
    which also makes LSN assignment race-free.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "always",
        fsync_interval: int = 8,
        segment_bytes: int = 4 << 20,
        registry: MetricsRegistry | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; "
                f"choose from {', '.join(FSYNC_POLICIES)}"
            )
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._segment_bytes = segment_bytes
        self._registry = registry if registry is not None else get_registry()
        self._lock = threading.Lock()
        self._unsynced = 0
        self._file = None
        # segment index -> last LSN it holds (-1 while empty).
        self._segment_last_lsn: dict[int, int] = {}
        # Records with lsn <= _truncated_lsn are no longer in the log
        # (compacted away, or discarded by a snapshot reset); the
        # replication shipper uses this to decide incremental catch-up
        # versus a full snapshot.
        self._truncated_lsn = 0
        self._last_term = 0
        self._open_segments()

    # -- lifecycle -------------------------------------------------------
    def _fsync_directory(self) -> None:
        """Make segment create/unlink durable, not just their bytes:
        fsyncing a file persists its contents, but the *directory
        entry* of a freshly created segment (or the removal of an
        unlinked one) lives in the parent directory and needs its own
        fsync to survive a power failure or OS crash."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds (e.g. Windows)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"wal-{index:08d}.log"

    def _segment_indexes(self) -> list[int]:
        found = []
        for entry in self.directory.iterdir():
            match = _SEGMENT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def _open_segments(self) -> None:
        """Scan existing segments, repair the torn tail, and position
        the log for appends."""
        last_lsn = 0
        first_lsn = 0
        indexes = self._segment_indexes()
        for position, index in enumerate(indexes):
            path = self._segment_path(index)
            records, clean_end, torn = _scan_segment(path.read_bytes())
            if records:
                last_lsn = records[-1].lsn
                if first_lsn == 0:
                    first_lsn = records[0].lsn
                for record in records:
                    if isinstance(record, TermRecord):
                        self._last_term = max(self._last_term, record.term)
            self._segment_last_lsn[index] = (
                records[-1].lsn if records else -1
            )
            if torn:
                self._count_records("torn_dropped")
                with path.open("r+b") as handle:
                    handle.truncate(clean_end)
                    handle.flush()
                    os.fsync(handle.fileno())
                # Nothing after a broken record is trustworthy.
                for later in indexes[position + 1:]:
                    self._segment_path(later).unlink(missing_ok=True)
                    self._segment_last_lsn.pop(later, None)
                    self._count_segments("dropped")
                self._count_segments("repaired")
                break
        self._last_lsn = last_lsn
        if first_lsn > 0:
            self._truncated_lsn = first_lsn - 1
        self._active_index = max(self._segment_last_lsn, default=0)
        path = self._segment_path(self._active_index)
        self._segment_last_lsn.setdefault(self._active_index, -1)
        self._file = path.open("ab")
        # The open above may have created the first segment, and the
        # torn-tail repair may have unlinked later ones.
        self._fsync_directory()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._sync_locked(force=True)
                self._file.close()
                self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- write -----------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest durable record (0 when the log is empty)."""
        with self._lock:
            return self._last_lsn

    @property
    def last_term(self) -> int:
        """Highest replication term recorded in the log (0 when none)."""
        with self._lock:
            return self._last_term

    @property
    def truncated_lsn(self) -> int:
        """Highest LSN no longer readable from the log: records at or
        below it were removed by :meth:`truncate_through` (their
        effects live in a checkpoint) or by :meth:`reset`."""
        with self._lock:
            return self._truncated_lsn

    def append(
        self, stream: str, seq: int, mutations, *, lsn: int | None = None
    ) -> int:
        """Append one mutation batch; returns its LSN.

        The record is on disk (and fsynced, policy permitting) when
        this returns — the caller may only apply and acknowledge the
        batch afterwards.  ``lsn`` is normally assigned here; passing
        one is for tests that need a gap.
        """
        with self._lock:
            if self._file is None:
                raise WalError("write-ahead log is closed")
            if lsn is None:
                lsn = self._last_lsn + 1
            elif lsn <= self._last_lsn:
                raise WalError(
                    f"lsn {lsn} is not past the last lsn {self._last_lsn}"
                )
            record = WalRecord(
                lsn=lsn,
                stream=stream,
                seq=seq,
                mutations=tuple(
                    (op, int(u), int(v)) for op, u, v in mutations
                ),
            )
            return self._write_locked(record)

    def append_resummarize(
        self,
        targets,
        *,
        max_merges: int | None = None,
        lsn: int | None = None,
    ) -> int:
        """Append one committed maintenance pass; returns its LSN.

        Same durability contract as :meth:`append`: the decision is on
        disk (and fsynced, policy permitting) before the caller may
        swap the re-encoded structure in.
        """
        with self._lock:
            if self._file is None:
                raise WalError("write-ahead log is closed")
            if lsn is None:
                lsn = self._last_lsn + 1
            elif lsn <= self._last_lsn:
                raise WalError(
                    f"lsn {lsn} is not past the last lsn {self._last_lsn}"
                )
            record = ResummarizeRecord(
                lsn=lsn,
                targets=tuple(int(t) for t in targets),
                max_merges=max_merges,
            )
            return self._write_locked(record)

    def append_term(self, term: int, *, lsn: int | None = None) -> int:
        """Append one leadership-change record; returns its LSN.

        Same durability contract as :meth:`append`: a promoted primary
        must have its term on disk before acknowledging any write made
        under it, or a crash could revive it believing in a stale term.
        """
        with self._lock:
            if self._file is None:
                raise WalError("write-ahead log is closed")
            if term < 1:
                raise WalError(f"term must be >= 1, got {term}")
            if lsn is None:
                lsn = self._last_lsn + 1
            elif lsn <= self._last_lsn:
                raise WalError(
                    f"lsn {lsn} is not past the last lsn {self._last_lsn}"
                )
            return self._write_locked(TermRecord(lsn=lsn, term=term))

    def _write_locked(self, record) -> int:
        frame = encode_record(record)
        if self._file.tell() > 0 and (
            self._file.tell() + len(frame) > self._segment_bytes
        ):
            self._rotate_locked()
        self._file.write(frame)
        self._file.flush()
        self._unsynced += 1
        if self._fsync == "always" or (
            self._fsync == "interval"
            and self._unsynced >= self._fsync_interval
        ):
            self._sync_locked()
        self._last_lsn = record.lsn
        if isinstance(record, TermRecord):
            self._last_term = max(self._last_term, record.term)
        self._segment_last_lsn[self._active_index] = record.lsn
        self._count_records("appended")
        return record.lsn

    def _rotate_locked(self) -> None:
        self._sync_locked(force=True)
        self._file.close()
        self._active_index += 1
        self._segment_last_lsn[self._active_index] = -1
        self._file = self._segment_path(self._active_index).open("ab")
        # Persist the new segment's directory entry before any record
        # is acknowledged from it.
        self._fsync_directory()
        self._count_segments("rotated")

    def _sync_locked(self, force: bool = False) -> None:
        if self._unsynced == 0 and not force:
            return
        if self._fsync == "never" and not force:
            self._unsynced = 0
            return
        import time

        started = time.perf_counter()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._registry.histogram("repro_wal_fsync_seconds").observe(
            time.perf_counter() - started
        )
        self._unsynced = 0

    def sync(self) -> None:
        """Force an fsync of the active segment."""
        with self._lock:
            if self._file is not None:
                self._sync_locked(force=True)

    # -- read ------------------------------------------------------------
    def iter_records(self, after_lsn: int = 0):
        """Stream durable records with ``lsn > after_lsn``, oldest
        first, decoding one record at a time.

        Re-reads the segments from disk, so it sees exactly what a
        recovering process would; a torn tail ends the scan (the
        in-memory writer position is not consulted).  At most one
        segment's bytes are held in memory at a time, so replaying a
        multi-GB log — startup recovery, replication catch-up, the
        compactor — no longer materializes every record into one list.
        """
        with self._lock:
            if self._file is not None:
                self._file.flush()
            indexes = self._segment_indexes()
        for index in indexes:
            try:
                data = self._segment_path(index).read_bytes()
            except FileNotFoundError:
                continue  # truncated away since the listing
            offset = 0
            while offset < len(data):
                try:
                    length, body_start = decode_varint(data, offset)
                    body_end = body_start + length
                    if body_end > len(data):
                        raise ValueError("truncated record body")
                    body = data[body_start:body_end]
                    crc, next_offset = decode_varint(data, body_end)
                    if crc != zlib.crc32(body):
                        raise ValueError("record checksum mismatch")
                    record = _decode_payload(body)
                except ValueError:
                    self._count_records("torn_dropped")
                    return
                offset = next_offset
                if record.lsn > after_lsn:
                    self._count_records("replayed")
                    yield record

    def records(self, after_lsn: int = 0) -> list[WalRecord]:
        """All durable records with ``lsn > after_lsn``, oldest first,
        as one list.  Prefer :meth:`iter_records` on paths that may
        face a large log."""
        return list(self.iter_records(after_lsn=after_lsn))

    # -- compaction ------------------------------------------------------
    def truncate_through(self, lsn: int) -> int:
        """Delete whole segments made redundant by a checkpoint at
        ``lsn``; returns how many were removed.

        A segment is removable when every record it holds is at or
        below ``lsn`` — except the active segment, which stays (its
        already-applied records are skipped on replay via the
        checkpoint's LSN cursor).
        """
        removed = 0
        with self._lock:
            for index in sorted(self._segment_last_lsn):
                if index == self._active_index:
                    continue
                last = self._segment_last_lsn[index]
                if last <= lsn:
                    self._segment_path(index).unlink(missing_ok=True)
                    del self._segment_last_lsn[index]
                    if last > 0:
                        self._truncated_lsn = max(self._truncated_lsn, last)
                    removed += 1
                    self._count_segments("truncated")
            if removed:
                self._fsync_directory()
        return removed

    def reset(self, last_lsn: int, *, term: int = 0) -> None:
        """Discard every segment and restart the log at ``last_lsn``.

        Used when a follower installs a snapshot whose state
        supersedes — and may *diverge from* — the local log (a fenced
        stale primary rejoining, or a rejoin across a truncation gap):
        the on-disk tail is wiped so nothing stale can ever replay,
        and appends continue from the snapshot's LSN.  The caller must
        persist a checkpoint at ``last_lsn`` so the post-restart
        replay cursor matches.
        """
        with self._lock:
            if self._file is None:
                raise WalError("write-ahead log is closed")
            self._sync_locked(force=True)
            self._file.close()
            for index in self._segment_indexes():
                self._segment_path(index).unlink(missing_ok=True)
            self._segment_last_lsn = {0: -1}
            self._active_index = 0
            self._last_lsn = last_lsn
            self._truncated_lsn = last_lsn
            self._last_term = term
            self._unsynced = 0
            self._file = self._segment_path(0).open("ab")
            self._fsync_directory()
            self._count_segments("reset")

    # -- metrics ---------------------------------------------------------
    def _count_records(self, event: str) -> None:
        self._registry.counter(
            "repro_wal_records_total", event=event
        ).inc()

    def _count_segments(self, event: str) -> None:
        self._registry.counter(
            "repro_wal_segments_total", event=event
        ).inc()
