"""Background WAL compaction into atomic checkpoints.

An unbounded WAL means unbounded replay on restart.  The compactor
periodically folds the live engine state into the
:class:`~repro.resilience.checkpoint.CheckpointStore` (tmp + rename,
checksummed — never an in-place write) keyed by the applied LSN, then
deletes the WAL segments the new checkpoint made redundant.  Recovery
time is thereby bounded by one compaction interval's worth of tail.

Crash-safety is inherited, not re-proved: a kill at any point leaves
either the previous checkpoint (tail replays from it) or the new one
(tail is shorter) — both recover to the identical state.  Segment
deletion strictly follows a successful checkpoint save.
"""

from __future__ import annotations

import logging
import threading

from repro.durability.recovery import engine_state
from repro.obs.metrics import get_registry
from repro.resilience.checkpoint import CheckpointError, CheckpointStore

__all__ = ["WalCompactor"]

logger = logging.getLogger("repro.durability")


class WalCompactor:
    """Fold the WAL into checkpoints on a timer (or on demand).

    Parameters
    ----------
    engine:
        A :class:`~repro.service.ingest.MutableQueryEngine`; its state
        lock makes the snapshot one consistent cut.
    wal / store:
        The log to truncate and the checkpoint directory to fold into.
    interval:
        Seconds between compaction attempts; ``start()`` runs a daemon
        thread, or call :meth:`compact_now` yourself (tests, CLI
        shutdown).
    last_lsn:
        LSN already covered by a durable checkpoint — pass the
        recovered checkpoint's LSN so the first pass after a restart
        doesn't re-cut a checkpoint for (and re-truncate) work the
        loaded checkpoint already covers.
    """

    def __init__(
        self,
        engine,
        wal,
        store: CheckpointStore,
        *,
        interval: float = 30.0,
        last_lsn: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be > 0")
        self._engine = engine
        self._wal = wal
        self._store = store
        self._interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_lsn = int(last_lsn)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("compactor already started")
        self._thread = threading.Thread(
            target=self._run, name="wal-compactor", daemon=True
        )
        self._thread.start()

    def stop(self, *, final_compact: bool = False) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if final_compact:
            self.compact_now()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.compact_now()
            except CheckpointError as exc:
                # Durability is unaffected (the WAL still has
                # everything); log and retry next interval.
                logger.warning("compaction failed: %s", exc)
                get_registry().counter(
                    "repro_wal_compactions_total", event="failed"
                ).inc()

    # -- the fold --------------------------------------------------------
    def compact_now(self) -> bool:
        """One compaction pass; returns whether a checkpoint was cut.

        Skips when nothing was applied since the last fold (and while
        recovery replay is still running — checkpointing a half-replayed
        state is valid but pointless churn).
        """
        engine = self._engine
        if engine.replaying:
            return False
        with engine._state_lock:
            lsn = engine.applied_lsn
            if lsn <= self._last_lsn:
                return False
            state = engine_state(engine)
        self._store.save(state, step=lsn)
        self._last_lsn = lsn
        removed = self._wal.truncate_through(lsn) if self._wal else 0
        get_registry().counter(
            "repro_wal_compactions_total", event="completed"
        ).inc()
        logger.info(
            "compacted WAL through lsn=%d (%d segment(s) truncated)",
            lsn, removed,
        )
        return True
