"""Crash recovery: newest checkpoint + WAL tail replay.

The "resumed == uninterrupted" contract of the resilience layer
(docs/resilience.md), extended to the ingest path: a server killed at
any instant restarts by

1. loading the newest *intact* checkpoint from the WAL directory's
   :class:`~repro.resilience.checkpoint.CheckpointStore` (corrupt
   snapshots are skipped with a metric, exactly as in batch resume);
2. replaying every WAL record past the checkpoint's LSN through the
   same commit path live ingest uses.

Because mutations are validated *before* they are logged and the
commit path is deterministic, replay retraces the uninterrupted run's
states exactly — including the rebuild schedule, since the checkpoint
carries the dynamic summary's ``base_cost``.  The recovered engine is
therefore bit-identical (``Representation`` equality) to one that was
never killed, over the durable prefix of the stream.

Replay runs with the engine's ``replaying`` flag up, so queries served
meanwhile carry ``"degraded": true`` (the established convention)
instead of being refused, and ingest is parked with a structured
``overloaded`` error until the tail is drained.  Each replay is
wrapped in a ``recovery:replay`` span when tracing is on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encoding import Representation
from repro.dynamic.summary import DynamicGraphSummary
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.resilience.checkpoint import CheckpointStore

__all__ = [
    "RecoveryReport",
    "representation_to_state",
    "state_to_representation",
    "engine_state",
    "recover_engine",
    "replay_tail",
]

#: v2 added the per-stream batch fingerprint to dedup rows
#: (``[stream, seq, mutations, result]``), so a recovered server keeps
#: rejecting a reused sequence number that carries different mutations.
#: v3 added the per-super-node dirtiness counters (background
#: maintenance's drift signal) and stores dedup rows in commit-recency
#: order so LRU eviction survives recovery; v2 checkpoints still load
#: (dirtiness is re-derived from the live corrections, dedup recency
#: falls back to the stored sorted order).
#: v4 added the replication ``term`` so a restarted replica rejoins
#: with the leadership epoch it last durably observed; older
#: checkpoints load with term 0 (the WAL's term records still apply).
STATE_VERSION = 4
_ACCEPTED_VERSIONS = (2, 3, 4)


@dataclass
class RecoveryReport:
    """What startup recovery found and did."""

    checkpoint_lsn: int  #: LSN of the loaded checkpoint (0 = none)
    records_replayed: int
    epoch: int
    applied_lsn: int

    def describe(self) -> str:
        return (
            f"recovered from checkpoint lsn={self.checkpoint_lsn}, "
            f"replayed {self.records_replayed} WAL record(s) -> "
            f"epoch={self.epoch}, lsn={self.applied_lsn}"
        )


# ----------------------------------------------------------------------
# Representation <-> JSON-safe state
# ----------------------------------------------------------------------
def representation_to_state(rep: Representation) -> dict:
    """A JSON-clean snapshot (sorted lists, no integer dict keys —
    JSON would silently stringify those)."""
    return {
        "n": rep.n,
        "m": rep.m,
        "supernodes": [
            [sid, list(members)]
            for sid, members in sorted(rep.supernodes.items())
        ],
        "summary_edges": sorted(list(e) for e in rep.summary_edges),
        "additions": sorted(list(e) for e in rep.additions),
        "removals": sorted(list(e) for e in rep.removals),
    }


def state_to_representation(state: dict) -> Representation:
    supernodes = {
        int(sid): [int(x) for x in members]
        for sid, members in state["supernodes"]
    }
    node_to_supernode = {
        node: sid for sid, members in supernodes.items() for node in members
    }
    return Representation(
        n=int(state["n"]),
        m=int(state["m"]),
        supernodes=supernodes,
        node_to_supernode=node_to_supernode,
        summary_edges={(int(u), int(v)) for u, v in state["summary_edges"]},
        additions={(int(u), int(v)) for u, v in state["additions"]},
        removals={(int(u), int(v)) for u, v in state["removals"]},
    )


def engine_state(engine) -> dict:
    """The checkpointable state of a
    :class:`~repro.service.ingest.MutableQueryEngine`.

    Must be called under the engine's state lock (the compactor does)
    so representation, epoch, LSN, and dedup map are one consistent
    cut.
    """
    return {
        "v": STATE_VERSION,
        "representation": representation_to_state(
            engine._dynamic.to_representation()
        ),
        "base_cost": engine._dynamic.base_cost,
        "epoch": engine.epoch,
        "applied_lsn": engine.applied_lsn,
        "term": getattr(engine, "term", 0),
        # Commit-recency order (oldest first), NOT sorted: the row
        # order is the engine's LRU eviction order and must round-trip.
        "dedup": [
            [stream, seq, [list(item) for item in batch], dict(result)]
            for stream, (seq, batch, result) in engine._dedup.items()
        ],
        "dirty": [
            [sid, count]
            for sid, count in sorted(
                engine._dynamic.dirty_supernodes().items()
            )
        ],
    }


# ----------------------------------------------------------------------
# Startup recovery
# ----------------------------------------------------------------------
def recover_engine(
    base_representation: Representation,
    wal,
    store: CheckpointStore | None,
    *,
    engine_factory,
    rebuild_factor: float | None = None,
):
    """Build a recovered engine plus the WAL tail still to replay.

    Loads the newest intact checkpoint (falling back to
    ``base_representation`` at epoch 0 when there is none), constructs
    the dynamic overlay and engine via ``engine_factory(dynamic)``,
    restores epoch/LSN/dedup, and returns
    ``(engine, pending_records, report)``.  The caller decides whether
    to drain ``pending_records`` inline (tests, small tails) or on a
    background thread while already serving degraded answers — both go
    through :func:`replay_tail`.
    """
    from collections import OrderedDict

    checkpoint = store.latest() if store is not None else None
    base_cost = None
    epoch = 0
    applied_lsn = 0
    term = 0
    dirtiness: dict[int, int] | None = None
    dedup: OrderedDict[
        str, tuple[int, tuple[tuple[str, int, int], ...], dict]
    ] = OrderedDict()
    if checkpoint is not None:
        state = checkpoint.state
        if state.get("v") not in _ACCEPTED_VERSIONS:
            raise ValueError(
                f"unsupported ingest checkpoint version {state.get('v')!r}"
            )
        rep = state_to_representation(state["representation"])
        base_cost = int(state["base_cost"])
        epoch = int(state["epoch"])
        applied_lsn = int(state["applied_lsn"])
        term = int(state.get("term", 0))
        # Row order is preserved: for v3 it is the commit-recency
        # (LRU eviction) order, for v2 the historical sorted order.
        for stream, seq, batch, result in state.get("dedup", []):
            dedup[str(stream)] = (
                int(seq),
                tuple(
                    (str(op), int(u), int(v)) for op, u, v in batch
                ),
                dict(result),
            )
        if "dirty" in state:
            dirtiness = {
                int(sid): int(count)
                for sid, count in state["dirty"]
            }
        else:
            # v2 carried no drift counters; seed them from the live
            # corrections (one touch per endpoint) so maintenance has
            # a signal to work with after an upgrade.
            dirtiness = {}
            node_to_supernode = rep.node_to_supernode
            for u, v in sorted(rep.additions | rep.removals):
                for node in (u, v):
                    sid = node_to_supernode[node]
                    dirtiness[sid] = dirtiness.get(sid, 0) + 1
        get_registry().counter(
            "repro_recovery_total", event="checkpoint_loaded"
        ).inc()
    else:
        rep = base_representation
        get_registry().counter(
            "repro_recovery_total", event="cold_start"
        ).inc()
    dynamic = DynamicGraphSummary.from_representation(
        rep,
        rebuild_factor=rebuild_factor,
        base_cost=base_cost,
        dirtiness=dirtiness,
    )
    engine = engine_factory(dynamic)
    engine.epoch = epoch
    engine.applied_lsn = applied_lsn
    engine._dedup = dedup
    # The WAL tail may hold a newer term than the checkpoint cut
    # (replay_record advances it record by record, but a replica must
    # not rejoin believing a term it already durably acknowledged is
    # still open to contest).
    if hasattr(engine, "term"):
        engine.term = max(
            term, wal.last_term if wal is not None else 0
        )
    # Lazy: a multi-GB tail streams one record at a time through
    # replay_tail instead of materializing into one list.
    pending = (
        wal.iter_records(after_lsn=applied_lsn) if wal is not None else ()
    )
    report = RecoveryReport(
        checkpoint_lsn=applied_lsn,
        records_replayed=0,
        epoch=epoch,
        applied_lsn=applied_lsn,
    )
    return engine, pending, report


def replay_tail(engine, records, report: RecoveryReport) -> RecoveryReport:
    """Drain the WAL tail into ``engine`` under its ``replaying`` flag.

    Safe to run on a background thread while the server is already
    answering (degraded) queries; ingest stays parked until the flag
    drops.  Updates and returns ``report``.
    """
    tracer = get_tracer()
    engine.replaying = True
    try:
        if tracer.enabled:
            # ``records`` may be a lazy stream, so the span reports
            # the count only after the drain.
            with tracer.span("recovery:replay") as span:
                replayed = _drain(engine, records)
                span.set(records=replayed)
        else:
            replayed = _drain(engine, records)
    finally:
        engine.replaying = False
    report.records_replayed = replayed
    report.epoch = engine.epoch
    report.applied_lsn = engine.applied_lsn
    get_registry().counter(
        "repro_recovery_total", event="replay_complete"
    ).inc()
    return report


def _drain(engine, records) -> int:
    replayed = 0
    for record in records:
        if engine.replay_record(record):
            replayed += 1
    return replayed
