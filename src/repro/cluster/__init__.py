"""Sharded serving: topology, sharder, query router, failover.

The cluster layer scales :mod:`repro.service` horizontally.  A graph
is sliced into per-shard summary artifacts (:mod:`.sharder`), each
served by one or more plain :class:`~repro.service.server.
SummaryQueryServer` instances, and a :class:`~repro.cluster.router.
RouterEngine` fronts them all speaking the *same* wire protocol —
clients cannot tell a router from a single server.  Node ownership is
the seeded keyed hash :func:`repro.distributed.partitioning.
shard_for_node`; replica failover wraps every instance in the
resilience layer's circuit breaker and retry policy.

See ``docs/serving.md`` ("Cluster") for the topology file format,
routing semantics, and failover states.
"""

from repro.cluster.manager import (
    ClusterManager,
    InstanceProcess,
    LocalCluster,
    probe_topology,
    start_local_cluster,
)
from repro.cluster.router import RouterEngine, ShardDownError
from repro.cluster.sharder import PlanReport, plan_cluster, shard_graph
from repro.cluster.topology import (
    ClusterSpec,
    InstanceSpec,
    TopologyError,
    default_spec,
    load_topology,
    save_topology,
    spec_from_dict,
)

__all__ = [
    "ClusterManager",
    "ClusterSpec",
    "InstanceProcess",
    "InstanceSpec",
    "LocalCluster",
    "PlanReport",
    "RouterEngine",
    "ShardDownError",
    "TopologyError",
    "default_spec",
    "load_topology",
    "plan_cluster",
    "probe_topology",
    "save_topology",
    "shard_graph",
    "spec_from_dict",
    "start_local_cluster",
]
