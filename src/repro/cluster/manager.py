"""Cluster lifecycle: launch, supervise, and stop shard instances.

Two deployment shapes share the topology spec:

* :class:`ClusterManager` — the real thing: one ``python -m repro
  serve`` **subprocess per instance** (its own interpreter, its own
  GIL), the router served in-process.  Used by ``repro cluster
  start`` and the cluster smoke/chaos tooling, which kills and
  restarts instance processes mid-run.
* :func:`start_local_cluster` — everything **in-process on ephemeral
  ports** for tests: real sockets and the real router, no subprocess
  startup cost; the returned handle exposes each instance's server so
  a test can drop a replica with ``server.close()``.
"""

from __future__ import annotations

import logging
import os
import re
import signal
import subprocess
import sys
import threading
from collections import deque
from pathlib import Path

from repro.cluster.router import RouterEngine, worst_p99_ms
from repro.cluster.topology import ClusterSpec, InstanceSpec, TopologyError
from repro.service.client import ServiceError, SummaryServiceClient
from repro.service.engine import QueryEngine
from repro.service.server import SummaryQueryServer

__all__ = [
    "InstanceProcess",
    "ClusterManager",
    "LocalCluster",
    "start_local_cluster",
]

logger = logging.getLogger("repro.cluster")

_SERVING_RE = re.compile(r"serving on (\S+):(\d+)")


def _subprocess_env() -> dict[str, str]:
    """Child env with this package's ``src`` tree on ``PYTHONPATH``."""
    src_dir = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_dir), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return env


class InstanceProcess:
    """One shard-serving subprocess (``python -m repro serve``)."""

    def __init__(
        self,
        instance: InstanceSpec,
        artifact: Path,
        *,
        workers: int = 4,
        cache_size: int = 4096,
        extra_args: list[str] | None = None,
    ):
        self.instance = instance
        self.artifact = Path(artifact)
        self._workers = workers
        self._cache_size = cache_size
        self._extra_args = list(extra_args or [])
        self._proc: subprocess.Popen | None = None
        self._output: deque[str] = deque(maxlen=200)
        self._drain: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    def output_tail(self) -> str:
        return "".join(self._output)

    def start(self, startup_timeout: float = 60.0) -> "InstanceProcess":
        """Spawn the server and block until it reports its port."""
        if self.running:
            return self
        if not self.artifact.exists():
            raise TopologyError(
                f"{self.instance.label}: artifact {self.artifact} does "
                "not exist; run 'repro cluster plan' first"
            )
        command = [
            sys.executable, "-m", "repro", "serve", str(self.artifact),
            "--host", self.instance.host,
            "--port", str(self.instance.port),
            "--workers", str(self._workers),
            "--cache-size", str(self._cache_size),
            "--log-interval", "0",
            *self._extra_args,
        ]
        self._proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_subprocess_env(),
        )
        ready = threading.Event()

        def drain(proc: subprocess.Popen) -> None:
            for line in proc.stdout:
                self._output.append(line)
                if _SERVING_RE.search(line):
                    ready.set()
            ready.set()  # EOF: unblock the waiter either way

        self._drain = threading.Thread(
            target=drain, args=(self._proc,), daemon=True
        )
        self._drain.start()
        if not ready.wait(startup_timeout) or not self.running:
            tail = self.output_tail()
            self.kill()
            raise TopologyError(
                f"{self.instance.label} did not come up on "
                f"{self.instance.host}:{self.instance.port}:\n{tail}"
            )
        logger.info(
            "started %s (pid %d) on %s:%d",
            self.instance.label, self._proc.pid,
            self.instance.host, self.instance.port,
        )
        return self

    def stop(self, timeout: float = 15.0) -> int | None:
        """Graceful SIGINT stop; returns the exit code (or ``None`` if
        it never ran)."""
        if self._proc is None:
            return None
        if self._proc.poll() is None:
            try:
                self._proc.send_signal(signal.SIGINT)
                self._proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                logger.warning(
                    "%s ignored SIGINT; killing", self.instance.label
                )
                self._proc.kill()
                self._proc.wait()
        return self._proc.returncode

    def kill(self) -> None:
        """Immediate SIGKILL (the chaos path; no graceful drain)."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.kill()
            self._proc.wait()


class ClusterManager:
    """Run a planned topology: subprocess instances + in-process router.

    Usable as a context manager; :meth:`stop` is idempotent and stops
    the router before the instances so in-flight fan-outs drain
    against live backends.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        workers: int = 4,
        cache_size: int = 4096,
        router_cache_size: int = 4096,
        instance_args: list[str] | None = None,
        trace_dir: str | Path | None = None,
        wal_dir: str | Path | None = None,
    ):
        self.spec = spec
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None

        def extra_args(instance: InstanceSpec) -> list[str]:
            args = list(instance_args or [])
            if self.trace_dir is not None:
                # Every instance exports its spans into the shared
                # directory under its own label, so the collector can
                # reassemble cross-process traces from one place.
                args += [
                    "--trace-dir", str(self.trace_dir),
                    "--instance-label", instance.label,
                ]
            if self.wal_dir is not None:
                # Each instance owns a private WAL + checkpoint dir;
                # a restart of the same (shard, replica) finds its own
                # durable state there.
                args += [
                    "--wal-dir",
                    str(
                        self.wal_dir
                        / f"shard{instance.shard}-r{instance.replica}"
                    ),
                ]
                if spec.replicas > 1:
                    # Static replication wiring: replica 0 starts as
                    # each shard's primary, its siblings as followers.
                    # The router re-elects on failure; a restarted
                    # stale primary is fenced by its higher-term
                    # sibling and steps down on its own.
                    if instance.replica == 0:
                        args += ["--repl-role", "primary"]
                        for sibling in spec.instances_for(instance.shard):
                            if sibling.replica != instance.replica:
                                args += [
                                    "--repl-follower",
                                    f"{sibling.host}:{sibling.port}",
                                ]
                        args += ["--repl-acks", spec.acks]
                    else:
                        args += ["--repl-role", "follower"]
            return args

        self.processes: dict[str, InstanceProcess] = {
            instance.label: InstanceProcess(
                instance,
                spec.artifact_path(instance.shard),
                workers=workers,
                cache_size=cache_size,
                extra_args=extra_args(instance),
            )
            for instance in spec.instances
        }
        self._workers = workers
        self._router_cache_size = router_cache_size
        self.router_engine: RouterEngine | None = None
        self.router_server: SummaryQueryServer | None = None
        self._router_sink = None
        self._previous_tracer = None

    def start_instances(self, startup_timeout: float = 60.0) -> None:
        started: list[InstanceProcess] = []
        try:
            for process in self.processes.values():
                process.start(startup_timeout)
                started.append(process)
        except BaseException:
            for process in started:
                process.kill()
            raise

    def start_router(self, *, workers: int = 8) -> SummaryQueryServer:
        """Serve the router on the spec's router address, in-process."""
        if self.trace_dir is not None and self._router_sink is None:
            # The router runs in-process: give it its own tracer +
            # span file alongside the instances' so a collector sees
            # the whole request tree in one directory.
            from repro.obs import tracer as obs_tracer
            from repro.obs.exporters import SpanSink

            obs_tracer.set_instance_label("router")
            self._router_sink = SpanSink(self.trace_dir, "router")
            self._previous_tracer = obs_tracer.set_tracer(
                obs_tracer.Tracer(sink=self._router_sink.write)
            )
        # The pool cap must stay below each instance's worker count:
        # pooled connections are persistent, and the server parks a
        # worker on every connection — capping at workers-1 keeps one
        # worker free for direct clients (status probes, debugging).
        self.router_engine = RouterEngine(
            self.spec,
            cache_size=self._router_cache_size,
            max_connections_per_replica=max(1, self._workers - 1),
        )
        self.router_server = SummaryQueryServer(
            self.router_engine,
            host=self.spec.router_host,
            port=self.spec.router_port,
            workers=workers,
        )
        return self.router_server.start()

    def start(self, startup_timeout: float = 60.0) -> "ClusterManager":
        self.start_instances(startup_timeout)
        self.start_router()
        return self

    def stop(self) -> dict[str, int | None]:
        """Stop router then instances; returns exit codes by label."""
        if self.router_server is not None:
            self.router_server.close()
            self.router_server = None
        if self.router_engine is not None:
            self.router_engine.close()
            self.router_engine = None
        if self._previous_tracer is not None:
            from repro.obs.tracer import set_tracer

            set_tracer(self._previous_tracer)
            self._previous_tracer = None
        if self._router_sink is not None:
            self._router_sink.close()
            self._router_sink = None
        return {
            label: process.stop()
            for label, process in self.processes.items()
        }

    def __enter__(self) -> "ClusterManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class LocalCluster:
    """An in-process cluster (tests): servers in threads, real router.

    ``spec`` carries the *actual* ephemeral ports the instance servers
    bound, so the router and any client address them normally.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        servers: dict[str, SummaryQueryServer],
        router_server: SummaryQueryServer,
        router_engine: RouterEngine,
        engines: dict[str, object] | None = None,
    ):
        self.spec = spec
        self.servers = servers
        self.router_server = router_server
        self.router_engine = router_engine
        #: Per-instance engines by label — lets replication tests
        #: reach into a replica's state directly (compare summary
        #: bytes, force a step-down) without a wire round trip.
        self.engines: dict[str, object] = dict(engines or {})

    @property
    def router_address(self) -> tuple[str, int]:
        return self.router_server.address

    def kill_instance(self, label: str) -> None:
        """Hard-stop one replica (its clients see resets/refusals)."""
        self.servers[label].close(timeout=5.0)

    def close(self) -> None:
        self.router_server.close()
        self.router_engine.close()
        for engine in self.engines.values():
            stop_replication = getattr(engine, "stop_replication", None)
            if stop_replication is not None:
                stop_replication()
        for server in self.servers.values():
            server.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_local_cluster(
    representations: list,
    *,
    replicas: int = 1,
    seed: int = 0,
    n: int | None = None,
    cache_size: int = 4096,
    router_cache_size: int = 4096,
    breaker_threshold: int = 2,
    breaker_reset_s: float = 5.0,
    workers: int = 4,
    retry_policy=None,
    mutable: bool = False,
    acks: str = "quorum",
) -> LocalCluster:
    """Serve per-shard ``representations`` in-process on ephemeral
    ports and front them with a router.

    ``representations[s]`` is shard ``s``'s summary (as produced by
    summarizing :func:`repro.cluster.sharder.shard_graph` output with
    the same ``seed``).  Each replica of a shard gets its own engine
    over the shared representation, so per-instance metrics stay
    isolated exactly as they would across processes.

    ``mutable=True`` serves each shard through a
    :class:`~repro.service.ingest.MutableQueryEngine` (no WAL — this
    is the in-process routing-semantics testbed, not the durable
    path).  With ``replicas > 1`` the replicas of each shard are
    wired into a replication group over their real sockets: replica 0
    primary, siblings followers, write acknowledgement per ``acks``.
    """
    from repro.cluster.topology import InstanceSpec as _Instance

    shards = len(representations)
    if shards < 1:
        raise TopologyError("need at least one shard representation")
    servers: dict[str, SummaryQueryServer] = {}
    engines: dict[str, object] = {}
    instances: list[InstanceSpec] = []
    try:
        for shard, rep in enumerate(representations):
            shard_group: list[tuple[InstanceSpec, object]] = []
            for replica in range(replicas):
                if mutable:
                    from repro.dynamic.summary import DynamicGraphSummary
                    from repro.service.ingest import MutableQueryEngine

                    engine = MutableQueryEngine(
                        DynamicGraphSummary.from_representation(rep),
                        cache_size=cache_size,
                    )
                else:
                    engine = QueryEngine(rep, cache_size=cache_size)
                server = SummaryQueryServer(
                    engine, port=0, workers=workers
                ).start()
                host, port = server.address
                instance = _Instance(
                    shard=shard, replica=replica, host=host, port=port
                )
                servers[instance.label] = server
                engines[instance.label] = engine
                instances.append(instance)
                shard_group.append((instance, engine))
            if mutable and replicas > 1:
                # Wire the shard's replication group now that every
                # sibling's ephemeral port is known: replica 0
                # primary, the rest followers (same convention as
                # ClusterManager's subprocess flags).
                for _, follower_engine in shard_group[1:]:
                    follower_engine.configure_replication(
                        role="follower"
                    )
                shard_group[0][1].configure_replication(
                    role="primary",
                    followers=[
                        inst.address for inst, _ in shard_group[1:]
                    ],
                    acks=acks,
                )
        spec = ClusterSpec(
            shards=shards,
            replicas=replicas,
            seed=seed,
            router_host="127.0.0.1",
            router_port=0,
            instances=instances,
            n=n if n is not None else representations[0].n,
            breaker_threshold=breaker_threshold,
            breaker_reset_s=breaker_reset_s,
            acks=acks,
        )
        router_engine = RouterEngine(
            spec,
            cache_size=router_cache_size,
            retry_policy=retry_policy,
            max_connections_per_replica=max(1, workers - 1),
        )
        router_server = SummaryQueryServer(
            router_engine, port=0, workers=workers
        ).start()
    except BaseException:
        for engine in engines.values():
            stop_replication = getattr(engine, "stop_replication", None)
            if stop_replication is not None:
                stop_replication()
        for server in servers.values():
            server.close()
        raise
    return LocalCluster(
        spec, servers, router_server, router_engine, engines=engines
    )


def probe_topology(spec: ClusterSpec, timeout: float = 3.0) -> list[dict]:
    """Ping the router and every instance; one status row each.

    Used by ``repro cluster status`` — never raises for a down
    process, it reports it.
    """
    rows: list[dict] = []
    targets: list[tuple[str, str, int]] = [
        ("router", spec.router_host, spec.router_port)
    ]
    targets += [
        (i.label, i.host, i.port) for i in spec.instances
    ]
    for label, host, port in targets:
        row = {"target": label, "address": f"{host}:{port}"}
        try:
            with SummaryServiceClient(host, port, timeout=timeout) as client:
                stats = client.stats()
                repl = None
                if label != "router" and spec.replicas > 1:
                    try:
                        repl = client.repl_status()
                    except (OSError, ServiceError, ValueError):
                        repl = None  # read-only instance, or mid-restart
            row["up"] = True
            row["requests_total"] = stats.get("requests_total")
            row["errors_total"] = stats.get("errors_total")
            row["p99_ms"] = worst_p99_ms(stats.get("latency_ms"))
            if isinstance(repl, dict):
                row["role"] = repl.get("role")
                row["term"] = repl.get("term")
                followers = repl.get("followers")
                if isinstance(followers, list) and followers:
                    row["max_follower_lag"] = max(
                        int(f.get("lag", 0) or 0)
                        for f in followers
                        if isinstance(f, dict)
                    )
        except (OSError, ServiceError, ValueError) as exc:
            row["up"] = False
            row["error"] = f"{type(exc).__name__}: {exc}"
        rows.append(row)
    return rows
