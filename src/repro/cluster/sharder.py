"""Slice one graph into per-shard summary artifacts.

The divide step of the cluster: every node is owned by exactly one
shard (:meth:`ClusterSpec.owner`, the seeded keyed hash), and shard
``s`` gets the subgraph of **every edge incident to a node it owns**.
Cut edges therefore appear on both endpoint shards — that closure is
what makes per-shard serving exact: for any owned node ``u`` the
shard subgraph contains ``u``'s full global neighborhood, so a
lossless summary of the shard subgraph answers ``neighbors(u)`` /
``degree(u)`` **bit-identically** to a summary of the whole graph.
The router only ever asks a shard about nodes the shard owns, so
answers never come from the partial neighborhoods of non-owned
boundary nodes.

Shard subgraphs keep the global id space (``n`` nodes, most of them
isolated on any one shard) — no remapping tables to ship or get
wrong; isolated nodes cost one singleton super-node each in the
per-shard summary, which the text format stores in one line.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Callable

from repro.cluster.topology import ClusterSpec, save_topology
from repro.core.serialization import save_representation
from repro.graph.graph import Graph

__all__ = ["shard_graph", "plan_cluster", "PlanReport"]

logger = logging.getLogger("repro.cluster")

#: Default artifact filename for one shard.
ARTIFACT_TEMPLATE = "shard-{shard}.summary.txt.gz"


def shard_graph(
    graph: Graph, shards: int, seed: int = 0
) -> list[Graph]:
    """Per-shard subgraphs over the global id space.

    Shard ``s`` receives every edge with at least one endpoint owned
    by ``s`` (cut edges are duplicated onto both endpoint shards), so
    owned neighborhoods are complete.  The union of all shard edge
    sets is exactly the input edge set.
    """
    from repro.distributed.partitioning import shard_for_node

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    owner = [shard_for_node(u, shards, seed) for u in range(graph.n)]
    per_shard: list[list[tuple[int, int]]] = [[] for _ in range(shards)]
    for u, v in graph.edges():
        per_shard[owner[u]].append((u, v))
        if owner[v] != owner[u]:
            per_shard[owner[v]].append((u, v))
    return [Graph(graph.n, edges) for edges in per_shard]


class PlanReport:
    """What ``plan_cluster`` produced, for logging and the CLI."""

    def __init__(self, spec: ClusterSpec, rows: list[dict]):
        self.spec = spec
        self.rows = rows

    def summary_lines(self) -> list[str]:
        lines = []
        for row in self.rows:
            lines.append(
                f"shard {row['shard']}: owned={row['owned_nodes']} "
                f"edges={row['edges']} (cut={row['cut_edges']}) "
                f"rel_size={row['relative_size']:.4f} "
                f"-> {row['artifact']}"
            )
        return lines


def plan_cluster(
    graph: Graph,
    spec: ClusterSpec,
    out_dir: str | Path,
    summarizer_factory: Callable[[], object],
    *,
    topology_name: str = "topology.json",
) -> PlanReport:
    """Summarize every shard subgraph and write the cluster directory.

    ``out_dir`` receives one summary artifact per shard plus the
    completed ``topology.json`` (artifacts recorded relative to it,
    ``n`` recorded for router-side range checks).
    ``summarizer_factory`` builds a fresh summarizer per shard —
    summarizer instances are single-use.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    subgraphs = shard_graph(graph, spec.shards, spec.seed)
    owned = [0] * spec.shards
    for u in range(graph.n):
        owned[spec.owner(u)] += 1

    artifacts: dict[int, str] = {}
    rows: list[dict] = []
    for shard, subgraph in enumerate(subgraphs):
        result = summarizer_factory().summarize(subgraph)
        name = ARTIFACT_TEMPLATE.format(shard=shard)
        save_representation(out_dir / name, result.representation)
        artifacts[shard] = name
        cut = sum(
            1
            for u, v in subgraph.edges()
            if spec.owner(u) != spec.owner(v)
        )
        rows.append(
            {
                "shard": shard,
                "owned_nodes": owned[shard],
                "edges": subgraph.m,
                "cut_edges": cut,
                "relative_size": result.relative_size,
                "artifact": name,
            }
        )
        logger.info(
            "planned shard %d: %d owned nodes, %d edges -> %s",
            shard, owned[shard], subgraph.m, name,
        )

    spec.artifacts = artifacts
    spec.n = graph.n
    spec.base_dir = out_dir.resolve()
    save_topology(out_dir / topology_name, spec)
    return PlanReport(spec, rows)
