"""Consistent-hash query router with replica failover.

The cluster front-end: a :class:`RouterEngine` speaks the *same*
request-dict contract as :class:`repro.service.engine.QueryEngine`
(``query`` / ``query_many`` / ``metrics``), so the existing
:class:`~repro.service.server.SummaryQueryServer` serves it unchanged
— clients connect to the router with the unmodified wire protocol and
cannot tell it from a single server.

Routing semantics
-----------------
* ``neighbors`` / ``degree`` / ``pagerank`` — forwarded to the shard
  that owns the node under the seeded keyed hash
  (:meth:`ClusterSpec.owner`).  Shard artifacts carry every edge
  incident to their owned nodes (:mod:`repro.cluster.sharder`), so
  ``neighbors``/``degree`` answers are bit-identical to a
  single-server run.  ``pagerank`` is the shard-local Algorithm 7
  score over the shard's 1-hop-closed subgraph — an approximation of
  the global score (exact distributed PageRank needs cross-shard
  iteration; see docs/serving.md).
* ``khop`` — a router-driven level-synchronous BFS: each level's
  frontier is grouped by owning shard and fetched with batched
  ``neighbors`` fan-out, merged through a router-side LRU so hot
  neighborhoods cross the wire once.  Distances are level-exact, so
  the merged answer is bit-identical to a single server's.
* ``batch`` — split by owning shard, sub-batches fan out in parallel
  and may return in any order; responses are re-assembled by original
  position so the client's per-request ordering and ids are
  preserved exactly.
* ``ingest`` — each mutation is forwarded to every shard owning one
  of its endpoints (shard artifacts carry all edges incident to their
  owned nodes — the 1-hop closure — so an edge toggle must land on
  the owner of *each* endpoint to keep that invariant).  Sub-batches
  reuse the client's ``stream``/``seq`` identity per shard, so a
  retry after a partial failure converges: shards that already
  applied answer ``duplicate: true``, the rest apply.  The router's
  neighbor cache is invalidated per dirty node on success.  With
  ``replicas > 1`` each sub-batch goes to the shard's current
  **primary**, which ships its WAL to the sibling followers
  (:mod:`repro.durability.replication`); when the primary dies or
  answers ``not_primary``/``fenced``, the router probes the live
  replicas' ``repl_status``, adopts an already-promoted primary or
  promotes the most-caught-up follower under a strictly higher term,
  and retries the sub-batch — the replayed ``(stream, seq)`` dedups
  on the new primary, so a batch acked just before the failover is
  answered ``duplicate: true`` instead of double-applied.  See
  docs/resilience.md ("Replication & failover").
* ``stats`` — the router's own counters plus a ``cluster`` section
  aggregated from a best-effort ``stats`` probe of every instance.
* ``telemetry`` — the router's identity and registry snapshot; the
  cluster collector (:mod:`repro.obs.collect`) pairs it with each
  instance's own ``telemetry`` answer to build the merged registry.

When tracing is on, every outbound shard call runs under a
``router:fanout`` span whose context rides the wire (the ``trace``
request field), so shard-side ``service:request`` spans parent under
it and ``repro cluster trace <id>`` can reassemble the full tree.

Failover states
---------------
Every instance gets a lazily-grown pool of
:class:`~repro.service.client.SummaryServiceClient` connections
guarded by one :class:`~repro.resilience.breaker.CircuitBreaker`:

* **healthy** (breaker closed) — in rotation;
* **ejected** (breaker open, after ``breaker_threshold`` consecutive
  transport failures) — skipped without a connect attempt until
  ``breaker_reset_s`` elapses;
* **probing** (half-open) — one request is allowed through; success
  readmits the replica, failure re-arms the ejection window.

A request sweeps the owning shard's replicas round-robin, failing
over on transport errors; sweeps retry under the configured
:class:`~repro.resilience.retry.RetryPolicy`.  Only when *every*
replica of a shard is down does the client see an effect: a
structured ``unavailable`` error for single-shard ops, or a partial
answer flagged ``"degraded": true`` for a ``khop`` whose BFS crossed
the dead shard.
"""

from __future__ import annotations

import contextlib
import logging
import os
import random
import threading
import time

from repro.cluster.topology import ClusterSpec, InstanceSpec, TopologyError
from repro.obs.tracer import get_instance_label, get_tracer
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import (
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    call_with_retry,
)
from repro.service.client import ServiceError, SummaryServiceClient
from repro.service.engine import (
    LRUCache,
    OPS,
    TELEMETRY_SAMPLES,
    QueryError,
    QueryTimeout,
    error_response,
)
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import MAX_BATCH_REQUESTS, ProtocolError

__all__ = [
    "RouterEngine",
    "ShardDownError",
    "ReplicaPool",
    "ShardPool",
    "worst_p99_ms",
]

logger = logging.getLogger("repro.cluster")

#: Ops the router forwards whole to the owning shard.
_SINGLE_SHARD_OPS = ("neighbors", "degree", "pagerank")

#: Everything the router answers: the read ops plus ``ingest``
#: (accepted only when the backing shards run mutable engines).
ROUTER_OPS = OPS + ("ingest",)

#: Transport-level failures that trigger failover to a sibling
#: replica (``OSError`` covers ``ConnectionError`` and timeouts).
_FAILOVER_ERRORS = (OSError, ProtocolError)


def worst_p99_ms(latency: dict | None) -> float | None:
    """Worst per-op p99 from a ``stats`` snapshot's ``latency_ms``
    section (``None`` when nothing was recorded) — the one-number
    latency summary ``repro cluster status`` prints per instance."""
    if not isinstance(latency, dict):
        return None
    values = [
        entry["p99_ms"]
        for entry in latency.values()
        if isinstance(entry, dict)
        and isinstance(entry.get("p99_ms"), (int, float))
    ]
    return max(values) if values else None


class ShardDownError(QueryError):
    """Every replica of a shard is unreachable; becomes a structured
    ``unavailable`` error on the wire."""

    def __init__(self, shard: int, replicas: int):
        super().__init__(
            "unavailable",
            f"shard {shard} is unavailable "
            f"(all {replicas} replica(s) down)",
        )
        self.shard = shard


class _SweepFailed(ConnectionError):
    """One full pass over a shard's replicas found no healthy one."""


class ReplicaPool:
    """Connection pool + circuit breaker for one instance.

    Clients are created on demand, reused via a free-list, and
    discarded when their stream can no longer be trusted.  All methods
    are thread-safe; the breaker is the instance's health state.

    The pool holds at most ``max_connections`` open connections and
    makes callers *wait* for a free one rather than opening more.
    The cap matters: :class:`~repro.service.server.SummaryQueryServer`
    dedicates a worker thread to each connection for that connection's
    lifetime, and pooled connections live forever — so a pool wider
    than the instance's worker count would park its excess connections
    in the accept queue unserved, and every request sent on one would
    stall until the socket timeout ejected a perfectly healthy
    replica.
    """

    def __init__(
        self,
        instance: InstanceSpec,
        *,
        breaker_threshold: int,
        breaker_reset_s: float,
        connect_timeout: float = 10.0,
        max_connections: int = 4,
    ):
        self.instance = instance
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset_s,
        )
        self._timeout = connect_timeout
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._max = max(1, max_connections)
        self._open = 0  # connections in existence (free + leased)
        self._free: list[SummaryServiceClient] = []
        self._closed = False

    def _acquire(self) -> SummaryServiceClient:
        deadline = time.monotonic() + self._timeout
        with self._cond:
            while True:
                if self._closed:
                    raise ConnectionError("replica pool is closed")
                if self._free:
                    return self._free.pop()
                if self._open < self._max:
                    self._open += 1
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"no free connection to {self.instance.label} "
                        f"within {self._timeout:.1f}s "
                        f"(cap {self._max})"
                    )
                self._cond.wait(remaining)
        host, port = self.instance.address
        try:
            return SummaryServiceClient(host, port, timeout=self._timeout)
        except BaseException:
            self._forget()
            raise

    def _forget(self) -> None:
        """Account for a connection leaving existence."""
        with self._cond:
            self._open -= 1
            self._cond.notify()

    def _discard(self, client: SummaryServiceClient) -> None:
        self._forget()
        client.close()

    def _release(self, client: SummaryServiceClient) -> None:
        with self._cond:
            if not self._closed and client.usable:
                self._free.append(client)
                self._cond.notify()
                return
        self._discard(client)

    def request(self, op: str, **params):
        """One request on a pooled connection.

        Raises :class:`ServiceError` for a structured ``ok: false``
        answer (the replica is alive — not a failover signal) and
        transport errors (:data:`_FAILOVER_ERRORS`) when the replica
        is unreachable or desynchronized.
        """
        client = self._acquire()
        try:
            result = client.request(op, **params)
        except ServiceError:
            self._release(client)  # the connection itself is fine
            raise
        except BaseException:
            self._discard(client)
            raise
        self._release(client)
        return result

    def try_stats(self) -> dict | None:
        """Best-effort ``stats`` probe; breaker-neutral so
        observability never fights the failover state machine."""
        try:
            snap = self.request("stats")
            return snap if isinstance(snap, dict) else None
        except (ServiceError, *_FAILOVER_ERRORS):
            return None

    def try_repl_status(self) -> dict | None:
        """Best-effort ``repl_status`` probe (``None`` for dead or
        read-only instances); breaker-neutral, like :meth:`try_stats`,
        and deliberately *not* gated on the breaker — promotion must
        be able to probe an ejected replica."""
        try:
            snap = self.request("repl_status")
            return snap if isinstance(snap, dict) else None
        except (ServiceError, *_FAILOVER_ERRORS):
            return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            free, self._free = self._free, []
            self._open -= len(free)
            self._cond.notify_all()
        for client in free:
            client.close()


class ShardPool:
    """The replicas of one shard, swept round-robin with failover.

    Reads sweep every replica (each serves the same artifact).
    Writes (:meth:`ingest_request`) are **primary-routed**: the pool
    tracks which replica is the shard's primary and at what term, and
    on a dead or demoted primary runs the promotion protocol —
    probe live replicas' ``repl_status``, adopt an existing primary at
    a higher term, or promote the most-caught-up follower with a
    strictly higher term (the engines fence stale terms server-side,
    so two racing routers cannot split the shard's write stream).
    """

    def __init__(
        self,
        shard: int,
        replicas: list[ReplicaPool],
        *,
        retry_policy: RetryPolicy,
        metrics: ServiceMetrics,
        seed: int = 0,
        acks: str = "quorum",
    ):
        if not replicas:
            raise TopologyError(f"shard {shard} has no replicas")
        self.shard = shard
        self.replicas = replicas
        self._retry_policy = retry_policy
        self._metrics = metrics
        self._rng = random.Random(seed * 1000003 + shard)
        self._lock = threading.Lock()
        self._next = 0
        #: Index of the replica currently believed to be the shard's
        #: primary, and the replication term it was last seen or
        #: promoted at.  Replica 0 starts as primary by convention
        #: (matching :func:`repro.cluster.manager.cluster_commands`).
        self.primary = 0
        self.term = 0
        self._acks = acks
        self._promote_lock = threading.Lock()

    def _rotation(self) -> list[ReplicaPool]:
        with self._lock:
            start = self._next
            self._next = (self._next + 1) % len(self.replicas)
        return [
            self.replicas[(start + k) % len(self.replicas)]
            for k in range(len(self.replicas))
        ]

    def _record_failure(self, pool: ReplicaPool, exc: Exception) -> None:
        opened_before = pool.breaker.times_opened
        pool.breaker.record_failure()
        registry = self._metrics.registry
        registry.counter(
            "router_failover_total", shard=str(self.shard)
        ).inc()
        if pool.breaker.times_opened > opened_before:
            registry.counter(
                "router_ejections_total", instance=pool.instance.label
            ).inc()
            logger.warning(
                "ejected replica %s after repeated failures (%s: %s)",
                pool.instance.label, type(exc).__name__, exc,
            )

    def _sweep(self, op: str, params: dict):
        """One pass over the rotation; transport failures fail over to
        the next sibling."""
        last: Exception | None = None
        for pool in self._rotation():
            if not pool.breaker.allow():
                continue
            try:
                result = pool.request(op, **params)
            except ServiceError:
                # The replica answered; its verdict stands for the
                # whole shard (every replica serves the same artifact).
                pool.breaker.record_success()
                raise
            except _FAILOVER_ERRORS as exc:
                self._record_failure(pool, exc)
                last = exc
                continue
            pool.breaker.record_success()
            return result
        raise _SweepFailed(
            f"shard {self.shard}: no healthy replica"
            + (f" (last error: {last})" if last else "")
        )

    def request(self, op: str, **params):
        """Forward one request to a healthy replica, retrying sweeps
        under the retry policy; raises :class:`ShardDownError` once
        the policy is exhausted."""
        try:
            return call_with_retry(
                lambda: self._sweep(op, params),
                policy=self._retry_policy,
                retry_on=(_SweepFailed,),
                rng=self._rng,
                label=f"router_shard_{self.shard}",
            )
        except (RetriesExhausted, DeadlineExceeded) as exc:
            self._metrics.registry.counter(
                "router_shard_down_total", shard=str(self.shard)
            ).inc()
            raise ShardDownError(self.shard, len(self.replicas)) from exc

    # -- primary-routed writes -------------------------------------------
    def ingest_request(self, **params):
        """Forward one ingest sub-batch to the shard's primary,
        promoting a new one when the current primary is dead or
        demoted.  Single-replica shards take the plain sweep path —
        the lone replica *is* the primary."""
        if len(self.replicas) == 1:
            return self.request("ingest", **params)
        try:
            return call_with_retry(
                lambda: self._ingest_attempt(params),
                policy=self._retry_policy,
                retry_on=(_SweepFailed,),
                rng=self._rng,
                label=f"router_ingest_{self.shard}",
            )
        except (RetriesExhausted, DeadlineExceeded) as exc:
            self._metrics.registry.counter(
                "router_shard_down_total", shard=str(self.shard)
            ).inc()
            raise ShardDownError(self.shard, len(self.replicas)) from exc

    def _ingest_attempt(self, params: dict):
        """One pass: try the tracked primary; on a transport failure
        or a ``not_primary``/``fenced`` verdict, re-elect and retry
        against the new primary.  Bounded so a shard with no
        promotable replica degrades to :class:`_SweepFailed` (and,
        once the retry policy is exhausted, ``unavailable``)."""
        for _ in range(len(self.replicas) + 1):
            pool = self.replicas[self.primary]
            if not pool.breaker.allow():
                if not self.ensure_primary():
                    break
                continue
            try:
                result = pool.request("ingest", **params)
            except ServiceError as exc:
                # The replica answered — the connection is healthy.
                pool.breaker.record_success()
                if exc.type in ("not_primary", "fenced"):
                    # Our notion of the primary is stale (it stepped
                    # down, or a sibling holds a higher term).
                    if not self.ensure_primary():
                        break
                    continue
                raise
            except _FAILOVER_ERRORS as exc:
                self._record_failure(pool, exc)
                if not self.ensure_primary():
                    break
                continue
            pool.breaker.record_success()
            return result
        raise _SweepFailed(
            f"shard {self.shard}: no reachable primary and no "
            "promotable replica"
        )

    def ensure_primary(self) -> bool:
        """Re-elect the shard's primary; returns whether one is known.

        Probes every replica's ``repl_status`` (breaker-neutral — a
        just-ejected survivor must still be electable).  A live
        replica already claiming ``primary`` at the highest term is
        adopted as-is (another router — or the instance's own static
        wiring — won the race).  Otherwise the most-caught-up live
        replica, by ``(term, last_lsn)``, is promoted with a strictly
        higher term; the engines' fencing makes the losing side of
        any promotion race step down.
        """
        with self._promote_lock:
            statuses = [
                (index, status)
                for index, pool in enumerate(self.replicas)
                if (status := pool.try_repl_status()) is not None
            ]
            if not statuses:
                return False
            live_primary = None
            for index, status in statuses:
                if status.get("role") == "primary":
                    term = int(status.get("term", 0))
                    if live_primary is None or term > live_primary[1]:
                        live_primary = (index, term)
            if live_primary is not None and live_primary[1] >= self.term:
                self.primary, self.term = live_primary
                self._gauge_term()
                return True

            def caught_up(item):
                _, status = item
                return (
                    int(status.get("term", 0)),
                    int(status.get("last_lsn", 0) or 0),
                    int(status.get("applied_lsn", 0) or 0),
                )

            candidate, status = max(statuses, key=caught_up)
            new_term = (
                max(int(s.get("term", 0)) for _, s in statuses) + 1
            )
            followers = [
                [pool.instance.host, pool.instance.port]
                for index, pool in enumerate(self.replicas)
                if index != candidate
            ]
            try:
                self.replicas[candidate].request(
                    "replicate",
                    term=new_term,
                    promote=True,
                    followers=followers,
                    acks=self._acks,
                )
            except (ServiceError, *_FAILOVER_ERRORS) as exc:
                logger.warning(
                    "shard %d: promotion of %s to term %d failed "
                    "(%s: %s)",
                    self.shard,
                    self.replicas[candidate].instance.label,
                    new_term, type(exc).__name__, exc,
                )
                return False
            self.primary, self.term = candidate, new_term
            self._gauge_term()
            self._metrics.registry.counter(
                "repro_replication_promotions_total",
                shard=str(self.shard),
            ).inc()
            logger.warning(
                "shard %d: promoted %s to primary at term %d",
                self.shard,
                self.replicas[candidate].instance.label,
                new_term,
            )
            return True

    def _gauge_term(self) -> None:
        self._metrics.registry.gauge(
            "repro_replication_term", shard=str(self.shard)
        ).set(self.term)

    def close(self) -> None:
        for pool in self.replicas:
            pool.close()


class RouterEngine:
    """Route protocol requests across a sharded cluster.

    Duck-types :class:`~repro.service.engine.QueryEngine` for
    :class:`~repro.service.server.SummaryQueryServer`: ``metrics``,
    ``query(request, deadline)``, ``query_many(requests, deadline)``.

    Parameters
    ----------
    spec:
        A *planned* topology (``n`` recorded); the router never loads
        a summary itself — it only needs addresses and the hash map.
    cache_size:
        Router-side LRU over fetched neighbor lists (0 disables); the
        cross-shard analogue of the engine's expansion cache, it
        serves repeated ``neighbors``/``degree``/``khop`` traffic
        without a backend round trip.
    retry_policy:
        Governs failover sweeps per shard (default: 2 attempts with a
        short backoff between full-rotation sweeps).
    connect_timeout:
        Per-socket-operation timeout for backend connections.
    max_connections_per_replica:
        Cap on pooled connections per instance.  Must not exceed the
        instance server's ``workers`` count (see
        :class:`ReplicaPool`); requests beyond the cap wait for a
        free connection instead of opening one that would never be
        served.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        *,
        metrics: ServiceMetrics | None = None,
        cache_size: int = 4096,
        retry_policy: RetryPolicy | None = None,
        connect_timeout: float = 10.0,
        max_connections_per_replica: int = 4,
    ):
        if spec.n is None:
            raise TopologyError(
                "topology lacks 'n' (template spec?); plan the cluster "
                "before routing"
            )
        self.spec = spec
        self.n = spec.n
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._cache = LRUCache(cache_size)
        #: Serializes two-phase ingest fan-outs *per shard*: no
        #: sibling batch may commit between another batch's prepare
        #: and commit rounds on a shard they both touch, or the
        #: prepare's validation verdict could go stale — but batches
        #: over disjoint shard sets proceed concurrently.  A batch
        #: takes the locks of every shard it touches in ascending
        #: shard order, so two batches sharing shards always contend
        #: in the same order and cannot deadlock.
        self._ingest_locks = tuple(
            threading.Lock() for _ in range(spec.shards)
        )
        policy = retry_policy if retry_policy is not None else RetryPolicy(
            max_attempts=2, base_delay=0.05, max_delay=0.5
        )
        self._shards = [
            ShardPool(
                shard,
                [
                    ReplicaPool(
                        instance,
                        breaker_threshold=spec.breaker_threshold,
                        breaker_reset_s=spec.breaker_reset_s,
                        connect_timeout=connect_timeout,
                        max_connections=max_connections_per_replica,
                    )
                    for instance in spec.instances_for(shard)
                ],
                retry_policy=policy,
                metrics=self.metrics,
                seed=spec.seed,
                acks=getattr(spec, "acks", "quorum"),
            )
            for shard in range(spec.shards)
        ]

    # -- lifecycle -------------------------------------------------------
    def describe(self) -> str:
        """What the server logs on start (no representation to show)."""
        return (
            f"cluster router (n={self.n}, {self.spec.shards} shard(s) x "
            f"{self.spec.replicas} replica(s))"
        )

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    # -- request-dict interface (what the server speaks) -----------------
    def query(self, request: dict, deadline: float | None = None) -> dict:
        """Answer one protocol request dict; mirror of
        :meth:`QueryEngine.query` including its error messages, so
        router answers are indistinguishable from a single server's."""
        if not isinstance(request, dict):
            raise QueryError("bad_request", "request must be a JSON object")
        op = request.get("op")
        if op not in ROUTER_OPS:
            # The listing deliberately prints OPS, not ROUTER_OPS:
            # ingest support is engine-conditional (the shards must
            # run mutable engines) and the message must stay
            # byte-identical to a single read-only server's, per the
            # mirror contract above.
            raise QueryError(
                "bad_request",
                f"unknown op {op!r}; supported: {', '.join(OPS)}",
            )
        degraded_sink: list = []
        _check_deadline(deadline)
        started = time.perf_counter()
        try:
            result = self._dispatch(op, request, deadline, degraded_sink)
        except ServiceError as exc:
            # A shard's structured rejection (its timeout, its
            # overloaded breaker, ...) passes through verbatim.
            self.metrics.observe(op, time.perf_counter() - started, ok=False)
            raise QueryError(exc.type, exc.message) from exc
        except QueryError:
            self.metrics.observe(op, time.perf_counter() - started, ok=False)
            raise
        self.metrics.observe(op, time.perf_counter() - started)
        response = {
            "id": request.get("id"),
            "ok": True,
            "op": op,
            "result": result,
        }
        if degraded_sink:
            response["degraded"] = True
            self.metrics.degraded(op)
        return response

    def query_many(
        self, requests: list[dict], deadline: float | None = None
    ) -> list[dict]:
        """Answer a batch by splitting it across owning shards.

        Sub-batches fan out concurrently and may complete in any
        order; every response lands back at its request's original
        index with the client's ``id`` untouched, so the returned
        list is ordered exactly like the input — the same contract as
        :meth:`QueryEngine.query_many`.
        """
        responses: list[dict | None] = [None] * len(requests)
        by_shard: dict[int, list[int]] = {}
        local: list[int] = []
        unique_nodes: set[int] = set()
        for index, request in enumerate(requests):
            shard = self._classify(request)
            if shard is None:
                local.append(index)
            else:
                by_shard.setdefault(shard, []).append(index)
                unique_nodes.add(request["node"])
        self.metrics.batch(len(requests), len(unique_nodes))

        # Fan-out spans run on worker threads; the parent must be the
        # *dispatching* thread's open span (thread-local stacks).
        parent_span = get_tracer().current()

        def forward(shard: int, indices: list[int]) -> None:
            for start in range(0, len(indices), MAX_BATCH_REQUESTS):
                chunk = indices[start:start + MAX_BATCH_REQUESTS]
                try:
                    _check_deadline(deadline)
                    answers = self._shard_request(
                        self._shards[shard],
                        "batch",
                        parent=parent_span,
                        requests=[requests[i] for i in chunk],
                    )
                    if not isinstance(answers, list) or len(answers) != len(
                        chunk
                    ):
                        raise QueryError(
                            "internal",
                            f"shard {shard} answered a {len(chunk)}-request "
                            "sub-batch with a mismatched response list",
                        )
                except QueryError as exc:
                    for i in chunk:
                        responses[i] = error_response(requests[i], exc)
                    continue
                except ServiceError as exc:
                    failure = QueryError(exc.type, exc.message)
                    for i in chunk:
                        responses[i] = error_response(requests[i], failure)
                    continue
                for i, answer in zip(chunk, answers):
                    responses[i] = answer

        self._parallel(
            [
                (lambda s=shard, ix=indices: forward(s, ix))
                for shard, indices in by_shard.items()
            ]
        )
        for index in local:
            request = requests[index]
            try:
                responses[index] = self.query(request, deadline)
            except QueryError as exc:
                responses[index] = error_response(request, exc)
        return responses  # type: ignore[return-value]

    # -- dispatch --------------------------------------------------------
    def _classify(self, request) -> int | None:
        """Owning shard for direct fan-out, ``None`` for local
        handling (khop/stats/ping, malformed items, range errors —
        the local path reproduces the engine's inline errors)."""
        if not isinstance(request, dict):
            return None
        op = request.get("op")
        if op not in _SINGLE_SHARD_OPS:
            return None
        node = request.get("node")
        if not isinstance(node, int) or isinstance(node, bool):
            return None
        if not 0 <= node < self.n:
            return None
        return self.spec.owner(node)

    def _dispatch(
        self,
        op: str,
        request: dict,
        deadline: float | None,
        degraded_sink: list,
    ):
        if op == "ping":
            return "pong"
        if op == "stats":
            if request.get("format") == "prometheus":
                return self.metrics.to_prometheus()
            return self._stats_snapshot()
        if op == "telemetry":
            return {
                "instance": get_instance_label() or "router",
                "pid": os.getpid(),
                "registry": self.metrics.registry.snapshot(
                    samples=TELEMETRY_SAMPLES
                ),
            }
        if op == "ingest":
            return self._ingest(request)
        node = request.get("node")
        if not isinstance(node, int) or isinstance(node, bool):
            raise QueryError(
                "bad_request", f"op {op!r} needs an integer 'node' field"
            )
        self._check_node(node)
        if op == "neighbors":
            return list(self._neighbors(node))
        if op == "degree":
            return len(self._neighbors(node))
        if op == "khop":
            k = request.get("k", 1)
            if not isinstance(k, int) or isinstance(k, bool):
                raise QueryError("bad_request", "'k' must be an integer")
            distances = self._khop(node, k, deadline, degraded_sink)
            return {str(v): d for v, d in sorted(distances.items())}
        if op == "pagerank":
            result = self._shard_request(
                self.owner_pool(node), "pagerank", node=node
            )
            return self._coerce_service_error(result, float, "pagerank")
        raise QueryError("bad_request", f"unhandled op {op!r}")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise QueryError(
                "bad_request",
                f"node {node} out of range [0, {self.n})",
            )

    def owner_pool(self, node: int) -> ShardPool:
        return self._shards[self.spec.owner(node)]

    def _shard_request(
        self, shard_pool: ShardPool, op: str, parent=None, **params
    ):
        """One outbound shard call, wrapped in a ``router:fanout``
        span carrying this router's trace context to the shard.

        ``parent`` must be captured *in the dispatching thread* (the
        tracer's span stack is thread-local) when the call runs on a
        fan-out worker thread; single-shard paths leave it ``None``
        and pick up the calling thread's current span.  When tracing
        is off this is a plain forward — no span, no ``trace`` field.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return shard_pool.request(op, **params)
        with tracer.span(
            "router:fanout", parent=parent, op=op, shard=shard_pool.shard
        ) as span:
            return shard_pool.request(
                op,
                trace={"id": span.trace_id, "span": span.span_id},
                **params,
            )

    def _shard_ingest(self, shard_pool: ShardPool, parent=None, **params):
        """Like :meth:`_shard_request`, but primary-routed through
        :meth:`ShardPool.ingest_request` (writes must land on the
        shard's replication primary, not whichever replica the read
        sweep would pick)."""
        tracer = get_tracer()
        if not tracer.enabled:
            return shard_pool.ingest_request(**params)
        with tracer.span(
            "router:fanout", parent=parent, op="ingest",
            shard=shard_pool.shard,
        ) as span:
            return shard_pool.ingest_request(
                trace={"id": span.trace_id, "span": span.span_id},
                **params,
            )

    @staticmethod
    def _coerce_service_error(value, kind, op: str):
        if not isinstance(value, kind):
            raise QueryError(
                "internal",
                f"shard answered {op!r} with {type(value).__name__}, "
                f"expected {kind.__name__}",
            )
        return value

    # -- ingest ----------------------------------------------------------
    def _ingest(self, request: dict) -> dict:
        """Route one mutation batch to the shards owning its edges.

        Every mutation goes to the owner of *each* endpoint (possibly
        two shards) so shard artifacts keep their 1-hop-closure
        invariant and ``neighbors`` answers stay exact.  The fan-out is
        **two-phase**: a prepare round sends every sub-batch with
        ``dry_run`` so each involved shard validates it against its own
        state, and only when all shards accept does the commit round
        apply — a batch that any shard would reject (say, an insert of
        an edge that already exists) is refused *before* anything is
        applied anywhere, so a semantically invalid batch can never
        leave a shared edge present on one endpoint-owner but absent on
        the other.  All sub-calls carry the client's ``stream``/``seq``,
        making the commit round idempotent per shard: a retry after a
        partial transport failure re-sends everywhere, already-applied
        shards dedup, and the batch converges to applied-exactly-once.

        Replicated shards take the same path, but every sub-call is
        **primary-routed** (:meth:`ShardPool.ingest_request`): the
        primary WAL-ships the sub-batch to its followers before — in
        ``acks=quorum`` mode — acknowledging, and a mid-batch primary
        death triggers promotion and a dedup-safe resend.
        """
        stream = request.get("stream")
        seq = request.get("seq")
        mutations = request.get("mutations")
        client_dry_run = request.get("dry_run", False)
        if not isinstance(client_dry_run, bool):
            raise QueryError("bad_request", "'dry_run' must be a boolean")
        if not isinstance(stream, str) or not isinstance(seq, int) or (
            isinstance(seq, bool)
        ):
            raise QueryError(
                "bad_request",
                "ingest needs a string 'stream' and integer 'seq'",
            )
        if not isinstance(mutations, list) or not mutations:
            raise QueryError(
                "bad_request", "'mutations' must be a non-empty list"
            )
        per_shard: dict[int, list] = {}
        for index, item in enumerate(mutations):
            if not (isinstance(item, (list, tuple)) and len(item) == 3):
                raise QueryError(
                    "bad_request",
                    f"mutation #{index} must be [\"+\"|\"-\", u, v]",
                )
            sign, u, v = item
            for node in (u, v):
                if not isinstance(node, int) or isinstance(node, bool):
                    raise QueryError(
                        "bad_request",
                        f"mutation #{index} endpoints must be integers",
                    )
                self._check_node(node)
            for shard in {self.spec.owner(u), self.spec.owner(v)}:
                per_shard.setdefault(shard, []).append([sign, u, v])

        parent_span = get_tracer().current()
        shard_results: dict[str, dict] = {}

        def forward(shard: int, subset: list, dry_run: bool) -> None:
            params = {"stream": stream, "seq": seq, "mutations": subset}
            if dry_run:
                params["dry_run"] = True
            result = self._shard_ingest(
                self._shards[shard],
                parent=parent_span,
                **params,
            )
            if not dry_run:
                shard_results[str(shard)] = self._coerce_service_error(
                    result, dict, "ingest"
                )

        def fan_out(dry_run: bool) -> None:
            self._parallel(
                [
                    (lambda s=shard, ms=subset: forward(s, ms, dry_run))
                    for shard, subset in per_shard.items()
                ]
            )

        with contextlib.ExitStack() as stack:
            # Ordered per-shard locking: batches over disjoint shard
            # sets overlap freely; batches sharing a shard serialize.
            for shard in sorted(per_shard):
                stack.enter_context(self._ingest_locks[shard])
            # Prepare: every involved shard validates its sub-batch
            # (already-applied shards answer from their dedup cache).
            # A rejection here aborts the whole batch with nothing
            # applied on any shard.
            fan_out(dry_run=True)
            if client_dry_run:
                # The client asked for validation only — the prepare
                # round *is* the answer; nothing commits anywhere.
                return {"validated": len(mutations)}
            # Commit: _parallel re-raises the first failure only after
            # every shard was attempted, so by the time an error
            # surfaces any shard may have applied — the dirty-node
            # cache entries are dropped even on that path, and a retry
            # (same stream/seq) converges via per-shard dedup.
            try:
                fan_out(dry_run=False)
            finally:
                for __, u, v in mutations:
                    self._cache.invalidate(u)
                    self._cache.invalidate(v)
        self.metrics.registry.counter(
            "repro_ingest_applied_total"
        ).inc(len(mutations))
        return {
            "applied": len(mutations),
            "shards": shard_results,
        }

    # -- neighbors + khop ------------------------------------------------
    def _neighbors(self, node: int) -> tuple[int, ...]:
        """Sorted neighbor tuple of ``node`` via the owning shard,
        cached router-side."""
        cached = self._cache.get(node)
        if cached is not None:
            self.metrics.cache_hit()
            return cached
        self.metrics.cache_miss()
        raw = self._shard_request(
            self.owner_pool(node), "neighbors", node=node
        )
        result = tuple(self._coerce_service_error(raw, list, "neighbors"))
        self._cache.put(node, result)
        return result

    def _fetch_level(
        self, frontier: list[int], degraded_sink: list
    ) -> dict[int, tuple[int, ...]]:
        """Neighbor lists for one BFS level, batched per owning shard.

        A shard that is fully down contributes empty expansions and
        marks the answer degraded instead of failing the whole BFS.
        """
        fetched: dict[int, tuple[int, ...]] = {}
        need: dict[int, list[int]] = {}
        for u in frontier:
            cached = self._cache.get(u)
            if cached is not None:
                self.metrics.cache_hit()
                fetched[u] = cached
            else:
                self.metrics.cache_miss()
                need.setdefault(self.spec.owner(u), []).append(u)

        parent_span = get_tracer().current()

        def fetch(shard: int, nodes: list[int]) -> None:
            for start in range(0, len(nodes), MAX_BATCH_REQUESTS):
                chunk = nodes[start:start + MAX_BATCH_REQUESTS]
                try:
                    answers = self._shard_request(
                        self._shards[shard],
                        "batch",
                        parent=parent_span,
                        requests=[
                            {"id": i, "op": "neighbors", "node": u}
                            for i, u in enumerate(chunk)
                        ],
                    )
                except ShardDownError:
                    if "khop" not in degraded_sink:
                        degraded_sink.append("khop")
                    for u in chunk:
                        fetched[u] = ()
                    continue
                if not isinstance(answers, list) or len(answers) != len(
                    chunk
                ):
                    raise QueryError(
                        "internal",
                        f"shard {shard} answered a neighbors sub-batch "
                        "with a mismatched response list",
                    )
                for u, answer in zip(chunk, answers):
                    if not (
                        isinstance(answer, dict) and answer.get("ok")
                    ):
                        raise QueryError(
                            "internal",
                            f"shard {shard} rejected an in-range "
                            f"neighbors sub-request for node {u}",
                        )
                    result = tuple(answer["result"])
                    fetched[u] = result
                    self._cache.put(u, result)

        self._parallel(
            [
                (lambda s=shard, ns=nodes: fetch(s, ns))
                for shard, nodes in need.items()
            ]
        )
        return fetched

    def _khop(
        self,
        node: int,
        k: int,
        deadline: float | None,
        degraded_sink: list,
    ) -> dict[int, int]:
        """Level-synchronous BFS with per-level shard fan-out.

        Distances depend only on the set of edges seen per level, so
        the result is bit-identical to the single-server BFS.
        """
        if k < 0:
            raise QueryError("bad_request", f"k must be >= 0, got {k}")
        distances = {node: 0}
        frontier = [node]
        for depth in range(1, k + 1):
            _check_deadline(deadline)
            expansions = self._fetch_level(frontier, degraded_sink)
            next_frontier: list[int] = []
            for u in frontier:
                for v in expansions[u]:
                    if v not in distances:
                        distances[v] = depth
                        next_frontier.append(v)
            if not next_frontier:
                break
            frontier = next_frontier
        return distances

    # -- stats -----------------------------------------------------------
    def _stats_snapshot(self) -> dict:
        snapshot = self.metrics.snapshot()
        snapshot["cache"]["size"] = len(self._cache)
        snapshot["cache"]["capacity"] = self._cache.capacity
        snapshot["registry"] = self.metrics.registry.snapshot()

        shards = []
        up = 0
        agg_requests = 0
        agg_errors = 0
        maint = {
            "passes": 0,
            "abandoned": 0,
            "supernodes_processed": 0,
            "cost_reclaimed": 0,
            "dirty_supernodes": 0,
            "dirty_corrections": 0,
        }
        maint_reported = 0
        replicated = self.spec.replicas > 1
        for shard_pool in self._shards:
            instances = []
            for pool in shard_pool.replicas:
                stats = pool.try_stats()
                healthy = stats is not None
                up += int(healthy)
                requests = errors = p99 = None
                repl = pool.try_repl_status() if replicated else None
                if healthy:
                    requests = stats.get("requests_total", 0)
                    errors = stats.get("errors_total", 0)
                    p99 = worst_p99_ms(stats.get("latency_ms"))
                    agg_requests += requests
                    agg_errors += errors
                    instance_maint = stats.get("maintenance")
                    if isinstance(instance_maint, dict):
                        maint_reported += 1
                        for key in maint:
                            maint[key] += int(
                                instance_maint.get(key, 0) or 0
                            )
                entry = {
                    "instance": pool.instance.label,
                    "host": pool.instance.host,
                    "port": pool.instance.port,
                    "healthy": healthy,
                    "breaker": pool.breaker.state,
                    # Per-instance traffic summary inline so
                    # `repro cluster status` is useful without
                    # the telemetry collector.
                    "requests": requests,
                    "errors": errors,
                    "p99_ms": p99,
                    "stats": stats,
                }
                if replicated:
                    entry["replication"] = (
                        {
                            "role": repl.get("role"),
                            "term": repl.get("term"),
                            "applied_lsn": repl.get("applied_lsn"),
                            "last_lsn": repl.get("last_lsn"),
                            "followers": repl.get("followers"),
                        }
                        if repl is not None
                        else None
                    )
                instances.append(entry)
            shard_entry = {
                "shard": shard_pool.shard, "instances": instances,
            }
            if replicated:
                # The router's own view of the shard's write path.
                shard_entry["primary"] = shard_pool.replicas[
                    shard_pool.primary
                ].instance.label
                shard_entry["term"] = shard_pool.term
            shards.append(shard_entry)
        total = len(self.spec.instances)
        snapshot["cluster"] = {
            "shards": shards,
            "aggregate": {
                "instances_total": total,
                "instances_up": up,
                "shard_requests_total": agg_requests,
                "shard_errors_total": agg_errors,
                # Summed over every instance that reports a
                # ``maintenance`` section (durable-ingest servers).
                "maintenance": dict(
                    maint, instances_reporting=maint_reported
                ),
            },
        }
        return snapshot

    # -- plumbing --------------------------------------------------------
    @staticmethod
    def _parallel(tasks: list) -> None:
        """Run thunks concurrently (inline when there is just one);
        the first raised :class:`QueryError` propagates."""
        if not tasks:
            return
        if len(tasks) == 1:
            tasks[0]()
            return
        errors: list[BaseException] = []

        def run(task) -> None:
            try:
                task()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(task,), daemon=True)
            for task in tasks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]


def _check_deadline(deadline: float | None) -> None:
    if deadline is not None and time.monotonic() >= deadline:
        raise QueryTimeout()
