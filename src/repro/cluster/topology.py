"""Cluster topology: the JSON spec every cluster process agrees on.

A topology is a small, committed-to-disk description of a sharded
serving deployment — the docker-compose/k8s analogue for this repo's
subprocess world:

```json
{
  "version": 1,
  "shards": 2,
  "replicas": 2,
  "seed": 0,
  "n": 1200,
  "router": {"host": "127.0.0.1", "port": 7400},
  "instances": [
    {"shard": 0, "replica": 0, "host": "127.0.0.1", "port": 7401},
    {"shard": 0, "replica": 1, "host": "127.0.0.1", "port": 7402},
    {"shard": 1, "replica": 0, "host": "127.0.0.1", "port": 7403},
    {"shard": 1, "replica": 1, "host": "127.0.0.1", "port": 7404}
  ],
  "artifacts": {"0": "shard-0.summary.txt.gz", "1": "shard-1.summary.txt.gz"},
  "failover": {"breaker_threshold": 2, "breaker_reset_s": 5.0}
}
```

The node -> shard map is *not* stored: it is the seeded keyed hash
:func:`repro.distributed.partitioning.shard_for_node` applied to
``(shards, seed)``, so the router (and any smart client) can place
ids it has never seen, in any process, without a lookup table.

``artifacts`` paths are relative to the topology file's directory
(absolute paths are kept as-is), so a planned cluster directory can
be moved or shipped as a unit.  ``n`` is recorded at plan time so the
router can reject out-of-range nodes without a network hop; a spec
without artifacts/``n`` (a *template*, e.g. the committed
``examples/cluster_topology.json``) is valid input for
``repro cluster plan``, which fills them in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.distributed.partitioning import shard_for_node

__all__ = [
    "TopologyError",
    "InstanceSpec",
    "ClusterSpec",
    "default_spec",
    "load_topology",
    "save_topology",
]

#: The (single) topology format version this module reads and writes.
TOPOLOGY_VERSION = 1

#: Failover defaults: consecutive transport failures before a replica
#: is ejected, and seconds before the ejected replica gets a probe.
DEFAULT_BREAKER_THRESHOLD = 2
DEFAULT_BREAKER_RESET_S = 5.0


class TopologyError(ValueError):
    """A structurally invalid cluster spec."""


@dataclass(frozen=True)
class InstanceSpec:
    """One shard-serving process: ``(shard, replica)`` at ``host:port``."""

    shard: int
    replica: int
    host: str
    port: int

    @property
    def label(self) -> str:
        """Stable human/metrics label, e.g. ``shard0/r1``."""
        return f"shard{self.shard}/r{self.replica}"

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


@dataclass
class ClusterSpec:
    """A validated cluster topology.

    ``artifacts`` maps shard id to the summary artifact path (relative
    paths are resolved against :attr:`base_dir` by
    :meth:`artifact_path`); it may be empty for a template spec.
    """

    shards: int
    replicas: int
    seed: int
    router_host: str
    router_port: int
    instances: list[InstanceSpec]
    artifacts: dict[int, str] = field(default_factory=dict)
    n: int | None = None
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    breaker_reset_s: float = DEFAULT_BREAKER_RESET_S
    #: Replication acknowledgement mode for mutable replicated shards
    #: (``replicas > 1`` with durable ingest): ``"quorum"`` — a write
    #: is acked only once a majority of the replica set holds it;
    #: ``"leader"`` — the primary's WAL alone acks (faster, loses the
    #: tail if the primary dies before shipping).  Ignored by
    #: read-only and single-replica deployments.
    acks: str = "quorum"
    base_dir: Path | None = None

    def __post_init__(self):
        if self.shards < 1:
            raise TopologyError(f"shards must be >= 1, got {self.shards}")
        if self.replicas < 1:
            raise TopologyError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.acks not in ("leader", "quorum"):
            raise TopologyError(
                f"acks must be 'leader' or 'quorum', got {self.acks!r}"
            )
        if self.breaker_threshold < 1:
            raise TopologyError("breaker_threshold must be >= 1")
        if self.breaker_reset_s < 0:
            raise TopologyError("breaker_reset_s must be >= 0")
        if self.n is not None and self.n < 0:
            raise TopologyError(f"n must be >= 0, got {self.n}")
        want = {
            (s, r)
            for s in range(self.shards)
            for r in range(self.replicas)
        }
        got = {(i.shard, i.replica) for i in self.instances}
        if len(got) != len(self.instances):
            raise TopologyError("duplicate (shard, replica) instance")
        if got != want:
            missing = sorted(want - got)
            extra = sorted(got - want)
            raise TopologyError(
                f"instances must cover every (shard, replica) pair "
                f"exactly once; missing={missing}, unexpected={extra}"
            )
        addresses = [i.address for i in self.instances] + [
            (self.router_host, self.router_port)
        ]
        if len(set(addresses)) != len(addresses):
            raise TopologyError(
                "instance/router host:port addresses must be distinct"
            )
        for shard in self.artifacts:
            if not 0 <= shard < self.shards:
                raise TopologyError(
                    f"artifact for unknown shard {shard} "
                    f"(topology has {self.shards})"
                )

    # -- the consistent-hash map ----------------------------------------
    def owner(self, node: int) -> int:
        """The shard that owns ``node`` (seeded keyed hash)."""
        return shard_for_node(node, self.shards, self.seed)

    def instances_for(self, shard: int) -> list[InstanceSpec]:
        """Replicas of ``shard``, in replica order."""
        return sorted(
            (i for i in self.instances if i.shard == shard),
            key=lambda i: i.replica,
        )

    def artifact_path(self, shard: int) -> Path:
        """Absolute artifact path for ``shard``."""
        try:
            raw = self.artifacts[shard]
        except KeyError:
            raise TopologyError(
                f"topology has no artifact for shard {shard}; "
                "run 'repro cluster plan' first"
            ) from None
        path = Path(raw)
        if not path.is_absolute() and self.base_dir is not None:
            path = self.base_dir / path
        return path

    @property
    def router_address(self) -> tuple[str, int]:
        return (self.router_host, self.router_port)

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": TOPOLOGY_VERSION,
            "shards": self.shards,
            "replicas": self.replicas,
            "seed": self.seed,
            "n": self.n,
            "router": {"host": self.router_host, "port": self.router_port},
            "instances": [
                {
                    "shard": i.shard,
                    "replica": i.replica,
                    "host": i.host,
                    "port": i.port,
                }
                for i in sorted(
                    self.instances, key=lambda i: (i.shard, i.replica)
                )
            ],
            "artifacts": {
                str(shard): path
                for shard, path in sorted(self.artifacts.items())
            },
            "failover": {
                "breaker_threshold": self.breaker_threshold,
                "breaker_reset_s": self.breaker_reset_s,
            },
            "acks": self.acks,
        }


def _require(data: dict, key: str, kind, where: str):
    value = data.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise TopologyError(
            f"{where}: field {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def spec_from_dict(data: dict, base_dir: Path | None = None) -> ClusterSpec:
    """Build a validated :class:`ClusterSpec` from parsed JSON."""
    if not isinstance(data, dict):
        raise TopologyError("topology must be a JSON object")
    version = data.get("version", TOPOLOGY_VERSION)
    if version != TOPOLOGY_VERSION:
        raise TopologyError(
            f"topology version {version!r} is not supported "
            f"(this build reads v{TOPOLOGY_VERSION})"
        )
    router = _require(data, "router", dict, "topology")
    raw_instances = _require(data, "instances", list, "topology")
    instances = []
    for index, entry in enumerate(raw_instances):
        if not isinstance(entry, dict):
            raise TopologyError(f"instance #{index} is not a JSON object")
        where = f"instance #{index}"
        instances.append(
            InstanceSpec(
                shard=_require(entry, "shard", int, where),
                replica=_require(entry, "replica", int, where),
                host=_require(entry, "host", str, where),
                port=_require(entry, "port", int, where),
            )
        )
    raw_artifacts = data.get("artifacts") or {}
    if not isinstance(raw_artifacts, dict):
        raise TopologyError("'artifacts' must be an object")
    artifacts: dict[int, str] = {}
    for key, value in raw_artifacts.items():
        try:
            shard = int(key)
        except (TypeError, ValueError):
            raise TopologyError(
                f"artifact key {key!r} is not a shard id"
            ) from None
        if not isinstance(value, str):
            raise TopologyError(f"artifact path for shard {key} must be str")
        artifacts[shard] = value
    failover = data.get("failover") or {}
    if not isinstance(failover, dict):
        raise TopologyError("'failover' must be an object")
    n = data.get("n")
    if n is not None and (not isinstance(n, int) or isinstance(n, bool)):
        raise TopologyError("'n' must be an integer (or null)")
    acks = data.get("acks", "quorum")
    if not isinstance(acks, str):
        raise TopologyError("'acks' must be a string")
    return ClusterSpec(
        shards=_require(data, "shards", int, "topology"),
        replicas=_require(data, "replicas", int, "topology"),
        seed=_require(data, "seed", int, "topology"),
        router_host=_require(router, "host", str, "router"),
        router_port=_require(router, "port", int, "router"),
        instances=instances,
        artifacts=artifacts,
        n=n,
        breaker_threshold=failover.get(
            "breaker_threshold", DEFAULT_BREAKER_THRESHOLD
        ),
        breaker_reset_s=failover.get(
            "breaker_reset_s", DEFAULT_BREAKER_RESET_S
        ),
        acks=acks,
        base_dir=base_dir,
    )


def load_topology(path: str | Path) -> ClusterSpec:
    """Read and validate a topology JSON file.

    Relative artifact paths resolve against the file's directory.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TopologyError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return spec_from_dict(data, base_dir=path.resolve().parent)
    except TopologyError as exc:
        raise TopologyError(f"{path}: {exc}") from None


def save_topology(path: str | Path, spec: ClusterSpec) -> None:
    """Write ``spec`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(spec.to_dict(), indent=2) + "\n")


def default_spec(
    shards: int,
    replicas: int,
    *,
    seed: int = 0,
    host: str = "127.0.0.1",
    base_port: int = 7400,
    n: int | None = None,
    acks: str = "quorum",
) -> ClusterSpec:
    """A single-host topology on consecutive ports.

    The router takes ``base_port``; instances take the ports after it,
    shard-major (``shard0/r0``, ``shard0/r1``, ``shard1/r0``, ...).
    """
    instances = [
        InstanceSpec(
            shard=s,
            replica=r,
            host=host,
            port=base_port + 1 + s * replicas + r,
        )
        for s in range(shards)
        for r in range(replicas)
    ]
    return ClusterSpec(
        shards=shards,
        replicas=replicas,
        seed=seed,
        router_host=host,
        router_port=base_port,
        instances=instances,
        n=n,
        acks=acks,
    )
