"""repro: a reproduction of "Graph Summarization: Compactness Meets
Efficiency" (SIGMOD 2024).

The package implements lossless graph summarization (Definition 1 of
the paper) end to end: the paper's two algorithms — **Mags** and
**Mags-DM** — alongside every baseline they are evaluated against
(Greedy, Randomized, SWeG, LDME, Slugger), summary-side query
processing (neighbor queries and PageRank), synthetic workload
generators, and a benchmark harness reproducing every table and
figure of the paper's evaluation.

Quickstart::

    from repro import MagsSummarizer, generators

    graph = generators.planted_partition(500, 25, 0.6, 0.01, seed=7)
    result = MagsSummarizer(iterations=30).summarize(graph)
    print(result.relative_size)           # compactness, lower = better
    rep = result.representation
    assert rep.reconstruct_edges() == graph.edge_set()   # lossless
"""

from repro.algorithms import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    RandomizedSummarizer,
    SluggerSummarizer,
    SummaryResult,
    Summarizer,
    SWeGSummarizer,
    TimeLimitExceeded,
)
from repro.core import (
    LossyResult,
    Representation,
    SuperNodePartition,
    encode,
    load_representation,
    make_lossy,
    save_representation,
    verify_lossless,
)
from repro.distributed import DistributedSummarizer
from repro.dynamic import DynamicGraphSummary
from repro.graph import Graph, generators, load_dataset, load_graph

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "generators",
    "load_dataset",
    "load_graph",
    "Representation",
    "SuperNodePartition",
    "encode",
    "verify_lossless",
    "LossyResult",
    "make_lossy",
    "load_representation",
    "save_representation",
    "DynamicGraphSummary",
    "DistributedSummarizer",
    "GreedySummarizer",
    "LDMESummarizer",
    "MagsDMSummarizer",
    "MagsSummarizer",
    "RandomizedSummarizer",
    "SluggerSummarizer",
    "SWeGSummarizer",
    "SummaryResult",
    "Summarizer",
    "TimeLimitExceeded",
    "__version__",
]
