"""Pure-Python reference implementations of the cost calculus.

:class:`~repro.core.supernodes.SuperNodePartition` serves the cost
calculus of Equations 2-4 through two code paths: cached scalar
methods (``node_cost`` / ``merged_cost`` / ``saving``) and the batched
NumPy kernel ``savings_many``.  Both are performance-tuned, which is
exactly what makes them dangerous to trust on their own.

This module is the *oracle* they are checked against: straightforward
transcriptions of the paper's formulas that read only the partition's
public accessors, keep no caches, and take no shortcuts.  They are
deliberately slow and deliberately boring — every branch mirrors a
line of Section 2.2/2.3 — so that ``tools/diff_fuzz.py`` and the
kernel tests can assert *bit-identical* agreement between the fast
paths and these functions after arbitrary merge sequences.

Contract: for any partition state reachable through ``merge`` and any
pair of live roots, each function here must return exactly the same
value (``==``, not approximately) as its fast counterpart.  The
results are ratios of Python integers, so bit-identity is achievable
and enforced.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import costs
from repro.core.supernodes import SuperNodePartition

__all__ = [
    "node_cost",
    "merged_cost",
    "pair_cost",
    "saving",
    "savings_many",
    "total_cost",
]


def pair_cost(partition: SuperNodePartition, u: int, v: int) -> int:
    """``c_uv`` (Equation 2) for two distinct live roots."""
    edges = partition.weights(u).get(v, 0)
    pi = costs.potential_edges(partition.size(u), partition.size(v))
    return costs.pair_cost(pi, edges)


def node_cost(partition: SuperNodePartition, u: int) -> int:
    """``c_u``: the self pair plus every incident pair cost (Eq. 2/3)."""
    total = costs.self_cost(partition.size(u), partition.intra(u))
    size_u = partition.size(u)
    for x, edges in partition.weights(u).items():
        pi = costs.potential_edges(size_u, partition.size(x))
        total += costs.pair_cost(pi, edges)
    return total


def merged_cost(partition: SuperNodePartition, u: int, v: int) -> int:
    """``c_w`` of the hypothetical merge of ``u`` and ``v``.

    Builds the merged weight table as an explicit dict — the most
    literal reading of Section 5.1's update rule — and sums Equation 2
    over it.
    """
    w_u, w_v = partition.weights(u), partition.weights(v)
    size_w = partition.size(u) + partition.size(v)
    intra_w = partition.intra(u) + partition.intra(v) + w_u.get(v, 0)
    combined: dict[int, int] = {}
    for table in (w_u, w_v):
        for x, edges in table.items():
            if x == u or x == v:
                continue
            combined[x] = combined.get(x, 0) + edges
    total = costs.pair_cost(costs.potential_self_edges(size_w), intra_w)
    for x, edges in combined.items():
        pi = costs.potential_edges(size_w, partition.size(x))
        total += costs.pair_cost(pi, edges)
    return total


def saving(partition: SuperNodePartition, u: int, v: int) -> float:
    """The normalized saving ``s(u, v)`` (Equation 4, exact-reduction
    form — see :meth:`SuperNodePartition.saving` for the correction).
    """
    if u == v:
        raise ValueError("saving of a super-node with itself is undefined")
    cost_u = node_cost(partition, u)
    cost_v = node_cost(partition, v)
    denom = cost_u + cost_v
    if denom == 0:
        return 0.0
    reduction = denom - pair_cost(partition, u, v) - merged_cost(partition, u, v)
    return reduction / denom


def savings_many(
    partition: SuperNodePartition, pairs: Sequence[tuple[int, int]]
) -> list[float]:
    """Reference counterpart of the batched kernel: a plain loop."""
    return [saving(partition, u, v) for u, v in pairs]


def total_cost(partition: SuperNodePartition) -> int:
    """Representation cost ``c(R)`` (Equation 3) from first principles."""
    total = 0
    seen: set[tuple[int, int]] = set()
    for u in partition.roots():
        total += costs.self_cost(partition.size(u), partition.intra(u))
        for v in partition.weights(u):
            key = (u, v) if u < v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            total += pair_cost(partition, u, v)
    return total
