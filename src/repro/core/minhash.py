"""MinHash machinery (Section 3.1) and Super-Jaccard (Equation 7).

The paper's algorithms rely on MinHash in two roles:

* **Mags** scores candidate pairs with ``mh(u, v)`` (Equation 5), the
  empirical probability over ``h`` hash functions that ``u`` and ``v``
  have the same MinHash of their neighbor sets — an unbiased estimator
  of the Jaccard similarity ``J(N_u, N_v)``;
* **Mags-DM** (and SWeG / LDME) additionally *divides* super-nodes
  into groups by MinHash value, and maintains super-node signatures
  incrementally under merges via
  ``f_min(w) = min(f_min(u), f_min(v))``.

The paper instantiates each hash function as a random permutation of
``1..n``; we use the standard universal-hash substitute
``(a*x + b) mod p`` with a Mersenne prime ``p``, which has identical
collision statistics for MinHash purposes and avoids materialising
``h`` permutations.
"""

from __future__ import annotations

import numpy as np

from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = [
    "MERSENNE_PRIME",
    "node_hash_values",
    "node_signatures",
    "MinHashSignatures",
    "super_jaccard",
    "exact_jaccard",
    "weighted_minhash_signature",
]

#: 2**61 - 1; hash values live in [0, p).  The sentinel for an empty
#: neighbor set is p itself (larger than every real value).
MERSENNE_PRIME = (1 << 61) - 1
EMPTY_SENTINEL = MERSENNE_PRIME


def node_hash_values(n: int, h: int, seed: int) -> np.ndarray:
    """``h`` universal hash functions evaluated on every node id.

    Returns an array of shape ``(h, n)`` with entries in
    ``[0, MERSENNE_PRIME)``.
    """
    rng = np.random.default_rng(seed)
    a = rng.integers(1, MERSENNE_PRIME, size=(h, 1), dtype=np.uint64)
    b = rng.integers(0, MERSENNE_PRIME, size=(h, 1), dtype=np.uint64)
    ids = np.arange(n, dtype=np.uint64)
    # Modular arithmetic on uint64 objects overflows; go through Python
    # ints only for the multiplication-heavy path via object dtype is
    # too slow, so compute in uint64 with the prime < 2**61 and values
    # < 2**61: a*x can overflow 64 bits, hence split multiplication.
    return _mulmod(a, ids, b)


def _mulmod(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a*x + b) mod p`` without 64-bit overflow.

    Splits ``a`` into 30-bit halves so every intermediate product stays
    below 2**63.  Shapes broadcast: ``a``/``b`` are ``(h, 1)``, ``x``
    is ``(n,)``.
    """
    p = np.uint64(MERSENNE_PRIME)
    lo = a & np.uint64((1 << 30) - 1)
    hi = a >> np.uint64(30)
    # (hi * 2^30 + lo) * x mod p, with x < p < 2^61 reduced first.
    x = x % p
    part_hi = (hi * x) % p
    part_hi = (part_hi << np.uint64(30)) % p
    part_lo = (lo * x) % p
    return (part_hi + part_lo + b) % p


def node_signatures(graph: Graph, h: int, seed: int) -> np.ndarray:
    """MinHash signatures of every node's neighbor set.

    ``sig[i, u] = min over v in N_u of f_i(v)`` (Section 3.1).  Nodes
    with no neighbors get the sentinel value, which never collides
    with a real MinHash.

    Uses the CSR layout plus ``np.minimum.reduceat`` so the whole
    signature matrix is computed in ``O(h * m)`` vectorised work.
    """
    if h < 1:
        raise ValueError("need at least one hash function")
    values = node_hash_values(graph.n, h, seed)
    indptr, indices = graph.csr()
    sig = np.full((h, graph.n), EMPTY_SENTINEL, dtype=np.uint64)
    if len(indices) == 0:
        return sig
    nonempty = np.flatnonzero(np.diff(indptr) > 0)
    starts = indptr[nonempty]
    for i in range(h):
        row = values[i][indices]
        sig[i, nonempty] = np.minimum.reduceat(row, starts)
    return sig


class MinHashSignatures:
    """Mutable per-super-node MinHash signatures.

    Starts from node-level signatures and supports the paper's merge
    update (Algorithm 5, line 13): the signature of a merged super-node
    is the element-wise minimum of its parts.
    """

    __slots__ = ("sig", "h")

    def __init__(self, graph: Graph, h: int, seed: int):
        self.h = h
        self.sig = node_signatures(graph, h, seed)

    def merge(self, survivor: int, absorbed: int) -> None:
        """Fold ``absorbed``'s signature into ``survivor``'s."""
        np.minimum(
            self.sig[:, survivor],
            self.sig[:, absorbed],
            out=self.sig[:, survivor],
        )

    def similarity(self, u: int, v: int) -> float:
        """``mh(u, v)`` (Equation 5): fraction of equal components.

        Pairs of empty neighborhoods compare as similar (both carry
        the sentinel), matching the Jaccard convention J(∅, ∅) = 1 used
        implicitly by the grouping step.
        """
        return float(np.count_nonzero(self.sig[:, u] == self.sig[:, v])) / self.h

    def value(self, function_index: int, u: int) -> int:
        """The MinHash of ``u`` under one specific hash function."""
        return int(self.sig[function_index, u])

    def column(self, u: int) -> np.ndarray:
        """Full signature of one super-node (read-only view)."""
        return self.sig[:, u]


def super_jaccard(partition: SuperNodePartition, u: int, v: int) -> float:
    """SWeG's Super-Jaccard similarity (Equation 7).

    ``w(u, x)`` counts members of super-node ``u`` adjacent to original
    node ``x``; Super-Jaccard is the weighted Jaccard of those weight
    vectors.  The paper's Example 2 shows how this measure is biased
    toward large super-nodes, which Mags-DM's ``mh(.)`` avoids.
    """
    weights_u = _member_adjacency_weights(partition, u)
    weights_v = _member_adjacency_weights(partition, v)
    numer = 0
    denom = 0
    for x in weights_u.keys() | weights_v.keys():
        wu = weights_u.get(x, 0)
        wv = weights_v.get(x, 0)
        numer += min(wu, wv)
        denom += max(wu, wv)
    if denom == 0:
        return 0.0
    return numer / denom


def _member_adjacency_weights(
    partition: SuperNodePartition, root: int
) -> dict[int, int]:
    """``x -> w(root, x)`` over all original nodes ``x`` adjacent to P_root."""
    adjacency = partition.graph.adjacency()
    weights: dict[int, int] = {}
    for member in partition.members(root):
        for x in adjacency[member]:
            weights[x] = weights.get(x, 0) + 1
    return weights


def _mix64(a: int, b: int, c: int, d: int) -> int:
    """Stateless 64-bit mix of four integers (splitmix-style)."""
    x = (a * 0x9E3779B97F4A7C15 + b * 0xBF58476D1CE4E5B9
         + c * 0x94D049BB133111EB + d + 0x2545F4914F6CDD1D) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


_MASK64 = (1 << 64) - 1


def weighted_minhash_signature(
    partition: SuperNodePartition, root: int, k: int, seed: int
) -> tuple[int, ...]:
    """Weighted MinHash of a super-node's adjacency weights (LDME).

    LDME [45] divides super-nodes by a *weighted* LSH over
    ``w(u, x)`` — the number of members of ``u`` adjacent to node
    ``x``.  For integer weights, the textbook construction hashes the
    expanded multiset ``{(x, i) : 0 <= i < w(u, x)}`` and takes the
    minimum per hash function: two super-nodes collide on a function
    with probability equal to their weighted Jaccard similarity.

    Returns a ``k``-tuple signature; the expansion cost is
    ``O(k * sum of weights)`` = ``O(k * member degrees)``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    weights = _member_adjacency_weights(partition, root)
    if not weights:
        return tuple([-1] * k)
    signature = []
    for fn in range(k):
        best = _MASK64
        for x, weight in weights.items():
            for copy in range(weight):
                value = _mix64(seed, fn, x, copy)
                if value < best:
                    best = value
        signature.append(best)
    return tuple(signature)


def exact_jaccard(graph: Graph, u: int, v: int) -> float:
    """Exact Jaccard similarity of two nodes' neighbor sets."""
    nu, nv = graph.adjacency()[u], graph.adjacency()[v]
    union = len(nu | nv)
    if union == 0:
        return 0.0
    return len(nu & nv) / union
