"""On-disk format for representations.

A summary is only useful if it can be stored and shipped; this module
defines a plain-text, line-oriented format for ``R = (S, C)`` that
round-trips exactly and diffs cleanly:

```
# repro summary v1
G <n> <m>
S <supernode-id> <member> <member> ...
E <supernode-id> <supernode-id>
+ <u> <v>
- <u> <v>
# sha256 <hex>
```

Sections may interleave; ordering within the file is normalised on
write so serialisation is deterministic.  Gzip is applied when the
path ends in ``.gz``.

Artifact integrity: the writer appends a ``# sha256 <hex>`` footer
covering every preceding line (header included), and the reader
verifies it — a flipped bit, a truncated copy, or a hand-edited record
fails loudly as a :class:`FormatError` instead of silently serving a
corrupted summary.  Files without the footer (written before it
existed, or by hand) still load; ``repro verify`` reports them as
unchecksummed.  Lines starting with ``#`` after the header are
comments.
"""

from __future__ import annotations

import gzip
import hashlib
import re
from pathlib import Path

from repro.core.encoding import Representation

__all__ = [
    "save_representation",
    "load_representation",
    "load_representation_checked",
    "FormatError",
    "FORMAT_VERSION",
]

#: The (single) format version this module reads and writes.
FORMAT_VERSION = 1

_HEADER = f"# repro summary v{FORMAT_VERSION}"
_HEADER_RE = re.compile(r"# repro summary v(\d+)\s*$")


class FormatError(ValueError):
    """Raised when a summary file cannot be parsed."""


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_representation(path: str | Path, rep: Representation) -> None:
    """Write ``rep`` to ``path`` in the v1 text format.

    A ``# sha256 <hex>`` footer over every preceding line is appended
    so :func:`load_representation` can verify the artifact end-to-end.
    """
    path = Path(path)
    digest = hashlib.sha256()
    with _open_text(path, "w") as out:

        def emit(line: str) -> None:
            out.write(line)
            digest.update(line.encode("utf-8"))

        emit(_HEADER + "\n")
        emit(f"G {rep.n} {rep.m}\n")
        for sid in sorted(rep.supernodes):
            members = " ".join(map(str, sorted(rep.supernodes[sid])))
            emit(f"S {sid} {members}\n")
        for su, sv in sorted(rep.summary_edges):
            emit(f"E {su} {sv}\n")
        for u, v in sorted(rep.additions):
            emit(f"+ {u} {v}\n")
        for u, v in sorted(rep.removals):
            emit(f"- {u} {v}\n")
        out.write(f"# sha256 {digest.hexdigest()}\n")


def load_representation(path: str | Path) -> Representation:
    """Read a representation written by :func:`save_representation`.

    Shorthand for :func:`load_representation_checked` that discards
    the checksum status.
    """
    representation, _status = load_representation_checked(path)
    return representation


def load_representation_checked(
    path: str | Path,
) -> tuple[Representation, str]:
    """Read a representation and report its integrity status.

    Returns ``(representation, status)`` with ``status`` either
    ``"verified"`` (the ``# sha256`` footer matched) or ``"absent"``
    (no footer — a pre-checksum or hand-written file).  A footer that
    does *not* match raises :class:`FormatError`, as does malformed
    input: the message names the file and the offending line; files
    written by a *newer* format version fail with an explicit version
    mismatch instead of a cascade of parse errors, and gzip
    corruption / binary junk is reported as a round-trip error rather
    than a bare low-level exception.  Structural soundness (partition
    coverage, id validity) is validated so a corrupted file fails
    loudly instead of mis-reconstructing.
    """
    path = Path(path)
    try:
        with _open_text(path, "r") as handle:
            parsed = _parse_stream(handle, path)
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        # gzip truncation/corruption and binary junk otherwise surface
        # as bare low-level exceptions; turn them into the same
        # round-trip error the caller already handles.
        raise FormatError(
            f"{path}: not a readable repro summary "
            f"({type(exc).__name__}: {exc}); expected the text format "
            f"written by save_representation (v{FORMAT_VERSION}, "
            f"gzipped when the name ends in .gz)"
        ) from exc
    n, m, supernodes, summary_edges, additions, removals, status = parsed

    if n is None or m is None:
        raise FormatError(f"{path}: missing G header record")
    covered = sorted(x for members in supernodes.values() for x in members)
    if covered != list(range(n)):
        raise FormatError(f"{path}: super-nodes do not partition 0..n-1")
    for su, sv in summary_edges:
        if su not in supernodes or sv not in supernodes:
            raise FormatError(
                f"{path}: super-edge ({su}, {sv}) references unknown id"
            )
    node_to_supernode = {
        node: sid for sid, members in supernodes.items() for node in members
    }
    return Representation(
        n=n,
        m=m,
        supernodes=supernodes,
        node_to_supernode=node_to_supernode,
        summary_edges=summary_edges,
        additions=additions,
        removals=removals,
    ), status


def _check_header(first: str, path: Path) -> None:
    """Validate the header line, distinguishing wrong-version files
    (written by a newer repro) from files that are not summaries at
    all."""
    match = _HEADER_RE.match(first)
    if match is None:
        raise FormatError(
            f"{path}: bad header {first!r}; expected {_HEADER!r} — "
            "not a repro summary file?"
        )
    version = int(match.group(1))
    if version != FORMAT_VERSION:
        raise FormatError(
            f"{path}: summary format v{version} is not supported by "
            f"this reader (supports v{FORMAT_VERSION}); the file was "
            "written by a newer version of repro"
        )


def _parse_stream(handle, path: Path):
    """Parse the record lines of an already-opened summary file.

    Maintains a running SHA-256 of every line before the ``# sha256``
    footer; a footer that disagrees with the recomputed digest, or any
    record appearing *after* the footer (an append-tamper), raises
    :class:`FormatError`.
    """
    first = handle.readline()
    _check_header(first.rstrip("\n"), path)
    digest = hashlib.sha256(first.encode("utf-8"))
    declared_digest: str | None = None
    n = m = None
    supernodes: dict[int, list[int]] = {}
    summary_edges: set[tuple[int, int]] = set()
    additions: set[tuple[int, int]] = set()
    removals: set[tuple[int, int]] = set()
    for line_number, line in enumerate(handle, start=2):
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        if tag.startswith("#"):
            if len(parts) >= 3 and parts[1] == "sha256":
                if declared_digest is not None:
                    raise FormatError(
                        f"{path}: duplicate sha256 footer "
                        f"at line {line_number}"
                    )
                declared_digest = parts[2]
            # Other comments are ignored — but only the digest of the
            # content *before* the footer counts.
            if declared_digest is None:
                digest.update(line.encode("utf-8"))
            continue
        if declared_digest is not None:
            raise FormatError(
                f"{path}: record after the sha256 footer "
                f"at line {line_number}: {line.rstrip()!r}"
            )
        digest.update(line.encode("utf-8"))
        try:
            if tag == "G":
                n, m = int(parts[1]), int(parts[2])
            elif tag == "S":
                sid = int(parts[1])
                if sid in supernodes:
                    raise FormatError(
                        f"{path}: duplicate super-node {sid}"
                    )
                supernodes[sid] = [int(x) for x in parts[2:]]
                if not supernodes[sid]:
                    raise FormatError(f"{path}: empty super-node {sid}")
            elif tag == "E":
                summary_edges.add((int(parts[1]), int(parts[2])))
            elif tag == "+":
                additions.add(_ordered(int(parts[1]), int(parts[2])))
            elif tag == "-":
                removals.add(_ordered(int(parts[1]), int(parts[2])))
            else:
                raise FormatError(
                    f"{path}: unknown record {tag!r} "
                    f"at line {line_number}"
                )
        except (IndexError, ValueError) as exc:
            if isinstance(exc, FormatError):
                raise
            raise FormatError(
                f"{path}: malformed line {line_number}: {line!r}"
            ) from exc
    status = "absent"
    if declared_digest is not None:
        if digest.hexdigest() != declared_digest:
            raise FormatError(
                f"{path}: checksum mismatch — the file declares sha256 "
                f"{declared_digest[:16]}... but its content hashes to "
                f"{digest.hexdigest()[:16]}...; the artifact is "
                "corrupted or was modified after writing"
            )
        status = "verified"
    return n, m, supernodes, summary_edges, additions, removals, status


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)
