"""On-disk format for representations.

A summary is only useful if it can be stored and shipped; this module
defines a plain-text, line-oriented format for ``R = (S, C)`` that
round-trips exactly and diffs cleanly:

```
# repro summary v1
G <n> <m>
S <supernode-id> <member> <member> ...
E <supernode-id> <supernode-id>
+ <u> <v>
- <u> <v>
```

Sections may interleave; ordering within the file is normalised on
write so serialisation is deterministic.  Gzip is applied when the
path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path

from repro.core.encoding import Representation

__all__ = [
    "save_representation",
    "load_representation",
    "FormatError",
    "FORMAT_VERSION",
]

#: The (single) format version this module reads and writes.
FORMAT_VERSION = 1

_HEADER = f"# repro summary v{FORMAT_VERSION}"
_HEADER_RE = re.compile(r"# repro summary v(\d+)\s*$")


class FormatError(ValueError):
    """Raised when a summary file cannot be parsed."""


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_representation(path: str | Path, rep: Representation) -> None:
    """Write ``rep`` to ``path`` in the v1 text format."""
    path = Path(path)
    with _open_text(path, "w") as out:
        out.write(_HEADER + "\n")
        out.write(f"G {rep.n} {rep.m}\n")
        for sid in sorted(rep.supernodes):
            members = " ".join(map(str, sorted(rep.supernodes[sid])))
            out.write(f"S {sid} {members}\n")
        for su, sv in sorted(rep.summary_edges):
            out.write(f"E {su} {sv}\n")
        for u, v in sorted(rep.additions):
            out.write(f"+ {u} {v}\n")
        for u, v in sorted(rep.removals):
            out.write(f"- {u} {v}\n")


def load_representation(path: str | Path) -> Representation:
    """Read a representation written by :func:`save_representation`.

    Raises :class:`FormatError` on malformed input with a message that
    names the file and the offending line; files written by a *newer*
    format version fail with an explicit version mismatch instead of a
    cascade of parse errors, and gzip corruption / binary junk is
    reported as a round-trip error rather than a bare low-level
    exception.  Structural soundness (partition coverage, id validity)
    is validated so a corrupted file fails loudly instead of
    mis-reconstructing.
    """
    path = Path(path)
    try:
        with _open_text(path, "r") as handle:
            parsed = _parse_stream(handle, path)
    except (OSError, EOFError, UnicodeDecodeError) as exc:
        # gzip truncation/corruption and binary junk otherwise surface
        # as bare low-level exceptions; turn them into the same
        # round-trip error the caller already handles.
        raise FormatError(
            f"{path}: not a readable repro summary "
            f"({type(exc).__name__}: {exc}); expected the text format "
            f"written by save_representation (v{FORMAT_VERSION}, "
            f"gzipped when the name ends in .gz)"
        ) from exc
    n, m, supernodes, summary_edges, additions, removals = parsed

    if n is None or m is None:
        raise FormatError(f"{path}: missing G header record")
    covered = sorted(x for members in supernodes.values() for x in members)
    if covered != list(range(n)):
        raise FormatError(f"{path}: super-nodes do not partition 0..n-1")
    for su, sv in summary_edges:
        if su not in supernodes or sv not in supernodes:
            raise FormatError(
                f"{path}: super-edge ({su}, {sv}) references unknown id"
            )
    node_to_supernode = {
        node: sid for sid, members in supernodes.items() for node in members
    }
    return Representation(
        n=n,
        m=m,
        supernodes=supernodes,
        node_to_supernode=node_to_supernode,
        summary_edges=summary_edges,
        additions=additions,
        removals=removals,
    )


def _check_header(first: str, path: Path) -> None:
    """Validate the header line, distinguishing wrong-version files
    (written by a newer repro) from files that are not summaries at
    all."""
    match = _HEADER_RE.match(first)
    if match is None:
        raise FormatError(
            f"{path}: bad header {first!r}; expected {_HEADER!r} — "
            "not a repro summary file?"
        )
    version = int(match.group(1))
    if version != FORMAT_VERSION:
        raise FormatError(
            f"{path}: summary format v{version} is not supported by "
            f"this reader (supports v{FORMAT_VERSION}); the file was "
            "written by a newer version of repro"
        )


def _parse_stream(handle, path: Path):
    """Parse the record lines of an already-opened summary file."""
    first = handle.readline().rstrip("\n")
    _check_header(first, path)
    n = m = None
    supernodes: dict[int, list[int]] = {}
    summary_edges: set[tuple[int, int]] = set()
    additions: set[tuple[int, int]] = set()
    removals: set[tuple[int, int]] = set()
    for line_number, line in enumerate(handle, start=2):
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        try:
            if tag == "G":
                n, m = int(parts[1]), int(parts[2])
            elif tag == "S":
                sid = int(parts[1])
                if sid in supernodes:
                    raise FormatError(
                        f"{path}: duplicate super-node {sid}"
                    )
                supernodes[sid] = [int(x) for x in parts[2:]]
                if not supernodes[sid]:
                    raise FormatError(f"{path}: empty super-node {sid}")
            elif tag == "E":
                summary_edges.add((int(parts[1]), int(parts[2])))
            elif tag == "+":
                additions.add(_ordered(int(parts[1]), int(parts[2])))
            elif tag == "-":
                removals.add(_ordered(int(parts[1]), int(parts[2])))
            else:
                raise FormatError(
                    f"{path}: unknown record {tag!r} "
                    f"at line {line_number}"
                )
        except (IndexError, ValueError) as exc:
            if isinstance(exc, FormatError):
                raise
            raise FormatError(
                f"{path}: malformed line {line_number}: {line!r}"
            ) from exc
    return n, m, supernodes, summary_edges, additions, removals


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)
