"""Merge-threshold schedules.

Divide-and-merge summarizers only merge a pair in iteration ``t`` when
its saving exceeds a threshold.  SWeG uses ``theta(t) = 1/(t + 1)``;
the paper's Equation 6 replaces it with a geometric schedule
``omega(t)`` from 0.5 down to 0.005, which decreases more slowly for
small ``t`` and therefore commits to high-saving merges first
(Merging Strategy 3 of Section 4).
"""

from __future__ import annotations

__all__ = ["omega", "theta", "omega_schedule", "theta_schedule"]

_OMEGA_FIRST = 0.5
_OMEGA_LAST = 0.005


def omega(t: int, total_iterations: int) -> float:
    """The paper's merge threshold ``omega(t)`` (Equation 6).

    ``t`` is 1-based.  ``omega(1) = 0.5`` (the saving of two nodes with
    identical neighborhoods), ``omega(T) = 0.005``, geometric ratio
    ``r = (0.01)**(1/(T-1))`` in between.
    """
    if total_iterations < 1:
        raise ValueError("total_iterations must be >= 1")
    if not 1 <= t <= total_iterations:
        raise ValueError(
            f"t must be in [1, {total_iterations}], got {t}"
        )
    if total_iterations == 1 or t == total_iterations:
        return _OMEGA_LAST
    ratio = (_OMEGA_LAST / _OMEGA_FIRST) ** (1.0 / (total_iterations - 1))
    return _OMEGA_FIRST * ratio ** (t - 1)


def theta(t: int) -> float:
    """SWeG's merge threshold ``theta(t) = 1/(t + 1)`` (Section 2.4)."""
    if t < 1:
        raise ValueError("t must be >= 1")
    return 1.0 / (t + 1)


def omega_schedule(total_iterations: int) -> list[float]:
    """The full ``omega`` sequence for ``t = 1..T``."""
    return [omega(t, total_iterations) for t in range(1, total_iterations + 1)]


def theta_schedule(total_iterations: int) -> list[float]:
    """The full ``theta`` sequence for ``t = 1..T``."""
    return [theta(t) for t in range(1, total_iterations + 1)]
