"""Lossless reconstruction checking.

Definition 1 requires that the original graph be recreated from
``R = (S, C)`` *exactly*.  The test-suite runs every algorithm's
output through :func:`verify_lossless`; the benchmark harness can do
the same with ``--verify``.
"""

from __future__ import annotations

from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = ["verify_lossless", "LosslessnessError"]


class LosslessnessError(AssertionError):
    """The representation does not reproduce the original graph."""


def verify_lossless(graph: Graph, representation: Representation) -> None:
    """Raise :class:`LosslessnessError` unless ``R`` recreates ``graph``.

    Checks, in order of increasing cost:

    1. the super-nodes partition exactly the node set;
    2. corrections do not overlap (no edge both added and removed);
    3. the reconstructed edge set equals the original edge set.
    """
    covered = sorted(
        node
        for members in representation.supernodes.values()
        for node in members
    )
    if covered != list(range(graph.n)):
        raise LosslessnessError(
            "super-nodes are not a partition of the node set"
        )

    overlap = representation.additions & representation.removals
    if overlap:
        raise LosslessnessError(
            f"{len(overlap)} corrections appear with both signs, "
            f"e.g. {next(iter(overlap))}"
        )

    reconstructed = representation.reconstruct_edges()
    original = graph.edge_set()
    if reconstructed != original:
        missing = original - reconstructed
        spurious = reconstructed - original
        raise LosslessnessError(
            f"reconstruction differs from the original graph: "
            f"{len(missing)} edges missing (e.g. {_peek(missing)}), "
            f"{len(spurious)} spurious (e.g. {_peek(spurious)})"
        )


def _peek(edge_set: set[tuple[int, int]]) -> tuple[int, int] | None:
    return next(iter(edge_set), None)
