"""Lossless reconstruction checking and deep invariant audits.

Definition 1 requires that the original graph be recreated from
``R = (S, C)`` *exactly*.  The test-suite runs every algorithm's
output through :func:`verify_lossless`; the benchmark harness can do
the same with ``--verify``.

:func:`deep_audit` goes further for artifact integrity
(``repro verify --deep``): beyond structural soundness it
reconstructs the graph the representation claims to encode, re-runs
the optimal output encoding (Algorithm 4) over the representation's
own partition, and checks the stored ``(S, C)`` *is* that optimal
encoding with an exact cost recount — a summary that merely
reconstructs correctly but carries a suboptimal or inconsistent
encoding (a corrupted artifact, a buggy writer) is caught here.
"""

from __future__ import annotations

from repro.core.encoding import Representation, encode
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = ["verify_lossless", "deep_audit", "LosslessnessError"]


class LosslessnessError(AssertionError):
    """The representation does not reproduce the original graph."""


def verify_lossless(graph: Graph, representation: Representation) -> None:
    """Raise :class:`LosslessnessError` unless ``R`` recreates ``graph``.

    Checks, in order of increasing cost:

    1. the super-nodes partition exactly the node set;
    2. corrections do not overlap (no edge both added and removed);
    3. the reconstructed edge set equals the original edge set.
    """
    covered = sorted(
        node
        for members in representation.supernodes.values()
        for node in members
    )
    if covered != list(range(graph.n)):
        raise LosslessnessError(
            "super-nodes are not a partition of the node set"
        )

    overlap = representation.additions & representation.removals
    if overlap:
        raise LosslessnessError(
            f"{len(overlap)} corrections appear with both signs, "
            f"e.g. {next(iter(overlap))}"
        )

    reconstructed = representation.reconstruct_edges()
    original = graph.edge_set()
    if reconstructed != original:
        missing = original - reconstructed
        spurious = reconstructed - original
        raise LosslessnessError(
            f"reconstruction differs from the original graph: "
            f"{len(missing)} edges missing (e.g. {_peek(missing)}), "
            f"{len(spurious)} spurious (e.g. {_peek(spurious)})"
        )


def _peek(edge_set: set[tuple[int, int]]) -> tuple[int, int] | None:
    return next(iter(edge_set), None)


def deep_audit(
    representation: Representation,
    graph: Graph | None = None,
    *,
    optimal: bool = True,
) -> list[str]:
    """Full invariant audit of a representation; returns findings.

    Checks, in order of increasing cost (an early structural failure
    short-circuits the later checks, which would only cascade):

    1. super-nodes partition exactly ``0..n-1`` and no correction
       appears with both signs (the :func:`verify_lossless`
       structural invariants);
    2. corrections are consistent with the summary edges: every
       minus-correction's endpoints lie in super-nodes joined by a
       summary edge (removing a pair no super-edge implies is dead
       weight), and no plus-correction duplicates a pair a summary
       edge already implies;
    3. with ``graph`` given, the reconstruction equals it exactly;
    4. the stored ``(S, C)`` is *the* optimal encoding of its own
       partition: the reconstructed graph is re-partitioned into the
       representation's groups, re-encoded with Algorithm 4, and the
       summary edges, both correction sets, and the total cost must
       match the stored artifact exactly.

    Check 4 only holds for freshly-encoded artifacts; a summary that
    has absorbed online edge mutations through
    :class:`repro.dynamic.summary.DynamicGraphSummary` stays lossless
    but intentionally trades per-pair encoding optimality for
    incremental updates.  Pass ``optimal=False`` to audit such a
    summary (checks 1-3 still run in full).

    An empty list means the artifact is internally consistent,
    losslessly decodable, and (with ``optimal=True``) optimally
    encoded.
    """
    findings: list[str] = []
    rep = representation

    covered = sorted(
        node for members in rep.supernodes.values() for node in members
    )
    if covered != list(range(rep.n)):
        findings.append("super-nodes are not a partition of 0..n-1")
        return findings
    overlap = rep.additions & rep.removals
    if overlap:
        findings.append(
            f"{len(overlap)} corrections appear with both signs, "
            f"e.g. {next(iter(overlap))}"
        )
        return findings

    superedge_pairs = {
        (min(su, sv), max(su, sv)) for su, sv in rep.summary_edges
    }
    for u, v in rep.removals:
        pu, pv = rep.node_to_supernode[u], rep.node_to_supernode[v]
        if (min(pu, pv), max(pu, pv)) not in superedge_pairs:
            findings.append(
                f"minus-correction ({u}, {v}) is not implied by any "
                "summary edge"
            )
            break
    for u, v in rep.additions:
        pu, pv = rep.node_to_supernode[u], rep.node_to_supernode[v]
        if (min(pu, pv), max(pu, pv)) in superedge_pairs:
            findings.append(
                f"plus-correction ({u}, {v}) duplicates a pair the "
                f"summary edge already implies"
            )
            break

    reconstructed = rep.reconstruct()
    if graph is not None:
        try:
            verify_lossless(graph, rep)
        except LosslessnessError as exc:
            findings.append(str(exc))
            return findings
    if not optimal:
        return findings

    # Re-encode the representation's own partition over the graph it
    # encodes and demand bit-for-bit agreement plus an exact cost
    # recount (Equation 1).
    partition = SuperNodePartition(reconstructed)
    for members in rep.supernodes.values():
        root = members[0]
        for node in members[1:]:
            # merge() picks its own survivor, so chain through it.
            root = partition.merge(root, node)
    reencoded = encode(partition)

    def canonical(r: Representation):
        groups = {
            frozenset(members) for members in r.supernodes.values()
        }
        edges = {
            frozenset(
                (frozenset(r.supernodes[su]), frozenset(r.supernodes[sv]))
            )
            for su, sv in r.summary_edges
        }
        return groups, edges, set(r.additions), set(r.removals)

    stored = canonical(rep)
    fresh = canonical(reencoded)
    labels = ("super-node groups", "summary edges", "additions", "removals")
    for label, a, b in zip(labels, stored, fresh):
        if a != b:
            findings.append(
                f"stored {label} differ from the optimal re-encoding "
                f"({len(a)} stored vs {len(b)} re-encoded)"
            )
    if rep.cost != reencoded.cost:
        findings.append(
            f"stored cost {rep.cost} differs from the exact recount "
            f"{reencoded.cost}"
        )
    return findings
