"""Lossy summarization with bounded error (the paper's future work).

Section 8 names the natural extension of Mags/Mags-DM: "we allow a
bounded error in the representation".  This module implements the
bounded-error model of Navlakha et al. [30] on top of any lossless
representation produced by this package:

Given an error bound ``epsilon``, a lossy representation must satisfy,
for every node ``v``,

    |N'_v  symmetric-difference  N_v|  <=  epsilon * |N_v|

where ``N'_v`` is the neighborhood reconstructed from the lossy
representation.  The construction drops corrections greedily — each
dropped correction saves one unit of representation cost and spends
one unit of error budget at each endpoint — which is exactly
Navlakha's correction-pruning step and composes with every summarizer
here (``MagsSummarizer`` then ``make_lossy`` is the paper's suggested
pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.encoding import Representation
from repro.graph.graph import Graph

__all__ = ["LossyResult", "make_lossy", "neighborhood_errors"]


@dataclass
class LossyResult:
    """A lossy representation plus its error accounting."""

    representation: Representation
    epsilon: float
    dropped_additions: set[tuple[int, int]] = field(default_factory=set)
    dropped_removals: set[tuple[int, int]] = field(default_factory=set)

    @property
    def corrections_dropped(self) -> int:
        """How many corrections the pruning removed."""
        return len(self.dropped_additions) + len(self.dropped_removals)

    @property
    def cost(self) -> int:
        """Cost of the lossy representation."""
        return self.representation.cost

    @property
    def relative_size(self) -> float:
        """Relative size of the lossy representation."""
        return self.representation.relative_size


def make_lossy(
    representation: Representation, epsilon: float
) -> LossyResult:
    """Prune corrections within a per-node error budget.

    Dropping ``+(u, v)`` removes a true edge from the reconstruction;
    dropping ``-(u, v)`` leaves a spurious edge in it.  Either way the
    symmetric difference at both ``u`` and ``v`` grows by one, so a
    correction may be dropped only while both endpoints have budget
    ``floor(epsilon * |N_v|)`` remaining.  Corrections are visited
    largest-budget-endpoints-first (then lexicographically) so the
    pruning is deterministic and spends budget where it is slack.

    With ``epsilon = 0`` the output is the input (lossless).
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")

    degrees = _true_degrees(representation)
    budget = {v: int(epsilon * degrees[v]) for v in range(representation.n)}

    def order_key(edge: tuple[int, int]):
        u, v = edge
        return (-min(budget[u], budget[v]), edge)

    dropped_additions: set[tuple[int, int]] = set()
    dropped_removals: set[tuple[int, int]] = set()
    for pool, dropped in (
        (representation.additions, dropped_additions),
        (representation.removals, dropped_removals),
    ):
        for u, v in sorted(pool, key=order_key):
            if budget[u] >= 1 and budget[v] >= 1:
                budget[u] -= 1
                budget[v] -= 1
                dropped.add((u, v))

    lossy = Representation(
        n=representation.n,
        m=representation.m,
        supernodes={
            sid: list(members)
            for sid, members in representation.supernodes.items()
        },
        node_to_supernode=dict(representation.node_to_supernode),
        summary_edges=set(representation.summary_edges),
        additions=representation.additions - dropped_additions,
        removals=representation.removals - dropped_removals,
    )
    return LossyResult(
        representation=lossy,
        epsilon=epsilon,
        dropped_additions=dropped_additions,
        dropped_removals=dropped_removals,
    )


def neighborhood_errors(graph: Graph, lossy: Representation) -> list[int]:
    """Per-node symmetric-difference error of a lossy reconstruction.

    Returns ``|N'_v symmetric-difference N_v|`` for every node; a valid
    ``epsilon``-bounded representation keeps every entry at or below
    ``epsilon * |N_v|``.
    """
    reconstructed = lossy.reconstruct_edges()
    original = graph.edge_set()
    errors = [0] * graph.n
    for u, v in reconstructed ^ original:
        errors[u] += 1
        errors[v] += 1
    return errors


def _true_degrees(representation: Representation) -> list[int]:
    """Original-graph degrees recovered from the representation."""
    degrees = [0] * representation.n
    for su, sv in representation.summary_edges:
        members_u = representation.supernodes[su]
        if su == sv:
            for node in members_u:
                degrees[node] += len(members_u) - 1
        else:
            members_v = representation.supernodes[sv]
            for node in members_u:
                degrees[node] += len(members_v)
            for node in members_v:
                degrees[node] += len(members_u)
    for u, v in representation.additions:
        degrees[u] += 1
        degrees[v] += 1
    for u, v in representation.removals:
        degrees[u] -= 1
        degrees[v] -= 1
    return degrees
