"""Pairwise encoding costs (Section 2.2 of the paper).

Given two super-nodes ``u`` and ``v`` with ``|P_u|`` and ``|P_v|``
member nodes and ``|E_uv|`` actual edges between them, the optimal
encoding chooses between a super-edge plus minus-corrections and plain
plus-corrections (Equation 2):

    c_uv = min(|Pi_uv| - |E_uv| + 1, |E_uv|)

where ``Pi_uv = P_u x P_v`` is the set of *potential* edges.  For the
self pair (edges inside one super-node) ``|Pi_uu| = s(s-1)/2``.

These tiny functions are the bedrock of everything else — every
algorithm's merge decisions reduce to sums of ``pair_cost`` — so they
live in one module with exhaustive tests.
"""

from __future__ import annotations

__all__ = [
    "potential_edges",
    "potential_self_edges",
    "pair_cost",
    "self_cost",
    "use_superedge",
]


def potential_edges(size_u: int, size_v: int) -> int:
    """``|Pi_uv|`` for two distinct super-nodes."""
    return size_u * size_v


def potential_self_edges(size_u: int) -> int:
    """``|Pi_uu|``: unordered node pairs within one super-node."""
    return size_u * (size_u - 1) // 2


def pair_cost(pi: int, edges: int) -> int:
    """Optimal encoding cost of an edge group (Equation 2).

    ``pi`` is the number of potential edges, ``edges`` the number that
    actually exist.  A group with no edges costs nothing (the pair is
    simply not adjacent in the summary).

    >>> pair_cost(12, 2)    # sparse: two plus-corrections
    2
    >>> pair_cost(12, 11)   # dense: super-edge + one minus-correction
    2
    >>> pair_cost(12, 0)
    0
    """
    if edges < 0 or pi < edges:
        raise ValueError(f"invalid edge group: pi={pi}, edges={edges}")
    if edges == 0:
        return 0
    return min(pi - edges + 1, edges)


def self_cost(size_u: int, intra_edges: int) -> int:
    """Cost of the edges internal to one super-node (self pair)."""
    return pair_cost(potential_self_edges(size_u), intra_edges)


def use_superedge(pi: int, edges: int) -> bool:
    """Whether the optimal encoding uses a super-edge (Section 2.2).

    True iff ``|E_uv| > (1 + |Pi_uv|) / 2``, i.e. the super-edge plus
    minus-corrections is strictly cheaper than plus-corrections.
    """
    return 2 * edges > pi + 1
