"""Super-node partition with incremental cost bookkeeping (Section 5.1).

The paper implements the evolving set of super-nodes ``P`` as a
disjoint-set union, and for each super-node ``u`` keeps a weight table
``W_u`` with ``W_u(v) = |E_uv|`` so that the pairwise cost ``c_uv``
(Equation 2) and the saving ``s(u, v)`` (Equation 4) can be computed
without touching the original adjacency lists.  This module is that
data structure; every summarization algorithm in the package builds on
it, so the cost calculus is written (and tested) exactly once.

Invariants maintained under :meth:`SuperNodePartition.merge`:

* ``find`` maps every original node to the root of its super-node;
* ``weights(r)`` maps each *canonical* neighbor root to the live edge
  count (entries are eagerly re-keyed on merges, so keys never go
  stale);
* ``intra(r)`` counts edges with both endpoints inside the super-node;
* the total edge mass ``sum of W + 2 * sum of intra`` is constant.
"""

from __future__ import annotations

from typing import Iterable

from repro.core import costs
from repro.graph.graph import Graph

__all__ = ["SuperNodePartition"]


class SuperNodePartition:
    """The evolving partition ``P`` of graph nodes into super-nodes.

    Parameters
    ----------
    graph:
        The input graph; each node starts as a singleton super-node.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> g = Graph(3, [(0, 1), (0, 2), (1, 2)])
    >>> p = SuperNodePartition(g)
    >>> w = p.merge(0, 1)
    >>> p.size(w), p.intra(w)
    (2, 1)
    """

    __slots__ = (
        "graph", "_parent", "_size", "_intra", "_weights", "_roots",
        "_members", "num_merges", "_cost_cache",
    )

    def __init__(self, graph: Graph):
        self.graph = graph
        n = graph.n
        self._parent = list(range(n))
        self._size = [1] * n
        self._intra = [0] * n
        self._weights: list[dict[int, int]] = [
            {v: 1 for v in graph.adjacency()[u]} for u in range(n)
        ]
        self._roots: set[int] = set(range(n))
        self._members: list[list[int]] = [[u] for u in range(n)]
        self.num_merges = 0
        # node_cost is the hot path of every saving computation; cache
        # it per live root and invalidate around merges.
        self._cost_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # DSU primitives
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Canonical root of the super-node containing node ``x``."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def roots(self) -> set[int]:
        """The set of live super-node roots (do not mutate)."""
        return self._roots

    def num_supernodes(self) -> int:
        """Current number of super-nodes ``|P|``."""
        return len(self._roots)

    def size(self, root: int) -> int:
        """``|P_u|`` — the number of original nodes in the super-node."""
        return self._size[root]

    def intra(self, root: int) -> int:
        """``|E_uu|`` — edges with both endpoints inside the super-node."""
        return self._intra[root]

    def members(self, root: int) -> list[int]:
        """Original nodes contained in the super-node (do not mutate)."""
        return self._members[root]

    def weights(self, root: int) -> dict[int, int]:
        """``W_u``: neighbor root -> ``|E_uv|`` (do not mutate)."""
        return self._weights[root]

    def neighbor_roots(self, root: int) -> Iterable[int]:
        """``N_u``: super-nodes with at least one edge to ``root``."""
        return self._weights[root].keys()

    # ------------------------------------------------------------------
    # Cost calculus (Equations 2-4)
    # ------------------------------------------------------------------
    def pair_cost(self, u: int, v: int) -> int:
        """``c_uv`` for two distinct live roots."""
        edges = self._weights[u].get(v, 0)
        if edges == 0:
            return 0
        pi = costs.potential_edges(self._size[u], self._size[v])
        return costs.pair_cost(pi, edges)

    def self_cost(self, u: int) -> int:
        """``c_uu`` — cost of the super-node's internal edges."""
        return costs.self_cost(self._size[u], self._intra[u])

    def node_cost(self, u: int) -> int:
        """``c_u = sum over x in N_u of c_ux`` plus the self pair.

        This is the quantity whose reduction defines the saving
        (Section 2.3); internal edges participate because a merge can
        turn cross edges into internal ones.  Cached per live root;
        the cache is invalidated around merges.  The arithmetic of
        Equation 2 is inlined — this is the innermost loop of every
        algorithm in the package.
        """
        cached = self._cost_cache.get(u)
        if cached is not None:
            return cached
        size_u = self._size[u]
        sizes = self._size
        intra = self._intra[u]
        if intra:
            pi = size_u * (size_u - 1) // 2
            total = min(pi - intra + 1, intra)
        else:
            total = 0
        for x, edges in self._weights[u].items():
            pi = size_u * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        self._cost_cache[u] = total
        return total

    def merged_cost(self, u: int, v: int) -> int:
        """``c_w`` for the hypothetical merge of roots ``u`` and ``v``.

        Computed from the weight tables without performing the merge:
        O(|W_u| + |W_v|).  Like :meth:`node_cost`, the Equation 2
        arithmetic is inlined for speed.
        """
        w_u, w_v = self._weights[u], self._weights[v]
        if len(w_u) < len(w_v):
            u, v = v, u
            w_u, w_v = w_v, w_u
        sizes = self._size
        size_w = sizes[u] + sizes[v]
        intra_w = self._intra[u] + self._intra[v] + w_u.get(v, 0)
        if intra_w:
            pi = size_w * (size_w - 1) // 2
            total = min(pi - intra_w + 1, intra_w)
        else:
            total = 0
        w_v_get = w_v.get
        for x, edges in w_u.items():
            if x == v:
                continue
            edges += w_v_get(x, 0)
            pi = size_w * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        for x, edges in w_v.items():
            if x == u or x in w_u:
                continue
            pi = size_w * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        return total

    def saving(self, u: int, v: int) -> float:
        """The normalized saving ``s(u, v)`` of Equation 4.

        One refinement over the paper's formula: the numerator is the
        *exact* change in total representation cost.  ``c_u + c_v``
        counts the shared pair cost ``c_uv`` twice (once in each node
        cost), so the true reduction of Equation 3 when merging is
        ``(c_u + c_v - c_uv) - c_w``; Equation 4's ``c_u + c_v - c_w``
        overstates it by ``c_uv`` for adjacent super-nodes.  Without
        the correction, Greedy happily performs marginal merges that
        *increase* the summary size, breaking its role as the
        compactness gold standard.  For non-adjacent pairs (``c_uv =
        0``) the two definitions coincide, as do the 0.5 upper bound
        and the threshold schedule built on it.

        Returns 0.0 when both super-nodes are cost-free (e.g. isolated
        nodes), where a merge neither helps nor hurts.
        """
        if u == v:
            raise ValueError("saving of a super-node with itself is undefined")
        cost_u = self.node_cost(u)
        cost_v = self.node_cost(v)
        denom = cost_u + cost_v
        if denom == 0:
            return 0.0
        reduction = denom - self.pair_cost(u, v) - self.merged_cost(u, v)
        return reduction / denom

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, u: int, v: int) -> int:
        """Merge live roots ``u`` and ``v``; return the surviving root.

        The larger table absorbs the smaller one, and every third-party
        weight table referencing the absorbed root is re-keyed, keeping
        all tables canonical (Section 5.1's dynamic ``W`` maintenance).
        """
        if u == v:
            raise ValueError("cannot merge a super-node with itself")
        if self._parent[u] != u or self._parent[v] != v:
            raise ValueError("merge arguments must be live roots")
        # Union by weight-table size: re-keying cost is driven by the
        # number of neighbor tables we must touch.
        if len(self._weights[u]) < len(self._weights[v]):
            u, v = v, u
        w_u, w_v = self._weights[u], self._weights[v]

        self._parent[v] = u
        self._roots.discard(v)
        # Invalidate cached node costs: the merged super-node, the
        # absorbed one, and every neighbor of either (their pair costs
        # change because |P| of the merged endpoint changed).
        cache_pop = self._cost_cache.pop
        cache_pop(u, None)
        cache_pop(v, None)
        for x in w_u:
            cache_pop(x, None)
        for x in w_v:
            cache_pop(x, None)
        self._size[u] += self._size[v]
        self._members[u].extend(self._members[v])
        self._members[v] = []
        self._intra[u] += self._intra[v] + w_u.pop(v, 0)
        w_v.pop(u, None)

        for x, edges in w_v.items():
            w_u[x] = w_u.get(x, 0) + edges
            table_x = self._weights[x]
            table_x[u] = table_x.get(u, 0) + table_x.pop(v)
        w_v.clear()
        self.num_merges += 1
        return u

    # ------------------------------------------------------------------
    # Whole-partition queries
    # ------------------------------------------------------------------
    def total_cost(self) -> int:
        """Representation cost ``c(R)`` of the current partition (Eq. 3)."""
        total = 0
        for u in self._roots:
            total += self.self_cost(u)
            for v, edges in self._weights[u].items():
                if v < u:
                    continue  # count each unordered pair once
                pi = costs.potential_edges(self._size[u], self._size[v])
                total += costs.pair_cost(pi, edges)
        return total

    def grouping(self) -> dict[int, list[int]]:
        """Map each live root to its member nodes (copies)."""
        return {root: list(self._members[root]) for root in self._roots}

    def check_invariants(self) -> None:
        """Assert internal consistency; used by tests and debugging."""
        edge_mass = sum(
            sum(w.values()) for r, w in enumerate(self._weights)
            if r in self._roots
        )
        intra_mass = sum(self._intra[r] for r in self._roots)
        if edge_mass % 2:
            raise AssertionError("cross-super-node edge mass must be even")
        if edge_mass // 2 + intra_mass != self.graph.m:
            raise AssertionError(
                "edge mass mismatch: "
                f"{edge_mass // 2} cross + {intra_mass} intra != {self.graph.m}"
            )
        total_size = sum(self._size[r] for r in self._roots)
        if total_size != self.graph.n:
            raise AssertionError("sizes do not sum to n")
        for r in self._roots:
            for x, edges in self._weights[r].items():
                if x not in self._roots:
                    raise AssertionError(f"stale key {x} in W_{r}")
                if edges <= 0:
                    raise AssertionError(f"non-positive weight in W_{r}")
                if self._weights[x].get(r) != edges:
                    raise AssertionError(f"asymmetric weight for ({r}, {x})")
