"""Super-node partition with incremental cost bookkeeping (Section 5.1).

The paper implements the evolving set of super-nodes ``P`` as a
disjoint-set union, and for each super-node ``u`` keeps a weight table
``W_u`` with ``W_u(v) = |E_uv|`` so that the pairwise cost ``c_uv``
(Equation 2) and the saving ``s(u, v)`` (Equation 4) can be computed
without touching the original adjacency lists.  This module is that
data structure; every summarization algorithm in the package builds on
it, so the cost calculus is written (and tested) exactly once.

Invariants maintained under :meth:`SuperNodePartition.merge`:

* ``find`` maps every original node to the root of its super-node;
* ``weights(r)`` maps each *canonical* neighbor root to the live edge
  count (entries are eagerly re-keyed on merges, so keys never go
  stale);
* ``intra(r)`` counts edges with both endpoints inside the super-node;
* the total edge mass ``sum of W + 2 * sum of intra`` is constant.

Two implementations of the cost calculus coexist (see
``docs/performance.md``):

* the scalar methods below (``node_cost`` / ``merged_cost`` /
  ``saving``), which are the cached pure-Python path;
* the batched kernel :meth:`savings_many`, which evaluates many
  candidate savings in one pass over flat NumPy views of the weight
  tables — the hot path of Mags, Mags-DM and Greedy.

Both must agree bit-for-bit with :mod:`repro.core.reference`; all
intermediate quantities are integers (sums of Equation 2 terms), so
exact agreement is a hard contract enforced by ``tools/diff_fuzz.py``
rather than a tolerance.  Setting the module flag ``FAST_KERNELS``
to ``False`` routes ``savings_many`` through the scalar path, which
the test suite uses to prove summaries are identical under the swap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core import costs
from repro.graph.graph import Graph

__all__ = ["SuperNodePartition", "FAST_KERNELS"]

#: When False, :meth:`SuperNodePartition.savings_many` falls back to
#: the scalar reference path.  Flipped by tests and ``diff_fuzz`` to
#: demonstrate the fast and slow paths are interchangeable.
FAST_KERNELS = True


class SuperNodePartition:
    """The evolving partition ``P`` of graph nodes into super-nodes.

    Parameters
    ----------
    graph:
        The input graph; each node starts as a singleton super-node.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> g = Graph(3, [(0, 1), (0, 2), (1, 2)])
    >>> p = SuperNodePartition(g)
    >>> w = p.merge(0, 1)
    >>> p.size(w), p.intra(w)
    (2, 1)
    """

    __slots__ = (
        "graph", "_parent", "_size", "_intra", "_weights", "_roots",
        "_members", "num_merges", "_cost_cache",
        "_size_arr", "_intra_arr", "_mark", "_pos", "_stamp",
        "_flat_cache",
    )

    def __init__(self, graph: Graph):
        self.graph = graph
        n = graph.n
        self._parent = list(range(n))
        self._size = [1] * n
        self._intra = [0] * n
        self._weights: list[dict[int, int]] = [
            {v: 1 for v in graph.adjacency()[u]} for u in range(n)
        ]
        self._roots: set[int] = set(range(n))
        self._members: list[list[int]] = [[u] for u in range(n)]
        self.num_merges = 0
        # node_cost is the hot path of every saving computation; cache
        # it per live root and invalidate around merges.
        self._cost_cache: dict[int, int] = {}
        # Flat int64 mirrors of _size/_intra for the batched kernel:
        # NumPy gathers (sizes[neighbor_ids]) need array backing, while
        # the scalar path keeps plain-list indexing (3x faster per
        # element than NumPy scalar indexing).  merge() updates both;
        # check_invariants() asserts they agree on live roots.
        self._size_arr = np.ones(n, dtype=np.int64)
        self._intra_arr = np.zeros(n, dtype=np.int64)
        # Scratch for savings_many: a stamp-versioned membership mark
        # and a position index over one weight table, allocated lazily.
        self._mark: np.ndarray | None = None
        self._pos: np.ndarray | None = None
        self._stamp = 0
        # Per-root flattened (keys, values) views of the weight tables
        # for the batched kernel; invalidated only for tables whose
        # *content* a merge changes (the absorbing root, the absorbed
        # root, and the absorbed root's neighbors, which get re-keyed).
        self._flat_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # DSU primitives
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Canonical root of the super-node containing node ``x``."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def roots(self) -> set[int]:
        """The set of live super-node roots (do not mutate)."""
        return self._roots

    def num_supernodes(self) -> int:
        """Current number of super-nodes ``|P|``."""
        return len(self._roots)

    def size(self, root: int) -> int:
        """``|P_u|`` — the number of original nodes in the super-node."""
        return self._size[root]

    def intra(self, root: int) -> int:
        """``|E_uu|`` — edges with both endpoints inside the super-node."""
        return self._intra[root]

    def members(self, root: int) -> list[int]:
        """Original nodes contained in the super-node (do not mutate)."""
        return self._members[root]

    def weights(self, root: int) -> dict[int, int]:
        """``W_u``: neighbor root -> ``|E_uv|`` (do not mutate)."""
        return self._weights[root]

    def neighbor_roots(self, root: int) -> Iterable[int]:
        """``N_u``: super-nodes with at least one edge to ``root``."""
        return self._weights[root].keys()

    # ------------------------------------------------------------------
    # Cost calculus (Equations 2-4)
    # ------------------------------------------------------------------
    def pair_cost(self, u: int, v: int) -> int:
        """``c_uv`` for two distinct live roots."""
        edges = self._weights[u].get(v, 0)
        if edges == 0:
            return 0
        pi = costs.potential_edges(self._size[u], self._size[v])
        return costs.pair_cost(pi, edges)

    def self_cost(self, u: int) -> int:
        """``c_uu`` — cost of the super-node's internal edges."""
        return costs.self_cost(self._size[u], self._intra[u])

    def node_cost(self, u: int) -> int:
        """``c_u = sum over x in N_u of c_ux`` plus the self pair.

        This is the quantity whose reduction defines the saving
        (Section 2.3); internal edges participate because a merge can
        turn cross edges into internal ones.  Cached per live root;
        the cache is invalidated around merges.  The arithmetic of
        Equation 2 is inlined — this is the innermost loop of every
        algorithm in the package.
        """
        cached = self._cost_cache.get(u)
        if cached is not None:
            return cached
        size_u = self._size[u]
        sizes = self._size
        intra = self._intra[u]
        if intra:
            pi = size_u * (size_u - 1) // 2
            total = min(pi - intra + 1, intra)
        else:
            total = 0
        for x, edges in self._weights[u].items():
            pi = size_u * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        self._cost_cache[u] = total
        return total

    def merged_cost(self, u: int, v: int) -> int:
        """``c_w`` for the hypothetical merge of roots ``u`` and ``v``.

        Computed from the weight tables without performing the merge:
        O(|W_u| + |W_v|).  Like :meth:`node_cost`, the Equation 2
        arithmetic is inlined for speed.
        """
        w_u, w_v = self._weights[u], self._weights[v]
        if len(w_u) < len(w_v):
            u, v = v, u
            w_u, w_v = w_v, w_u
        sizes = self._size
        size_w = sizes[u] + sizes[v]
        intra_w = self._intra[u] + self._intra[v] + w_u.get(v, 0)
        if intra_w:
            pi = size_w * (size_w - 1) // 2
            total = min(pi - intra_w + 1, intra_w)
        else:
            total = 0
        w_v_get = w_v.get
        for x, edges in w_u.items():
            if x == v:
                continue
            edges += w_v_get(x, 0)
            pi = size_w * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        for x, edges in w_v.items():
            if x == u or x in w_u:
                continue
            pi = size_w * sizes[x]
            cost = pi - edges + 1
            total += cost if cost < edges else edges
        return total

    def saving(self, u: int, v: int) -> float:
        """The normalized saving ``s(u, v)`` of Equation 4.

        One refinement over the paper's formula: the numerator is the
        *exact* change in total representation cost.  ``c_u + c_v``
        counts the shared pair cost ``c_uv`` twice (once in each node
        cost), so the true reduction of Equation 3 when merging is
        ``(c_u + c_v - c_uv) - c_w``; Equation 4's ``c_u + c_v - c_w``
        overstates it by ``c_uv`` for adjacent super-nodes.  Without
        the correction, Greedy happily performs marginal merges that
        *increase* the summary size, breaking its role as the
        compactness gold standard.  For non-adjacent pairs (``c_uv =
        0``) the two definitions coincide, as do the 0.5 upper bound
        and the threshold schedule built on it.

        Returns 0.0 when both super-nodes are cost-free (e.g. isolated
        nodes), where a merge neither helps nor hurts.
        """
        if u == v:
            raise ValueError("saving of a super-node with itself is undefined")
        cost_u = self.node_cost(u)
        cost_v = self.node_cost(v)
        denom = cost_u + cost_v
        if denom == 0:
            return 0.0
        reduction = denom - self.pair_cost(u, v) - self.merged_cost(u, v)
        return reduction / denom

    # ------------------------------------------------------------------
    # Batched fast kernel
    # ------------------------------------------------------------------
    def savings_many(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[float]:
        """Batched ``s(u, v)`` over many pairs of live roots.

        The fast-path kernel behind the three hot consumers (Mags's
        candidate generation and refresh, Mags-DM's shortlist scoring,
        Greedy's pair scans).  Consecutive pairs sharing their first
        endpoint are evaluated as one group: the shared endpoint's
        weight table is flattened once, and all of the group's merged
        costs (Equation 2 summed over the merged weight tables) are
        computed with vectorised NumPy passes instead of per-pair
        Python dict loops.  Callers therefore get the best throughput
        by passing pairs grouped by first endpoint — exactly the shape
        the consumers produce naturally.

        Every intermediate is an exact int64 (no floating-point
        accumulation), and the final ratio is divided in Python-int
        arithmetic, so results are bit-identical to :meth:`saving`
        and to :mod:`repro.core.reference` — the contract enforced by
        ``tools/diff_fuzz.py``.  Results come back in input order;
        duplicate and ``(v, u)``-ordered pairs are fine.

        Raises :class:`ValueError` if any pair has ``u == v``, same as
        :meth:`saving`.
        """
        if not FAST_KERNELS:
            return [self.saving(u, v) for u, v in pairs]
        count = len(pairs)
        if count == 0:
            return []
        out: list[float] = [0.0] * count
        start = 0
        while start < count:
            u = pairs[start][0]
            end = start + 1
            while end < count and pairs[end][0] == u:
                end += 1
            group = [pairs[j][1] for j in range(start, end)]
            out[start:end] = self._savings_group(u, group)
            start = end
        return out

    def _savings_group(self, u: int, vs: list[int]) -> list[float]:
        """``[s(u, v) for v in vs]`` with the u-side work amortised."""
        n = self.graph.n
        if self._mark is None:
            self._mark = np.zeros(n, dtype=np.int64)
            self._pos = np.zeros(n, dtype=np.int64)
        mark, pos = self._mark, self._pos
        self._stamp += 1
        stamp = self._stamp
        sz = self._size_arr
        intra_arr = self._intra_arr
        cache = self._cost_cache
        weights = self._weights
        flat = self._flat_cache

        def flatten(r: int) -> tuple[np.ndarray, np.ndarray]:
            got = flat.get(r)
            if got is None:
                table = weights[r]
                length = len(table)
                got = flat[r] = (
                    np.fromiter(table.keys(), dtype=np.int64, count=length),
                    np.fromiter(table.values(), dtype=np.int64, count=length),
                )
            return got

        w_u = self._weights[u]
        du = len(w_u)
        xs_u, es_u = flatten(u)
        if du:
            mark[xs_u] = stamp
            pos[xs_u] = np.arange(du, dtype=np.int64)
        su = self._size[u]
        iu = self._intra[u]

        cost_u = cache.get(u)
        if cost_u is None:
            if iu:
                pi = su * (su - 1) // 2
                cost_u = min(pi - iu + 1, iu)
            else:
                cost_u = 0
            if du:
                cost_u += int(
                    np.minimum(su * sz[xs_u] - es_u + 1, es_u).sum()
                )
            cache[u] = cost_u

        k = len(vs)
        vs_arr = np.fromiter(vs, dtype=np.int64, count=k)
        if (vs_arr == u).any():
            raise ValueError(
                "saving of a super-node with itself is undefined"
            )
        s_vs = sz[vs_arr]
        i_vs = intra_arr[vs_arr]
        # |E_uv| gathered from the flat u-side view: v is adjacent to u
        # exactly when its mark carries the current stamp.
        has_v = mark[vs_arr] == stamp if du else np.zeros(k, dtype=bool)
        e_uv = np.zeros(k, dtype=np.int64)
        if has_v.any():
            e_uv[has_v] = es_u[pos[vs_arr[has_v]]]

        # Flatten the v-side weight tables into one concatenated view
        # (per-root arrays come from the persistent flat cache).
        flats = [flatten(v) for v in vs]
        lens = np.fromiter(
            (arrs[0].size for arrs in flats), dtype=np.int64, count=k
        )
        total_len = int(lens.sum())
        if total_len:
            X = np.concatenate([arrs[0] for arrs in flats])
            E = np.concatenate([arrs[1] for arrs in flats])
        else:
            X = np.empty(0, dtype=np.int64)
            E = np.empty(0, dtype=np.int64)
        starts = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(lens, out=starts[1:])
        P = np.repeat(np.arange(k, dtype=np.int64), lens)

        # Node costs of the v side (one segmented reduction); results
        # are written through to the shared scalar cache.
        seg = np.zeros(k, dtype=np.int64)
        if total_len:
            per_elem = np.minimum(s_vs[P] * sz[X] - E + 1, E)
            nonempty = lens > 0
            # reduceat over the starts of non-empty segments: empty
            # segments occupy no elements, so consecutive non-empty
            # starts delimit exactly one segment's slice.
            seg[nonempty] = np.add.reduceat(
                per_elem, starts[:-1][nonempty]
            )
        self_v = np.where(
            i_vs > 0,
            np.minimum(s_vs * (s_vs - 1) // 2 - i_vs + 1, i_vs),
            0,
        )
        cost_vs_arr = seg + self_v
        cost_vs = cost_vs_arr.tolist()
        for j, v in enumerate(vs):
            if v not in cache:
                cache[v] = cost_vs[j]

        # Merged costs c_w, vectorised over the group:
        #   u-side: a (k, du) matrix of combined edge counts, where
        #   v-neighbors also present in W_u scatter-add into their
        #   column; the column of x == v is subtracted back out.
        #   v-side tail: neighbors not in W_u (and != u), accumulated
        #   per pair with an exact int64 scatter-add.
        size_w = su + s_vs
        if du:
            comb = np.broadcast_to(es_u, (k, du)).copy()
            dup = mark[X] == stamp
            if dup.any():
                comb[P[dup], pos[X[dup]]] += E[dup]
            pi_m = size_w[:, None] * sz[xs_u][None, :]
            cost_m = np.minimum(pi_m - comb + 1, comb)
            merged = cost_m.sum(axis=1)
            if has_v.any():
                rows = np.flatnonzero(has_v)
                merged[rows] -= cost_m[rows, pos[vs_arr[rows]]]
        else:
            merged = np.zeros(k, dtype=np.int64)
            dup = np.zeros(total_len, dtype=bool)
        if total_len:
            tail = ~dup & (X != u)
            if tail.any():
                tail_cost = np.minimum(
                    size_w[P[tail]] * sz[X[tail]] - E[tail] + 1, E[tail]
                )
                np.add.at(merged, P[tail], tail_cost)
        intra_w = iu + i_vs + e_uv
        merged += np.where(
            intra_w > 0,
            np.minimum(size_w * (size_w - 1) // 2 - intra_w + 1, intra_w),
            0,
        )
        pc = np.where(
            e_uv > 0, np.minimum(su * s_vs - e_uv + 1, e_uv), 0
        )

        # Final ratio.  int64 -> float64 conversion is exact below
        # 2**53 and IEEE division is correctly rounded, so the
        # vectorised division is bit-identical to Python-int division
        # there; costs are bounded by ~2m, so the scalar fallback only
        # ever triggers on astronomically dense inputs.
        denom_arr = cost_u + cost_vs_arr
        numer_arr = denom_arr - pc - merged
        if int(denom_arr.max(initial=0)) < 2 ** 53 and (
            int(np.abs(numer_arr).max(initial=0)) < 2 ** 53
        ):
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = numer_arr / denom_arr
            return np.where(denom_arr == 0, 0.0, ratio).tolist()
        merged_l = merged.tolist()
        pc_l = pc.tolist()
        results: list[float] = []
        for j in range(k):
            denom = cost_u + cost_vs[j]
            if denom == 0:
                results.append(0.0)
            else:
                results.append((denom - pc_l[j] - merged_l[j]) / denom)
        return results

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, u: int, v: int) -> int:
        """Merge live roots ``u`` and ``v``; return the surviving root.

        The larger table absorbs the smaller one, and every third-party
        weight table referencing the absorbed root is re-keyed, keeping
        all tables canonical (Section 5.1's dynamic ``W`` maintenance).
        """
        if u == v:
            raise ValueError("cannot merge a super-node with itself")
        if self._parent[u] != u or self._parent[v] != v:
            raise ValueError("merge arguments must be live roots")
        # Union by weight-table size: re-keying cost is driven by the
        # number of neighbor tables we must touch.
        if len(self._weights[u]) < len(self._weights[v]):
            u, v = v, u
        w_u, w_v = self._weights[u], self._weights[v]

        self._parent[v] = u
        self._roots.discard(v)
        # Invalidate cached node costs: the merged super-node, the
        # absorbed one, and every neighbor of either (their pair costs
        # change because |P| of the merged endpoint changed).
        cache_pop = self._cost_cache.pop
        cache_pop(u, None)
        cache_pop(v, None)
        for x in w_u:
            cache_pop(x, None)
        for x in w_v:
            cache_pop(x, None)
        # The flat views only mirror table *content*, so a narrower
        # invalidation suffices: u's table absorbs, v's is cleared, and
        # v's neighbors get re-keyed.  Neighbors only of u keep their
        # tables byte-identical (u stays their key) and stay cached.
        flat_pop = self._flat_cache.pop
        flat_pop(u, None)
        flat_pop(v, None)
        for x in w_v:
            flat_pop(x, None)
        self._size[u] += self._size[v]
        self._size_arr[u] = self._size[u]
        self._members[u].extend(self._members[v])
        self._members[v] = []
        self._intra[u] += self._intra[v] + w_u.pop(v, 0)
        self._intra_arr[u] = self._intra[u]
        w_v.pop(u, None)

        for x, edges in w_v.items():
            w_u[x] = w_u.get(x, 0) + edges
            table_x = self._weights[x]
            table_x[u] = table_x.get(u, 0) + table_x.pop(v)
        w_v.clear()
        self.num_merges += 1
        return u

    # ------------------------------------------------------------------
    # Whole-partition queries
    # ------------------------------------------------------------------
    def total_cost(self) -> int:
        """Representation cost ``c(R)`` of the current partition (Eq. 3)."""
        total = 0
        for u in self._roots:
            total += self.self_cost(u)
            for v, edges in self._weights[u].items():
                if v < u:
                    continue  # count each unordered pair once
                pi = costs.potential_edges(self._size[u], self._size[v])
                total += costs.pair_cost(pi, edges)
        return total

    def grouping(self) -> dict[int, list[int]]:
        """Map each live root to its member nodes (copies)."""
        return {root: list(self._members[root]) for root in self._roots}

    def check_invariants(self) -> None:
        """Assert internal consistency; used by tests and debugging."""
        edge_mass = sum(
            sum(w.values()) for r, w in enumerate(self._weights)
            if r in self._roots
        )
        intra_mass = sum(self._intra[r] for r in self._roots)
        if edge_mass % 2:
            raise AssertionError("cross-super-node edge mass must be even")
        if edge_mass // 2 + intra_mass != self.graph.m:
            raise AssertionError(
                "edge mass mismatch: "
                f"{edge_mass // 2} cross + {intra_mass} intra != {self.graph.m}"
            )
        total_size = sum(self._size[r] for r in self._roots)
        if total_size != self.graph.n:
            raise AssertionError("sizes do not sum to n")
        for r in self._roots:
            if int(self._size_arr[r]) != self._size[r]:
                raise AssertionError(f"size mirror out of sync at {r}")
            if int(self._intra_arr[r]) != self._intra[r]:
                raise AssertionError(f"intra mirror out of sync at {r}")
        for r in self._roots:
            for x, edges in self._weights[r].items():
                if x not in self._roots:
                    raise AssertionError(f"stale key {x} in W_{r}")
                if edges <= 0:
                    raise AssertionError(f"non-positive weight in W_{r}")
                if self._weights[x].get(r) != edges:
                    raise AssertionError(f"asymmetric weight for ({r}, {x})")
