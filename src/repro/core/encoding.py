"""Optimal output encoding (Section 2.2 / Algorithm 4).

Given a fixed partition ``P``, the best summary graph ``S = (P, E)``
and corrections ``C`` are decided pair-by-pair: a super-edge is used
exactly when ``|E_uv| > (1 + |Pi_uv|)/2``, with minus-corrections for
the missing pairs; otherwise every real edge becomes a
plus-correction.  The resulting :class:`Representation` is the final
product ``R = (S, C)`` of every algorithm in this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import costs
from repro.core.supernodes import SuperNodePartition
from repro.graph.graph import Graph

__all__ = ["Representation", "encode"]


def _ordered(u: int, v: int) -> tuple[int, int]:
    return (u, v) if u <= v else (v, u)


@dataclass
class Representation:
    """A lossless representation ``R = (S, C)`` (Definition 1).

    Attributes
    ----------
    n:
        Number of nodes in the original graph.
    m:
        Number of edges in the original graph (for relative size).
    supernodes:
        Map from super-node id to its member node list (a partition
        of ``0..n-1``).
    node_to_supernode:
        Inverse map: node id -> super-node id.
    summary_edges:
        Super-edges as ordered pairs ``(u, v)`` with ``u <= v``;
        ``(u, u)`` denotes a self super-edge (clique-like interior).
    additions:
        Plus-corrections ``+e`` as node pairs with ``u < v``.
    removals:
        Minus-corrections ``-e`` as node pairs with ``u < v``.
    """

    n: int
    m: int
    supernodes: dict[int, list[int]]
    node_to_supernode: dict[int, int] = field(repr=False)
    summary_edges: set[tuple[int, int]]
    additions: set[tuple[int, int]]
    removals: set[tuple[int, int]]
    _superedge_adjacency: dict[int, list[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # -- size accounting (Equation 1) ----------------------------------
    @property
    def num_corrections(self) -> int:
        """``|C|``: total corrections of both signs."""
        return len(self.additions) + len(self.removals)

    @property
    def cost(self) -> int:
        """Representation cost ``c(R) = |E| + |C|`` (Equation 1)."""
        return len(self.summary_edges) + self.num_corrections

    @property
    def relative_size(self) -> float:
        """``(|E| + |C|) / |E_original|`` — the paper's compactness measure."""
        if self.m == 0:
            return 0.0
        return self.cost / self.m

    @property
    def num_supernodes(self) -> int:
        """``|P|``."""
        return len(self.supernodes)

    # -- reconstruction -------------------------------------------------
    def reconstruct_edges(self) -> set[tuple[int, int]]:
        """Recreate the original edge set from ``(S, C)``.

        Expands every super-edge to the cartesian product of its member
        sets, removes the minus-corrections, and adds the
        plus-corrections (Example 1 in the paper).
        """
        edges: set[tuple[int, int]] = set()
        for su, sv in self.summary_edges:
            members_u = self.supernodes[su]
            if su == sv:
                for i, x in enumerate(members_u):
                    for y in members_u[i + 1:]:
                        edges.add(_ordered(x, y))
            else:
                for x in members_u:
                    for y in self.supernodes[sv]:
                        edges.add(_ordered(x, y))
        edges -= self.removals
        edges |= self.additions
        return edges

    def reconstruct(self) -> Graph:
        """Recreate the original :class:`Graph`."""
        return Graph(self.n, sorted(self.reconstruct_edges()))

    def supernode_of(self, node: int) -> int:
        """The super-node containing ``node``."""
        return self.node_to_supernode[node]

    def superedge_adjacency(self) -> dict[int, list[int]]:
        """Per-super-node adjacency over the summary edges.

        Maps every super-node id to the super-nodes it shares a
        super-edge with, self-edges excluded (test
        ``(u, u) in summary_edges`` for those).  Built lazily on first
        use and cached, so answering a neighbor query costs time
        proportional to the answer instead of ``O(|E|)`` per call;
        the cache assumes ``summary_edges`` is not mutated in place
        (nothing in the package does — updaters copy first).
        """
        if self._superedge_adjacency is None:
            adjacency: dict[int, list[int]] = {
                sid: [] for sid in self.supernodes
            }
            for su, sv in self.summary_edges:
                if su != sv:
                    adjacency[su].append(sv)
                    adjacency[sv].append(su)
            self._superedge_adjacency = adjacency
        return self._superedge_adjacency

    def __repr__(self) -> str:
        return (
            f"Representation(n={self.n}, m={self.m}, "
            f"supernodes={self.num_supernodes}, "
            f"superedges={len(self.summary_edges)}, "
            f"corrections=+{len(self.additions)}/-{len(self.removals)}, "
            f"relative_size={self.relative_size:.4f})"
        )


def encode(partition: SuperNodePartition) -> Representation:
    """Algorithm 4: decide the optimal ``R`` from a partition.

    For every super-node pair with at least one edge between them, the
    cheaper of the two encodings (super-edge plus removals, or plain
    additions) is chosen via :func:`repro.core.costs.use_superedge` —
    exactly the per-pair minimum of Eq. 2, so the output attains the
    partition's representation cost.

    Cost bound: ``O(n + m + C)`` where ``C`` is the representation
    cost of the partition.  Each branch below enumerates either the
    actual edges of a pair (the addition branches, ``O(m)`` in total
    across all pairs) or the pair's *missing* edges (the removal
    branches) — and a removal branch is only entered when
    ``use_superedge`` holds, i.e. when ``pi - e + 1 <= e``, so the
    missing-edge work is bounded by the edges it replaces.  Since
    ``C <= m`` by construction (the all-singleton encoding costs
    exactly ``m``), the whole pass is ``O(n + m)``.
    """
    graph = partition.graph
    adjacency = graph.adjacency()
    supernodes = partition.grouping()
    node_to_supernode = {
        node: root for root, members in supernodes.items() for node in members
    }
    summary_edges: set[tuple[int, int]] = set()
    additions: set[tuple[int, int]] = set()
    removals: set[tuple[int, int]] = set()

    for u, members_u in supernodes.items():
        # Self pair: edges internal to the super-node.
        intra = partition.intra(u)
        if intra:
            pi = costs.potential_self_edges(len(members_u))
            if costs.use_superedge(pi, intra):
                summary_edges.add((u, u))
                for i, x in enumerate(members_u):
                    for y in members_u[i + 1:]:
                        if y not in adjacency[x]:
                            removals.add(_ordered(x, y))
            else:
                member_set = set(members_u)
                for x in members_u:
                    for y in adjacency[x]:
                        if y in member_set and x < y:
                            additions.add((x, y))
        # Cross pairs: handle each unordered pair once.
        for v, edges in partition.weights(u).items():
            if v < u:
                continue
            members_v = supernodes[v]
            pi = costs.potential_edges(len(members_u), len(members_v))
            if costs.use_superedge(pi, edges):
                summary_edges.add(_ordered(u, v))
                members_v_set = set(members_v)
                for x in members_u:
                    missing = members_v_set - adjacency[x]
                    for y in missing:
                        removals.add(_ordered(x, y))
            else:
                members_v_set = set(members_v)
                for x in members_u:
                    for y in adjacency[x]:
                        if y in members_v_set:
                            additions.add(_ordered(x, y))

    return Representation(
        n=graph.n,
        m=graph.m,
        supernodes=supernodes,
        node_to_supernode=node_to_supernode,
        summary_edges=summary_edges,
        additions=additions,
        removals=removals,
    )
