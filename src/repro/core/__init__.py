"""Core cost calculus: partition, costs, saving, MinHash, encoding."""

from repro.core.costs import (
    pair_cost,
    potential_edges,
    potential_self_edges,
    self_cost,
    use_superedge,
)
from repro.core.encoding import Representation, encode
from repro.core.lossy import LossyResult, make_lossy, neighborhood_errors
from repro.core.minhash import (
    MinHashSignatures,
    exact_jaccard,
    node_signatures,
    super_jaccard,
)
from repro.core.serialization import (
    FormatError,
    load_representation,
    save_representation,
)
from repro.core.supernodes import SuperNodePartition
from repro.core.thresholds import omega, omega_schedule, theta, theta_schedule
from repro.core.verify import LosslessnessError, verify_lossless

__all__ = [
    "pair_cost",
    "potential_edges",
    "potential_self_edges",
    "self_cost",
    "use_superedge",
    "Representation",
    "encode",
    "LossyResult",
    "make_lossy",
    "neighborhood_errors",
    "FormatError",
    "load_representation",
    "save_representation",
    "MinHashSignatures",
    "exact_jaccard",
    "node_signatures",
    "super_jaccard",
    "SuperNodePartition",
    "omega",
    "omega_schedule",
    "theta",
    "theta_schedule",
    "LosslessnessError",
    "verify_lossless",
]
