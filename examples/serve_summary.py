"""Serve a summary and query it over the wire.

The whole point of a lossless summary (Section 6.6 of the paper) is
that the compact representation can *replace* the graph at query
time.  This walkthrough takes that literally: summarize a graph, save
the summary, start the TCP query service on it, and answer adjacency
and PageRank queries from a client — verifying every answer against
the original graph.

Run:  python examples/serve_summary.py
"""

import tempfile
import threading
from pathlib import Path

from repro import MagsDMSummarizer, generators, save_representation
from repro.service import QueryEngine, SummaryQueryServer, SummaryServiceClient


def main() -> None:
    # 1. Summarize: a 400-node community graph compresses well.
    graph = generators.planted_partition(400, 20, p_in=0.6, p_out=0.01, seed=7)
    result = MagsDMSummarizer(iterations=20, seed=0).summarize(graph)
    rep = result.representation
    print(f"input graph:   {graph}")
    print(f"summary:       {rep}")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. Ship the summary, as a deployment would.
        summary_path = Path(tmp) / "summary.txt.gz"
        save_representation(summary_path, rep)
        print(f"summary saved: {summary_path.stat().st_size} bytes gzipped")

        # 3. Serve it.  The engine loads the file, pre-builds the
        # super-edge/correction indexes, and caches hot neighborhoods.
        engine = QueryEngine.from_file(summary_path, cache_size=512)
        server = SummaryQueryServer(engine, workers=4).start()
        host, port = server.address
        print(f"serving on {host}:{port}")

        # serve_forever blocks, so a real deployment runs it in the
        # foreground (python -m repro serve); here it gets a thread.
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"install_signal_handlers": False},
        )
        thread.start()

        # 4. Query — answers come from (S, C), never the input graph.
        adjacency = graph.adjacency()
        with SummaryServiceClient(host, port) as client:
            for node in (0, 7, 399):
                served = set(client.neighbors(node))
                assert served == adjacency[node], f"mismatch at {node}"
                print(
                    f"neighbors({node}): {client.degree(node)} nodes "
                    "(matches the original graph)"
                )

            two_hop = client.khop(0, 2)
            print(f"khop(0, 2): {len(two_hop)} nodes within 2 hops")

            score = client.pagerank_score(0)
            print(f"pagerank(0) on the summary: {score:.4f}")

            # Batched queries deduplicate shared expansions server-side.
            batch = client.batch(
                [{"id": i, "op": "degree", "node": i % 50} for i in range(200)]
            )
            assert all(item["ok"] for item in batch)
            print(f"batch of {len(batch)} degree queries answered")

            stats = client.stats()
            print(
                f"stats: {stats['requests_total']} requests, "
                f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
                f"neighbors p99 "
                f"{stats['latency_ms']['neighbors']['p99_ms']}ms"
            )

            # 5. Graceful stop, exactly what SIGINT does in the CLI.
            client.shutdown_server()
        thread.join(timeout=10)
        assert not thread.is_alive()
        print("server shut down cleanly")


if __name__ == "__main__":
    main()
