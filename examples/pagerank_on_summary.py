"""Run PageRank directly on a summary and compare against the input
graph (the paper's Table 3 experiment, Section 6.6).

Algorithm 7 aggregates rank mass per super-node, pushes it across
super-edges, and patches the result with the corrections — exact to
floating point, with per-iteration work O(|E| + |C|) instead of O(m).

Run:  python examples/pagerank_on_summary.py
"""

import time

import numpy as np

from repro import MagsDMSummarizer, generators
from repro.queries import SummaryPageRank, pagerank_input_graph


def main() -> None:
    # A highly compressible crawl: the regime where summary-side
    # computation wins (Table 3's IN/IC/UK/IT rows).
    graph = generators.templated_web(
        4_000, templates=80, hubs=250, template_size=12,
        mutation=0.02, seed=23,
    )
    print(f"graph: {graph}")

    result = MagsDMSummarizer(iterations=25, seed=0).summarize(graph)
    print(
        f"summary: relative size {result.relative_size:.3f} "
        f"({result.runtime_seconds:.2f}s to build)"
    )

    damping, iterations = 0.85, 20

    start = time.perf_counter()
    reference = pagerank_input_graph(graph, damping, iterations)
    input_time = time.perf_counter() - start

    engine = SummaryPageRank(result.representation)  # build index once
    start = time.perf_counter()
    summary_ranks = engine.run(damping, iterations)
    summary_time = time.perf_counter() - start

    assert np.allclose(summary_ranks, reference)
    print(f"input-graph PageRank:  {input_time * 1e3:8.2f} ms")
    print(f"summary PageRank:      {summary_time * 1e3:8.2f} ms (exact match)")
    if summary_time < input_time:
        print(f"summary side wins by {input_time / summary_time:.2f}x")
    else:
        print(
            "input side wins here — the paper sees the same on "
            "less-compressible graphs (Table 3, SL/DB/YT rows)"
        )

    top = np.argsort(reference)[-5:][::-1]
    print("top-5 nodes by rank:", ", ".join(
        f"{node} ({reference[node]:.2f})" for node in top
    ))


if __name__ == "__main__":
    main()
