"""Compress a web-crawl-style graph and serve neighbor queries from it.

Web crawls are graph summarization's best case: whole site sections
share boilerplate link blocks, so thousands of pages have identical
neighborhoods and collapse into super-nodes (the paper's CNR/UK/IT
datasets land at relative sizes near 0.1).  This example compresses a
synthetic crawl with Mags-DM, then answers adjacency queries straight
from the compressed representation — no decompression step.

Run:  python examples/web_crawl_compression.py
"""

import random

from repro import MagsDMSummarizer, generators
from repro.queries import SummaryNeighborIndex


def main() -> None:
    crawl = generators.templated_web(
        2_000, templates=60, hubs=150, template_size=10,
        mutation=0.03, seed=11,
    )
    print(f"synthetic crawl: {crawl}")

    result = MagsDMSummarizer(iterations=25, seed=0).summarize(crawl)
    rep = result.representation
    print(
        f"Mags-DM summarized in {result.runtime_seconds:.2f}s -> "
        f"relative size {result.relative_size:.3f} "
        f"({rep.cost} units vs {crawl.m} edges)"
    )

    # Storage accounting: what a serialized adjacency store would hold.
    original_units = crawl.m
    summary_units = rep.cost
    print(
        f"storage: {original_units} edge records -> "
        f"{summary_units} summary records "
        f"({100 * (1 - summary_units / original_units):.1f}% smaller)"
    )

    # Serve adjacency queries from the summary (Algorithm 6).
    index = SummaryNeighborIndex(rep)
    rng = random.Random(3)
    sample = [rng.randrange(crawl.n) for _ in range(5)]
    for q in sample:
        answer = index.neighbors(q)
        assert answer == set(crawl.neighbors(q))
        print(
            f"  neighbors({q}): {len(answer)} nodes, "
            f"query work = {index.work_units(q)} ops"
        )
    avg_work = sum(index.work_units(q) for q in crawl.nodes()) / crawl.n
    print(
        f"average query work {avg_work:.2f} ops vs d_avg "
        f"{crawl.avg_degree:.2f} (paper's bound: 1.12 * d_avg)"
    )


if __name__ == "__main__":
    main()
