"""Quickstart: summarize a graph and reconstruct it losslessly.

Run:  python examples/quickstart.py
"""

from repro import MagsSummarizer, generators, verify_lossless


def main() -> None:
    # A 500-node community graph: clusters of nodes share neighbors,
    # which is the structure graph summarization compresses.
    graph = generators.planted_partition(
        500, 25, p_in=0.6, p_out=0.01, seed=7
    )
    print(f"input graph: {graph}")

    # Mags (the paper's greedy algorithm): near-Greedy compactness at
    # divide-and-merge speed.  T controls the compactness/time knob.
    result = MagsSummarizer(iterations=30, seed=0).summarize(graph)
    rep = result.representation

    print(f"summary computed in {result.runtime_seconds:.2f}s")
    print(f"  super-nodes:        {rep.num_supernodes} (from {graph.n} nodes)")
    print(f"  super-edges:        {len(rep.summary_edges)}")
    print(f"  corrections:        +{len(rep.additions)} / -{len(rep.removals)}")
    print(f"  representation cost {rep.cost} vs original m = {graph.m}")
    print(f"  relative size:      {result.relative_size:.3f} (lower is better)")

    # The representation is lossless: the original graph is recreated
    # exactly from the summary graph plus corrections.
    verify_lossless(graph, rep)
    assert rep.reconstruct_edges() == graph.edge_set()
    print("losslessness verified: reconstruction matches the input exactly")


if __name__ == "__main__":
    main()
