"""Summarize a graph across simulated workers and measure what the
distribution costs — compactness loss, cut edges, network bytes.

Run:  python examples/distributed_summarization.py
"""

from repro import MagsDMSummarizer, generators, verify_lossless
from repro.distributed import DistributedSummarizer


def main() -> None:
    graph = generators.templated_web(
        1_500, templates=50, hubs=120, template_size=8,
        mutation=0.05, seed=41,
    )
    print(f"graph: {graph}")

    central = MagsDMSummarizer(iterations=20, seed=0).summarize(graph)
    print(
        f"central baseline: relative_size={central.relative_size:.3f} "
        f"({central.runtime_seconds:.2f}s)"
    )

    print(f"{'workers':>8} {'rel_size':>9} {'cut':>6} {'comm_KiB':>9} "
          f"{'refine_merges':>14}")
    for workers in (2, 4, 8, 16):
        result = DistributedSummarizer(
            workers=workers,
            summarizer_factory=lambda: MagsDMSummarizer(
                iterations=20, seed=0
            ),
            seed=0,
        ).summarize(graph)
        verify_lossless(graph, result.representation)
        print(
            f"{workers:>8} {result.relative_size:>9.3f} "
            f"{result.cut_edge_count:>6} "
            f"{result.total_communication_bytes / 1024:>9.1f} "
            f"{result.refinement_merges:>14}"
        )
    print(
        "\nEvery distributed result reconstructs the graph exactly; "
        "the price of distribution is compactness (cut edges cannot "
        "merge locally) and shuffle bytes, both shown above."
    )


if __name__ == "__main__":
    main()
