"""Maintain a summary under a stream of edge updates, with lossy
compaction — both future-work extensions from the paper's Section 8.

A social network evolves: communities densify over time.  The dynamic
summary absorbs each update in O(1) by toggling corrections, rebuilds
itself when drift inflates the representation, and the final summary
is optionally pruned with a bounded error for archival storage.

Run:  python examples/dynamic_stream.py
"""

import random

from repro import MagsDMSummarizer, generators
from repro.core.lossy import make_lossy, neighborhood_errors
from repro.dynamic import DynamicGraphSummary


def main() -> None:
    graph = generators.planted_partition(300, 15, 0.45, 0.01, seed=31)
    print(f"initial graph: {graph}")

    dyn = DynamicGraphSummary(
        graph,
        summarizer_factory=lambda: MagsDMSummarizer(iterations=15, seed=0),
        rebuild_factor=1.25,
    )
    print(
        f"initial summary: cost={dyn.cost} "
        f"relative_size={dyn.relative_size:.3f}"
    )

    # Stream: densify communities (members keep befriending each other)
    # with a trickle of random noise and occasional unfriending.
    rng = random.Random(5)
    inserts = deletes = 0
    for step in range(4_000):
        u = rng.randrange(dyn.n)
        if rng.random() < 0.9:
            # Densify: connect u to a same-community node.
            v = (u + 15 * rng.randrange(1, dyn.n // 15)) % dyn.n
        else:
            v = rng.randrange(dyn.n)
        if u == v:
            continue
        if dyn.has_edge(u, v):
            if rng.random() < 0.15:
                dyn.delete_edge(u, v)
                deletes += 1
        else:
            dyn.insert_edge(u, v)
            inserts += 1
    print(
        f"stream applied: +{inserts} / -{deletes} edges, "
        f"{dyn.num_rebuilds} automatic rebuilds"
    )
    print(
        f"live summary: m={dyn.m} cost={dyn.cost} "
        f"relative_size={dyn.relative_size:.3f}"
    )

    # Exactness check: the overlay always reconstructs the current
    # graph edge-for-edge.
    current = dyn.to_graph()
    assert dyn.to_representation().reconstruct_edges() == current.edge_set()
    print("exactness verified after the full stream")

    # Archive with a bounded error (epsilon-lossy, Navlakha's model).
    epsilon = 0.1
    lossy = make_lossy(dyn.to_representation(), epsilon)
    worst = max(
        err / max(1, current.degree(v))
        for v, err in enumerate(neighborhood_errors(current, lossy.representation))
    )
    print(
        f"lossy archive (epsilon={epsilon}): dropped "
        f"{lossy.corrections_dropped} corrections, relative size "
        f"{dyn.relative_size:.3f} -> {lossy.relative_size:.3f}, "
        f"worst per-node error {worst:.3f} (bound {epsilon})"
    )


if __name__ == "__main__":
    main()
