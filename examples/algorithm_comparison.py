"""Compare every summarizer on one workload — a miniature of the
paper's Figures 4 and 6.

Runs Greedy, Mags, Mags-DM, SWeG, LDME and Slugger on the same graph
and prints the compactness/efficiency trade-off each achieves.

Run:  python examples/algorithm_comparison.py [dataset-code]
      (codes are the paper's Table 2 abbreviations, default EN)
"""

import sys

from repro import (
    GreedySummarizer,
    LDMESummarizer,
    MagsDMSummarizer,
    MagsSummarizer,
    SluggerSummarizer,
    SWeGSummarizer,
    load_dataset,
    verify_lossless,
)
from repro.bench import format_table


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "EN"
    graph = load_dataset(code)
    print(f"dataset {code}: {graph}\n")

    T = 25
    algorithms = [
        MagsSummarizer(iterations=T, seed=0),
        MagsDMSummarizer(iterations=T, seed=0),
        GreedySummarizer(),
        SWeGSummarizer(iterations=T, seed=0),
        LDMESummarizer(iterations=T, signature_length=2, seed=0),
        SluggerSummarizer(iterations=T, seed=0),
    ]

    rows = []
    for algorithm in algorithms:
        result = algorithm.summarize(graph)
        verify_lossless(graph, result.representation)
        row = {
            "algorithm": result.algorithm,
            "relative_size": result.relative_size,
            "supernodes": result.representation.num_supernodes,
            "corrections": result.representation.num_corrections,
            "time_s": result.runtime_seconds,
        }
        hier = result.extra_metrics.get("hierarchical_relative_size")
        if hier is not None:
            row["own_measure"] = hier
        rows.append(row)

    rows.sort(key=lambda r: r["relative_size"])
    print(format_table(
        rows,
        columns=[
            "algorithm", "relative_size", "supernodes",
            "corrections", "time_s",
        ],
        title=f"Lossless summarization of {code} (T={T}, all verified)",
    ))
    print(
        "\nNote: Slugger's published compactness uses its own "
        "hierarchical measure (|P+|+|P-|+|H|)/m; see its "
        "extra_metrics for that number."
    )


if __name__ == "__main__":
    main()
