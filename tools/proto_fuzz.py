"""Seeded wire-protocol fuzzer for the summary query service.

Throws a battery of adversarial frames at a live
:class:`~repro.service.server.SummaryQueryServer` — random bytes,
invalid UTF-8, JSON non-objects, truncated JSON, oversized frames
(terminated and unterminated), unknown ops, wrong-typed and
out-of-range parameters, malformed batches, unechoable ids,
malformed/duplicate/rewound/oversized ``ingest`` mutations — mixed
with valid requests, and asserts the hardening contract:

* **no crash, no hang** — every frame is answered with exactly one
  structured line (or a structured error followed by a close for
  frames that poison the stream);
* **no internal errors** — a malformed *input* must never surface as
  ``error.type == "internal"``, and the server log must contain no
  unhandled exception (any record carrying ``exc_info`` fails the
  run);
* **no connection leak** — after the full battery the
  ``service_connections_active`` gauge returns to its baseline;
* **still serving** — a final valid request round-trips correctly.

Fully deterministic under ``--seed``.  By default an in-process
server on an ephemeral port is fuzzed; ``--host``/``--port`` aim the
battery at an external server instead (gauge and log assertions are
skipped — the process is not ours to inspect).

Run:  PYTHONPATH=src python tools/proto_fuzz.py --frames 500 --seed 0
"""

from __future__ import annotations

import argparse
import json
import logging
import random
import socket
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.encoding import encode  # noqa: E402
from repro.core.supernodes import SuperNodePartition  # noqa: E402
from repro.graph import generators  # noqa: E402
from repro.service import (  # noqa: E402
    SummaryQueryServer,
    SummaryServiceClient,
)
from repro.service.protocol import (  # noqa: E402
    MAX_INGEST_MUTATIONS,
    MAX_LINE_BYTES,
    MAX_STREAM_LEN,
)

#: Read deadline per response; a frame that cannot be answered within
#: this window counts as a hang.
READ_TIMEOUT = 10.0


class _ExcInfoCollector(logging.Handler):
    """Collects log records that carry a traceback — each one is an
    exception the server failed to turn into a structured error."""

    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        if record.exc_info:
            self.records.append(record)


# ----------------------------------------------------------------------
# frame generators: (category, rng) -> bytes to send on a fresh socket
# ----------------------------------------------------------------------
def _rand_bytes(rng: random.Random) -> bytes:
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 128)))
    return payload.replace(b"\n", b"\x00") + b"\n"


def _invalid_utf8(rng: random.Random) -> bytes:
    return b'{"op": "ping", "id": "\xff\xfe\x80"}\n'


def _json_non_object(rng: random.Random) -> bytes:
    doc = rng.choice(["[1, 2, 3]", "42", '"ping"', "null", "true", "1.5"])
    return doc.encode() + b"\n"


def _truncated_json(rng: random.Random) -> bytes:
    full = json.dumps({"id": rng.randrange(100), "op": "neighbors", "node": 1})
    return full[: rng.randrange(1, len(full))].encode() + b"\n"


def _missing_op(rng: random.Random) -> bytes:
    return json.dumps({"id": rng.randrange(100)}).encode() + b"\n"


def _unknown_op(rng: random.Random) -> bytes:
    op = rng.choice(["eval", "exec", "drop", "PING", "neighbours", ""])
    return json.dumps({"id": 1, "op": op}).encode() + b"\n"


def _wrong_typed_node(rng: random.Random) -> bytes:
    node = rng.choice(["abc", 1.5, None, [1], {"n": 1}, True])
    op = rng.choice(["neighbors", "degree", "pagerank"])
    return json.dumps({"id": 2, "op": op, "node": node}).encode() + b"\n"


def _bad_k(rng: random.Random) -> bytes:
    k = rng.choice([-1, 10**9, "two", 2.5, None])
    return (
        json.dumps({"id": 3, "op": "khop", "node": 0, "k": k}).encode()
        + b"\n"
    )


def _unknown_field(rng: random.Random) -> bytes:
    return (
        json.dumps(
            {"id": 4, "op": "ping", rng.choice(["extra", "node", "cmd"]): 1}
        ).encode()
        + b"\n"
    )


def _unechoable_id(rng: random.Random) -> bytes:
    return json.dumps({"id": {"x": 1}, "op": "ping"}).encode() + b"\n"


def _bad_batch(rng: random.Random) -> bytes:
    requests = rng.choice(
        [
            "not-a-list",
            [1, 2, 3],
            [{"op": "ping"}, "junk"],
            [{"op": "ping"}] * 1500,  # over MAX_BATCH_REQUESTS
        ]
    )
    return (
        json.dumps({"id": 5, "op": "batch", "requests": requests}).encode()
        + b"\n"
    )


def _oversized_terminated(rng: random.Random) -> bytes:
    pad = "x" * (MAX_LINE_BYTES + 1024)
    return (
        json.dumps({"id": 6, "op": "ping", "pad": pad}).encode() + b"\n"
    )


def _oversized_unterminated(rng: random.Random) -> bytes:
    # No newline at all: the reader must trip its cap, not buffer
    # forever waiting for one.
    return b"y" * (MAX_LINE_BYTES + 4096)


def _trace_context_valid(rng: random.Random) -> bytes:
    trace = rng.choice(
        [
            {"id": "a" * rng.randrange(1, 65)},
            {"id": "deadbeef-01.Z_x"},
            {"id": "0123456789abcdef", "span": "f" * 16},
        ]
    )
    request = rng.choice(
        [
            {"id": 20, "op": "ping", "trace": trace},
            {"id": 21, "op": "neighbors", "node": rng.randrange(60),
             "trace": trace},
            {"id": 22, "op": "khop", "node": rng.randrange(60), "k": 2,
             "trace": trace},
        ]
    )
    return json.dumps(request).encode() + b"\n"


def _trace_context_malformed(rng: random.Random) -> bytes:
    trace = rng.choice(
        [
            "not-a-dict",
            42,
            [],
            {},  # missing id
            {"span": "f" * 16},  # span without id
            {"id": 123},  # wrong type
            {"id": ""},  # empty
            {"id": "x" * 65},  # over TRACE_ID_MAX_LEN
            {"id": "bad id!"},  # bad charset
            {"id": "ok", "span": 7},  # bad span type
            {"id": "ok", "extra": "field"},  # unknown key
        ]
    )
    return (
        json.dumps({"id": 23, "op": "ping", "trace": trace}).encode()
        + b"\n"
    )


def _telemetry_valid(rng: random.Random) -> bytes:
    return json.dumps({"id": 24, "op": "telemetry"}).encode() + b"\n"


def _telemetry_bad_field(rng: random.Random) -> bytes:
    extra = rng.choice(["node", "k", "requests", "registry"])
    return (
        json.dumps({"id": 25, "op": "telemetry", extra: 1}).encode()
        + b"\n"
    )


def _ingest_malformed(rng: random.Random) -> bytes:
    request = rng.choice(
        [
            # field-level type confusion
            {"id": 30, "op": "ingest", "seq": 0, "mutations": [["+", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": 7, "seq": 0,
             "mutations": [["+", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": "zero",
             "mutations": [["+", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": True,
             "mutations": [["+", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": -1,
             "mutations": [["+", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": "not-a-list"},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": []},
            # mutation-level garbage
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 0]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["*", 0, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 0.5, 1]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 0, None]]},
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 3, 3]]},  # self-loop
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 0, 10**9]]},  # out of range
            {"id": 30, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [{"op": "+", "u": 0, "v": 1}]},
        ]
    )
    return json.dumps(request).encode() + b"\n"


def _ingest_oversized(rng: random.Random) -> bytes:
    request = rng.choice(
        [
            {"id": 31, "op": "ingest", "stream": "s", "seq": 0,
             "mutations": [["+", 0, 1]] * (MAX_INGEST_MUTATIONS + 1)},
            {"id": 31, "op": "ingest", "stream": "s" * (MAX_STREAM_LEN + 1),
             "seq": 0, "mutations": [["+", 0, 1]]},
        ]
    )
    return json.dumps(request).encode() + b"\n"


def _ingest_seq_replay(rng: random.Random) -> bytes:
    """Duplicate / rewound / fresh sequence numbers on a shared
    stream: any mix must come back structured (ok + dedup, or a
    ``bad_request`` rewind) and never crash the server."""
    u = rng.randrange(59)
    request = {
        "id": 32,
        "op": "ingest",
        "stream": rng.choice(["fuzz-a", "fuzz-b"]),
        "seq": rng.randrange(6),
        "mutations": [[rng.choice(["+", "-"]), u, u + 1]],
    }
    return json.dumps(request).encode() + b"\n"


def _ingest_with_trace(rng: random.Random) -> bytes:
    """Well-formed ingest mixed with trace context; whether it lands
    or is rejected (edge already present / absent, stale seq) depends
    on accumulated server state — it must always answer structured."""
    u = rng.randrange(59)
    request = {
        "id": 33,
        "op": "ingest",
        "stream": "fuzz-traced",
        "seq": rng.randrange(50),
        "mutations": [
            [rng.choice(["+", "-"]), u, rng.randrange(u + 1, 60)]
        ],
        "trace": {"id": "0123456789abcdef", "span": "f" * 16},
    }
    return json.dumps(request).encode() + b"\n"


def _valid(rng: random.Random) -> bytes:
    request = rng.choice(
        [
            {"id": 7, "op": "ping"},
            {"id": 8, "op": "neighbors", "node": rng.randrange(60)},
            {"id": 9, "op": "degree", "node": rng.randrange(60)},
            {"id": 10, "op": "khop", "node": rng.randrange(60), "k": 2},
            {"id": 11, "op": "stats"},
            {
                "id": 12,
                "op": "batch",
                "requests": [{"op": "degree", "node": 0}],
            },
        ]
    )
    return json.dumps(request).encode() + b"\n"


#: (name, generator, expect_ok) — ``True``: the answer must be
#: ``ok: true``; ``False``: it must be a structured error; ``None``:
#: either is acceptable (state-dependent outcome) but it must still
#: be exactly one structured, non-``internal`` response.
CATEGORIES = [
    ("random_bytes", _rand_bytes, False),
    ("invalid_utf8", _invalid_utf8, False),
    ("json_non_object", _json_non_object, False),
    ("truncated_json", _truncated_json, False),
    ("missing_op", _missing_op, False),
    ("unknown_op", _unknown_op, False),
    ("wrong_typed_node", _wrong_typed_node, False),
    ("bad_k", _bad_k, False),
    ("unknown_field", _unknown_field, False),
    ("unechoable_id", _unechoable_id, False),
    ("bad_batch", _bad_batch, False),
    ("oversized_terminated", _oversized_terminated, False),
    ("oversized_unterminated", _oversized_unterminated, False),
    ("trace_context_valid", _trace_context_valid, True),
    ("trace_context_malformed", _trace_context_malformed, False),
    ("telemetry_valid", _telemetry_valid, True),
    ("telemetry_bad_field", _telemetry_bad_field, False),
    ("ingest_malformed", _ingest_malformed, False),
    ("ingest_oversized", _ingest_oversized, False),
    ("ingest_seq_replay", _ingest_seq_replay, None),
    ("ingest_with_trace", _ingest_with_trace, None),
    ("valid", _valid, True),
]


# ----------------------------------------------------------------------
def _exchange(host: str, port: int, frame: bytes) -> bytes | None:
    """Send one frame on a fresh connection; return the first response
    line (without newline) or ``None`` if the server closed first."""
    with socket.create_connection((host, port), timeout=READ_TIMEOUT) as sock:
        sock.settimeout(READ_TIMEOUT)
        sock.sendall(frame)
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                return None
            buffer += chunk
            if len(buffer) > 2 * MAX_LINE_BYTES:
                raise AssertionError(
                    "server streamed an unbounded response"
                )
        return buffer.split(b"\n", 1)[0]


def _check_response(
    name: str, line: bytes | None, expect_ok: bool | None
) -> str:
    """Validate one response; returns a failure description or ''."""
    if line is None:
        return f"{name}: connection closed without a structured response"
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return f"{name}: response is not JSON: {line[:120]!r}"
    if not isinstance(message, dict):
        return f"{name}: response is not an object: {line[:120]!r}"
    if expect_ok is True:
        if message.get("ok") is not True:
            return f"{name}: valid frame rejected: {line[:200]!r}"
        return ""
    if expect_ok is None and message.get("ok") is True:
        return ""
    if message.get("ok") is not False:
        return f"{name}: malformed frame accepted: {line[:200]!r}"
    error = message.get("error")
    if not isinstance(error, dict) or not isinstance(error.get("type"), str):
        return f"{name}: error frame lacks structured error: {line[:200]!r}"
    if error["type"] == "internal":
        return (
            f"{name}: malformed input surfaced as an internal error: "
            f"{line[:200]!r}"
        )
    return ""


def _build_server() -> SummaryQueryServer:
    # A *mutable* engine (no WAL: the fuzz target is the wire layer,
    # not the disk) so the ingest categories hit the real write path.
    from repro.dynamic.summary import DynamicGraphSummary
    from repro.service.ingest import MutableQueryEngine

    graph = generators.planted_partition(60, 4, 0.5, 0.05, seed=0)
    representation = encode(SuperNodePartition(graph))
    engine = MutableQueryEngine(
        DynamicGraphSummary.from_representation(representation),
        cache_size=256,
    )
    server = SummaryQueryServer(engine, port=0, workers=4)
    server.start()
    return server


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--host", default=None,
        help="fuzz an external server instead of an in-process one",
    )
    parser.add_argument("--port", type=int, default=None)
    args = parser.parse_args(argv)
    if (args.host is None) != (args.port is None):
        parser.error("--host and --port must be given together")

    rng = random.Random(args.seed)
    failures: list[str] = []
    counts: dict[str, int] = {}

    collector = _ExcInfoCollector()
    server = None
    if args.host is None:
        logging.getLogger("repro.service").addHandler(collector)
        server = _build_server()
        host, port = server.address
        gauge = server.metrics.registry.gauge("service_connections_active")
        baseline = gauge.value
    else:
        host, port = args.host, args.port
        gauge = None
        baseline = None

    try:
        for index in range(args.frames):
            name, generator, expect_ok = rng.choice(CATEGORIES)
            counts[name] = counts.get(name, 0) + 1
            frame = generator(rng)
            try:
                line = _exchange(host, port, frame)
            except (OSError, AssertionError) as exc:
                failures.append(f"frame {index} ({name}): {exc}")
                continue
            problem = _check_response(name, line, expect_ok)
            if problem:
                failures.append(f"frame {index}: {problem}")

        # -- no connection leak ------------------------------------------
        if gauge is not None:
            deadline = time.monotonic() + 10.0
            while gauge.value > baseline and time.monotonic() < deadline:
                time.sleep(0.05)
            if gauge.value > baseline:
                failures.append(
                    f"connection leak: {gauge.value - baseline:g} "
                    "connection(s) still active after the battery"
                )

        # -- still serving ------------------------------------------------
        try:
            with SummaryServiceClient(host, port, timeout=5.0) as client:
                if client.ping() != "pong":
                    failures.append("post-fuzz ping returned a wrong result")
                client.neighbors(0)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"server unusable after the battery: {exc}")

        # -- no unhandled exceptions in the server log --------------------
        for record in collector.records:
            failures.append(
                "unhandled exception in server log: "
                f"{record.getMessage()[:200]}"
            )
    finally:
        if server is not None:
            server.close()
            logging.getLogger("repro.service").removeHandler(collector)

    print(f"proto_fuzz: {args.frames} frames, seed={args.seed}")
    for name, _generator, _ok in CATEGORIES:
        print(f"  {name:24s} {counts.get(name, 0):5d}")
    if failures:
        print(f"\nFAIL ({len(failures)} problem(s)):", file=sys.stderr)
        for failure in failures[:50]:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nPASS: no crashes, no hangs, no internal errors, no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
